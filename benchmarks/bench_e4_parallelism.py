"""E4 (figure): tradeoff (ii) — parallelism vs. capacity q.

Reducer loads from the A2A schema are LPT-scheduled on a fixed worker
pool.  Expected shape: at small q there are many light reducers (high
parallelism but large total work from replication); at large q few heavy
reducers starve the pool.  The makespan curve exposes the capacity knee,
and utilization degrades once reducers are fewer than workers.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import emit, run_once
from repro.analysis.tradeoffs import sweep_a2a_parallelism
from repro.utils.tables import format_table
from repro.workloads.distributions import zipf_sizes

M = 150
Q_VALUES = [100, 200, 400, 800, 1600, 3200]
WORKERS = 16
SEED = 4


def compute_rows() -> list[dict[str, object]]:
    sizes = [min(s, Q_VALUES[0] // 2) for s in zipf_sizes(M, 1.5, 200, seed=SEED)]
    return sweep_a2a_parallelism(sizes, Q_VALUES, num_workers=WORKERS)


@pytest.mark.benchmark(group="E4")
def test_e4_parallelism_vs_q(benchmark):
    rows = run_once(benchmark, compute_rows)
    emit(
        "E4",
        format_table(
            rows, title=f"E4: makespan vs q on {WORKERS} workers (A2A, zipf sizes)"
        ),
        rows=rows,
    )

    makespans = [r["makespan"] for r in rows]
    reducers = [r["num_reducers"] for r in rows]
    # Wave count shrinks with q (fewer reducers), monotonically.
    waves = [r["waves"] for r in rows]
    assert all(a >= b for a, b in zip(waves, waves[1:]))
    # The extremes are both worse than the best interior capacity: small q
    # pays replication work, large q starves the pool.
    best = min(makespans)
    assert makespans[0] > best, "tiny q should not be the makespan optimum"
    # When reducers fall below the worker count utilization must dip.
    starved = [r for r in rows if r["num_reducers"] < WORKERS]
    if starved:
        assert min(r["utilization"] for r in starved) < 0.9
    assert reducers[0] > reducers[-1]
