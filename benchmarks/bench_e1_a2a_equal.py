"""E1 (table): A2A equal-sized inputs — grouping scheme vs. lower bound.

For unit-size inputs and k = q inputs per reducer, the grouping scheme's
reducer count is compared against the pair-covering lower bound
ceil(C(m,2) / C(k,2)) across a grid of (m, k).  Expected shape: the scheme
tracks the bound within a small constant factor (≈2 for even k, worse for
tiny odd k where C(m,2) pair reducers are forced), and is exactly optimal
when a single reducer suffices.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import emit, run_once
from repro.core.a2a import equal_sized_grouping
from repro.core.bounds import a2a_equal_sized_reducer_bound
from repro.core.instance import A2AInstance
from repro.utils.tables import format_table

M_VALUES = [16, 32, 64, 128, 256, 512]
K_VALUES = [2, 4, 8, 16, 32, 64]


def compute_rows() -> list[dict[str, object]]:
    rows = []
    for m in M_VALUES:
        for k in K_VALUES:
            instance = A2AInstance.equal_sized(m, 1, k)
            schema = equal_sized_grouping(instance)
            bound = a2a_equal_sized_reducer_bound(m, k)
            rows.append(
                {
                    "m": m,
                    "k": k,
                    "grouping": schema.num_reducers,
                    "lower_bound": bound,
                    "ratio": round(schema.num_reducers / bound, 3),
                }
            )
    return rows


@pytest.mark.benchmark(group="E1")
def test_e1_a2a_equal_sized(benchmark):
    rows = run_once(benchmark, compute_rows)
    emit("E1", format_table(rows, title="E1: A2A equal-sized, reducers vs lower bound"), rows=rows)

    for row in rows:
        assert row["grouping"] >= row["lower_bound"]
        if row["m"] <= row["k"]:
            assert row["grouping"] == 1  # single reducer is optimal
    # Even-k rows stay within a small constant factor of the bound.
    even_large = [r for r in rows if r["k"] % 2 == 0 and r["k"] >= 4 and r["m"] > r["k"]]
    assert even_large, "grid must include the even-k regime"
    assert max(r["ratio"] for r in even_large) <= 3.0
