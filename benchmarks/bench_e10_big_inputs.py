"""E10 (figure): the big-input regime — one-sided bigs in X2Y.

The fraction of X inputs larger than q/2 is swept (a feasible instance can
only carry bigs on one side; see DESIGN.md).  Expected shape: the
symmetric half-split grid fails outright as soon as bigs appear; the
best-split grid survives by surrendering capacity to X; the dedicated
big/small scheme replicates each big against residual-capacity Y bins and
wins increasingly as the big fraction grows.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import emit, run_once
from repro.core.bounds import x2y_reducer_lower_bound
from repro.core.instance import X2YInstance
from repro.core.x2y import best_split_grid, big_small_x2y, half_split_grid
from repro.exceptions import ReproError
from repro.utils.rng import make_rng
from repro.utils.tables import format_table

M = N = 40
Q = 100
SEED = 10
BIG_FRACTIONS = [0.0, 0.2, 0.4, 0.6, 0.8]


def make_instance(big_fraction: float, rng) -> X2YInstance:
    num_big = int(round(big_fraction * M))
    big_sizes = [int(v) for v in rng.integers(Q // 2 + 5, (3 * Q) // 4, size=num_big)]
    small_sizes = [int(v) for v in rng.integers(1, Q // 4, size=M - num_big)]
    y_sizes = [int(v) for v in rng.integers(1, Q // 4, size=N)]
    return X2YInstance(big_sizes + small_sizes, y_sizes, Q)


def compute_rows() -> list[dict[str, object]]:
    rng = make_rng(SEED)
    rows = []
    for fraction in BIG_FRACTIONS:
        instance = make_instance(fraction, rng)
        bound = x2y_reducer_lower_bound(instance)
        row: dict[str, object] = {"big_fraction": fraction, "lower_bound": bound}
        for name, algorithm in [
            ("half_grid", half_split_grid),
            ("best_split_grid", best_split_grid),
            ("big_small", big_small_x2y),
        ]:
            try:
                schema = algorithm(instance)
                schema.require_valid()
                row[name] = schema.num_reducers
            except ReproError:
                row[name] = None
        rows.append(row)
    return rows


@pytest.mark.benchmark(group="E10")
def test_e10_big_input_regime(benchmark):
    rows = run_once(benchmark, compute_rows)
    emit("E10", format_table(rows, title="E10: one-sided big inputs (X2Y)"), rows=rows)

    for row in rows:
        # The general schemes always succeed and respect the bound.
        assert row["big_small"] is not None
        assert row["best_split_grid"] is not None
        assert row["big_small"] >= row["lower_bound"]
        if row["big_fraction"] > 0:
            # The symmetric split cannot host any big input.
            assert row["half_grid"] is None
    # In the heavily big regime the dedicated scheme beats the global split.
    heavy = [r for r in rows if r["big_fraction"] >= 0.6]
    assert any(r["big_small"] <= r["best_split_grid"] for r in heavy)
