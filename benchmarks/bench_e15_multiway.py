"""E15 (extension): the multiway (r > 2) generalization.

Outputs depending on r inputs generalize the paper's pairwise model; the
bin-combining scheme packs inputs into ``q // r`` bins and gives every
r-combination of bins a reducer.  Expected shape: the reducer count and
its gap to the group-covering lower bound *blow up combinatorially in r*
(C(b, r) reducers; the known replication explosion of multiway coverage —
exactly why the paper restricts attention to r = 2), while the end-to-end
three-way similarity app stays exact.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import emit, run_once
from repro.apps.threeway_similarity import all_triples_above, run_threeway_similarity
from repro.core.multiway import (
    MultiwayInstance,
    multiway_bin_combining,
    multiway_reducer_lower_bound,
)
from repro.utils.tables import format_table
from repro.workloads.distributions import sample_sizes

M = 36
SEED = 15


def compute_rows() -> list[dict[str, object]]:
    rows = []
    for r, q in [(2, 60), (3, 90), (4, 120)]:
        share = q // r
        sizes = [min(s, share) for s in sample_sizes("uniform", M, q, seed=SEED)]
        instance = MultiwayInstance(sizes, q, r)
        schema = multiway_bin_combining(instance)
        schema.require_valid()
        bound = multiway_reducer_lower_bound(instance)
        rows.append(
            {
                "r": r,
                "q": q,
                "reducers": schema.num_reducers,
                "lower_bound": bound,
                "ratio": round(schema.num_reducers / bound, 2),
                "comm_cost": schema.communication_cost,
            }
        )
    return rows


@pytest.mark.benchmark(group="E15")
def test_e15_multiway(benchmark):
    rows = run_once(benchmark, compute_rows)
    emit("E15", format_table(rows, title="E15: multiway bin-combining (r-wise coverage)"), rows=rows)
    for row in rows:
        assert row["reducers"] >= row["lower_bound"]
    # The combinatorial blowup in r is the expected shape: both the
    # reducer count and the gap to the bound grow steeply with r.
    ratios = [row["ratio"] for row in rows]
    reducers = [row["reducers"] for row in rows]
    assert ratios == sorted(ratios)
    assert reducers == sorted(reducers)
    assert reducers[-1] > 10 * reducers[0]


@pytest.mark.benchmark(group="E15")
def test_e15_threeway_end_to_end(benchmark):
    from repro.workloads.documents import Document, generate_documents

    def compute():
        docs = generate_documents(12, 30, seed=SEED, vocabulary_size=60)
        docs = [Document(d.doc_id, d.tokens[: max(1, 30 // 3)]) for d in docs]
        run = run_threeway_similarity(docs, q=30, threshold=0.05)
        truth = all_triples_above(docs, 0.05)
        return run, truth

    run, truth = run_once(benchmark, compute)
    emit(
        "E15-app",
        f"three-way similarity: {len(truth)} true triples, "
        f"{run.metrics.num_reducers} reducers, max load "
        f"{run.metrics.max_reducer_load}, exact = {run.triple_set() == truth}",
    )
    assert run.triple_set() == truth
    assert run.metrics.max_reducer_load <= 30
