"""E16 (hardness companion): exact solving blows up, heuristics stay flat.

The paper's central theorems are NP-completeness of both mapping-schema
problems.  As the executable companion, this bench measures the exact
branch-and-bound's wall time as m grows against the polynomial heuristic
on the same instances.  Expected shape: exact time grows super-
polynomially (orders of magnitude over a few added inputs) while the
heuristic stays microseconds — with zero-to-small optimality gap where
both are known (E9).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.harness import emit, run_once
from repro.core.a2a import big_small, solve_min_reducers
from repro.core.instance import A2AInstance
from repro.utils.rng import make_rng
from repro.utils.tables import format_table

SEED = 16
M_VALUES = [4, 5, 6, 7, 8, 9]
Q = 10


def compute_rows() -> list[dict[str, object]]:
    rng = make_rng(SEED)
    rows = []
    for m in M_VALUES:
        sizes = [int(v) for v in rng.integers(1, Q // 2 + 1, size=m)]
        instance = A2AInstance(sizes, Q)

        start = time.perf_counter()
        exact = solve_min_reducers(instance, max_nodes=5_000_000)
        exact_seconds = time.perf_counter() - start

        start = time.perf_counter()
        heuristic = big_small(instance)
        heuristic_seconds = time.perf_counter() - start

        rows.append(
            {
                "m": m,
                "pairs": instance.num_pairs,
                "exact_reducers": exact.num_reducers,
                "heuristic_reducers": heuristic.num_reducers,
                "exact_ms": round(exact_seconds * 1000, 2),
                "heuristic_ms": round(heuristic_seconds * 1000, 3),
            }
        )
    return rows


@pytest.mark.benchmark(group="E16")
def test_e16_solver_scaling(benchmark):
    rows = run_once(benchmark, compute_rows)
    emit("E16", format_table(rows, title="E16: exact vs heuristic solve time"), rows=rows)

    for row in rows:
        assert row["heuristic_reducers"] >= row["exact_reducers"]
    # The hardness shape: the largest exact solve costs far more than the
    # smallest, while the heuristic never leaves the millisecond range.
    exact_times = [r["exact_ms"] for r in rows]
    assert max(exact_times) > 20 * (min(exact_times) + 0.01)
    assert max(r["heuristic_ms"] for r in rows) < 50
