"""E20 (new): cost-based planner vs the fixed method × backend grid.

Two questions, one per table:

1. **Choice quality** — on a sweep of instance shapes (uniform, mixed,
   big/small, X2Y, multiway) × all three objectives, full planning
   enumerates every registered method; the planner's pick must be within
   10% of the best candidate it enumerated (it is the argmin, so the
   regret is asserted to be ~0).  Rows record the chosen method, its
   objective value, the best enumerated value, the regret, and the
   problem lower bound, so the artifact tracks both planner quality and
   heuristic-vs-bound gaps across PRs.

2. **Execution quality** — the E17/E18 realistic app shape (the skew
   join) runs over the fixed method × backend grid, plus one
   planner-driven cell (``method="planned"``: per-heavy-key methods and
   the execution configuration both planner-chosen).  The planner cell's
   wall-clock regret vs the best fixed cell is reported; wall-clock
   claims are hardware-gated like every engine bench (the committed
   artifact records the worker count), so the regret column is advisory
   on shared runners while output identity is always asserted.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.harness import emit, run_once
from repro.apps.skew_join import naive_join, schema_skew_join
from repro.engine.backends import available_workers
from repro.planner import Environment, JobSpec, plan
from repro.utils.tables import format_table
from repro.workloads.relations import generate_join_workload

#: Planning scenarios: name -> JobSpec constructor arguments.
SCENARIOS: dict[str, JobSpec] = {
    "a2a_uniform": JobSpec.a2a([4] * 12, q=12, method=None),
    "a2a_mixed": JobSpec.a2a([3, 5, 2, 7, 4, 6, 1, 8], q=16, method=None),
    "a2a_bigsmall": JobSpec.a2a([11, 3, 4, 5, 2, 6], q=20, method=None),
    "x2y_uniform": JobSpec.x2y([2] * 6, [2] * 8, q=8, method=None),
    "x2y_skewed": JobSpec.x2y([9, 2, 3, 1], [5, 3, 4], q=17, method=None),
    "multiway_r3": JobSpec.multiway([2] * 8, q=9, r=3, method=None),
}

OBJECTIVES = ("min-reducers", "min-communication", "min-makespan")

#: Fixed grid for the execution comparison: method x backend on the skew
#: join ("auto" is the structural fast path; exact is omitted — heavy-key
#: instances routinely exceed its tractable size).
GRID_METHODS = ("auto", "equal_grid", "best_split_grid", "big_small", "greedy")
GRID_BACKENDS = ("serial", "threads")

TUPLES, KEYS, Q, SKEW, SEED = 400, 8, 120, 1.3, 7
REPEAT = 2


def plan_quality_rows() -> list[dict[str, object]]:
    """Table 1: per-scenario × objective planning regret."""
    env = Environment(num_workers=max(2, available_workers()), memory_bytes=None)
    rows: list[dict[str, object]] = []
    for name, base in sorted(SCENARIOS.items()):
        for objective in OBJECTIVES:
            spec = JobSpec(
                kind=base.kind,
                q=base.q,
                sizes=base.sizes,
                x_sizes=base.x_sizes,
                y_sizes=base.y_sizes,
                r=base.r,
                objective=objective,
                method=None,
            )
            planned = plan(spec, env)
            scored = [
                c for c in planned.candidates if c.status == "scored"
            ]
            best = min(c.objective_value for c in scored)
            chosen_value = planned.chosen_score.objective_value
            regret = (chosen_value / best - 1.0) if best else 0.0
            rows.append(
                {
                    "scenario": name,
                    "objective": objective,
                    "chosen": planned.chosen,
                    "chosen_value": chosen_value,
                    "best_enumerated": best,
                    "regret": round(regret, 4),
                    "scored": len(scored),
                    "skipped": sum(
                        1 for c in planned.candidates if c.status == "skipped"
                    ),
                    "reducers_lb": planned.lower_bounds.get("num_reducers", ""),
                }
            )
    return rows


def execution_grid_rows() -> list[dict[str, object]]:
    """Table 2: skew join across the fixed grid plus the planner cell."""
    x, y = generate_join_workload(TUPLES, TUPLES, KEYS, SKEW, seed=SEED)
    truth = naive_join(x, y)
    rows: list[dict[str, object]] = []

    def best_of(run_fn) -> tuple[float, object]:
        best_wall, best_run = None, None
        for _ in range(REPEAT):
            started = time.perf_counter()
            run = run_fn()
            wall = time.perf_counter() - started
            if best_wall is None or wall < best_wall:
                best_wall, best_run = wall, run
        return best_wall, best_run

    for method in GRID_METHODS:
        for backend in GRID_BACKENDS:
            try:
                wall, run = best_of(
                    lambda: schema_skew_join(
                        x, y, Q, method=method, backend=backend
                    )
                )
            except Exception as error:  # a method may reject this shape
                rows.append(
                    {
                        "cell": f"{method}/{backend}",
                        "wall_s": "",
                        "outputs": "",
                        "note": type(error).__name__,
                    }
                )
                continue
            assert run.triple_set() == truth, (method, backend)
            rows.append(
                {
                    "cell": f"{method}/{backend}",
                    "wall_s": round(wall, 3),
                    "outputs": len(run.triples),
                    "note": "",
                }
            )

    planned_wall, planned_run = best_of(
        lambda: schema_skew_join(x, y, Q, method="planned")
    )
    assert planned_run.triple_set() == truth
    fixed_walls = [
        float(row["wall_s"]) for row in rows if row["wall_s"] != ""
    ]
    best_fixed = min(fixed_walls)
    rows.append(
        {
            "cell": f"planner[{planned_run.engine.backend}]",
            "wall_s": round(planned_wall, 3),
            "outputs": len(planned_run.triples),
            "note": (
                f"wall regret vs best fixed: "
                f"{planned_wall / best_fixed - 1.0:+.1%}"
            ),
        }
    )
    return rows


def compute_rows() -> list[dict[str, object]]:
    return plan_quality_rows() + execution_grid_rows()


@pytest.mark.benchmark(group="E20")
def test_e20_planner(benchmark):
    rows = run_once(benchmark, compute_rows)
    quality = [r for r in rows if "scenario" in r]
    grid = [r for r in rows if "cell" in r]
    emit(
        "E20",
        format_table(
            quality,
            title=(
                "E20a: planner choice vs best enumerated candidate "
                f"({len(SCENARIOS)} scenarios x {len(OBJECTIVES)} objectives)"
            ),
        )
        + "\n"
        + format_table(
            grid,
            title=(
                f"E20b: skew join, fixed method x backend grid vs planner "
                f"({TUPLES}x{TUPLES} tuples, q={Q}, best of {REPEAT}, "
                f"{available_workers()} workers)"
            ),
        ),
        rows=rows,
    )

    assert len(quality) == len(SCENARIOS) * len(OBJECTIVES)
    # The acceptance bar: the planner's objective value is within 10% of
    # the best candidate it enumerated, on every scenario x objective.
    for row in quality:
        assert float(row["regret"]) <= 0.10, row
    # The planner cell exists and produced the exact join output.
    assert any(str(row["cell"]).startswith("planner[") for row in grid)
