"""E21 (new): job-service throughput vs sequential one-shot runs.

The service layer exists to amortize what the one-shot pipeline pays per
run — plan enumeration (amortized by the plan cache) and worker-pool
startup (amortized by shared, long-lived backend pools) — while
overlapping jobs on K scheduler slots.  This bench runs the same N-job
workload both ways and reports throughput, p50/p95 submit-to-done
latency, and the plan-cache hit rate.

Correctness is asserted unconditionally (service outputs must equal the
one-shot outputs job for job, every job must reach ``done``, and the
expected plan-cache hits must happen — the same checks ``repro bench
--service-jobs --check`` runs in CI).  Wall-clock comparisons are
advisory on shared hardware, like every engine bench; the committed
artifact records the worker count.
"""

from __future__ import annotations

from benchmarks.harness import emit, run_once
from repro.engine.backends import available_workers
from repro.service.smoke import run_service_smoke
from repro.utils.tables import format_table

#: Concurrent jobs per scenario cell.
JOB_COUNTS = (4, 8, 16)
SLOTS = 2


def service_rows() -> list[dict[str, object]]:
    """sequential-vs-service rows for every job count."""
    rows: list[dict[str, object]] = []
    for jobs in JOB_COUNTS:
        scenario_rows, failures = run_service_smoke(jobs, slots=SLOTS)
        assert not failures, failures
        for row in scenario_rows:
            rows.append({"n": jobs, **row})
    return rows


def test_e21_service_throughput(benchmark):
    rows = run_once(benchmark, service_rows)
    emit(
        "E21",
        format_table(
            rows,
            title=(
                f"E21: job service ({SLOTS} slots, shared pools + plan "
                f"cache) vs sequential one-shot runs "
                f"({available_workers()} workers)"
            ),
        ),
        rows=rows,
    )
    assert len(rows) == 2 * len(JOB_COUNTS)
    # Every service cell demonstrates plan-cache hits: the scenario cycles
    # 3 distinct spec shapes, so N jobs yield N-3 hits.
    for row in rows:
        if row["mode"] == "service":
            assert float(row["cache_hit_rate"]) > 0.0, row
