"""E22 (new): tracing overhead — observability must be close to free.

The tracing layer's contract is *zero-cost when disabled, cheap when
enabled*: the engine's hot per-record loops contain no tracing calls, the
null tracer hands out shared no-op objects, and an enabled tracer only
pays one span per phase and per task.  This bench measures the E18
map-heavy scenario (the one whose wall clock is dominated by real user
work, so the ratio is meaningful) three ways per backend: untraced,
:data:`~repro.obs.trace.NULL_TRACER` passed explicitly, and a live
:class:`~repro.obs.trace.Tracer`.

The committed artifact records the overhead ratios (the acceptance
numbers: null within a few percent of untraced, enabled within ~10%);
the in-test assertions are looser — shared CI runners add scheduler
noise that the artifact's best-of-N walls largely avoid, and hard ratio
gates on millisecond walls would flake.
"""

from __future__ import annotations

from benchmarks.harness import emit, run_once
from repro.engine.backends import available_workers
from repro.engine.quickbench import run_trace_overhead
from repro.utils.tables import format_table

SCALE = 0.5
REPEAT = 3
BACKENDS = ("serial", "threads")


def overhead_rows() -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    for backend in BACKENDS:
        rows += run_trace_overhead(
            scenario="map_heavy", backend=backend, scale=SCALE, repeat=REPEAT
        )
    return rows


def test_e22_trace_overhead(benchmark):
    rows = run_once(benchmark, overhead_rows)
    emit(
        "E22",
        format_table(
            rows,
            title=(
                "E22: tracing overhead on map_heavy "
                f"(scale={SCALE}, best of {REPEAT}, "
                f"{available_workers()} workers)"
            ),
        ),
        rows=rows,
    )
    by_mode = {(r["backend"], r["tracing"]): r for r in rows}
    for backend in BACKENDS:
        off = by_mode[(backend, "off")]
        null = by_mode[(backend, "null")]
        on = by_mode[(backend, "on")]
        # The untraced and null-traced runs record nothing; the enabled
        # run must actually have collected phase + task spans.
        assert off["spans"] == 0 and null["spans"] == 0
        assert on["spans"] > 0, backend
        # Generous sanity bounds (the artifact carries the real ratios):
        # a disabled tracer must not double the wall clock, and an
        # enabled one must stay within 1.5x on a CPU-bound scenario.
        assert float(null["wall_s"]) <= float(off["wall_s"]) * 1.25 + 0.05, (
            backend,
            null,
        )
        assert float(on["wall_s"]) <= float(off["wall_s"]) * 1.5 + 0.05, (
            backend,
            on,
        )
