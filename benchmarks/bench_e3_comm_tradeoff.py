"""E3 (figure): tradeoff (iii) — communication cost vs. capacity q.

Same workload as E2.  Expected shape: the total map->reduce volume and the
replication rate both fall as q grows (fewer reducers means fewer copies
of each input), always staying above the residual-capacity communication
lower bound and above shipping every input once.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import emit, run_once
from repro.analysis.tradeoffs import sweep_a2a_communication
from repro.utils.tables import format_table
from repro.workloads.distributions import zipf_sizes

M = 200
Q_VALUES = [100, 200, 400, 800, 1600]
SEED = 1


def compute_rows() -> list[dict[str, object]]:
    sizes = [min(s, Q_VALUES[0] // 2) for s in zipf_sizes(M, 1.5, 200, seed=SEED)]
    return sweep_a2a_communication(sizes, Q_VALUES)


@pytest.mark.benchmark(group="E3")
def test_e3_communication_vs_q(benchmark):
    rows = run_once(benchmark, compute_rows)
    emit("E3", format_table(rows, title="E3: A2A communication cost vs q"), rows=rows)

    costs = [r["comm_cost"] for r in rows]
    rates = [r["replication_rate"] for r in rows]
    assert all(a >= b for a, b in zip(costs, costs[1:])), "comm falls with q"
    assert all(a >= b for a, b in zip(rates, rates[1:])), "replication falls with q"
    for row in rows:
        assert row["comm_cost"] >= row["comm_lower_bound"]
        assert row["comm_cost"] >= row["volume"]  # every input ships once
    # The tradeoff is real: the smallest capacity costs several times more
    # communication than the largest.
    assert costs[0] / costs[-1] > 3
