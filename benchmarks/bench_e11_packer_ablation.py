"""E11 (ablation): does the packing heuristic matter downstream?

The bin-pairing scheme's reducer count is C(b, 2) in the bins used, so
packing quality is *squared* in the output.  This ablation sweeps all six
packing heuristics inside the A2A pairing scheme and the X2Y grid.
Expected shape: decreasing-order packers (FFD/BFD) dominate the naive
online ones (NF/WF), and the gap grows quadratically via the pairing.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import emit, run_once
from repro.binpack import HEURISTICS
from repro.core.a2a.ffd_pairing import ffd_pairing
from repro.core.instance import A2AInstance, X2YInstance
from repro.core.x2y.grid import half_split_grid
from repro.utils.tables import format_table
from repro.workloads.distributions import sample_sizes

M = 120
Q = 240
SEED = 11


def compute_rows() -> list[dict[str, object]]:
    sizes = [min(s, Q // 2) for s in sample_sizes("zipf", M, Q, seed=SEED)]
    a2a = A2AInstance(sizes, Q)
    xs = [min(s, Q // 2) for s in sample_sizes("zipf", M // 2, Q, seed=SEED + 1)]
    ys = [min(s, Q // 2) for s in sample_sizes("zipf", M // 2, Q, seed=SEED + 2)]
    x2y = X2YInstance(xs, ys, Q)

    rows = []
    for name, packer in HEURISTICS.items():
        a2a_schema = ffd_pairing(a2a, packer=packer)
        a2a_schema.require_valid()
        x2y_schema = half_split_grid(x2y, packer=packer)
        x2y_schema.require_valid()
        rows.append(
            {
                "packer": name,
                "a2a_reducers": a2a_schema.num_reducers,
                "a2a_comm": a2a_schema.communication_cost,
                "x2y_reducers": x2y_schema.num_reducers,
                "x2y_comm": x2y_schema.communication_cost,
            }
        )
    return rows


@pytest.mark.benchmark(group="E11")
def test_e11_packer_ablation(benchmark):
    rows = run_once(benchmark, compute_rows)
    emit("E11", format_table(rows, title="E11: packing heuristic ablation"), rows=rows)

    by_name = {r["packer"]: r for r in rows}
    # Decreasing-order packers never lose to their online counterparts.
    assert (
        by_name["first_fit_decreasing"]["a2a_reducers"]
        <= by_name["next_fit"]["a2a_reducers"]
    )
    assert (
        by_name["best_fit_decreasing"]["x2y_reducers"]
        <= by_name["worst_fit"]["x2y_reducers"]
    )
    # All six produce valid schemas (checked in compute) — the ablation is
    # about cost, not correctness.
    assert len(rows) == 6
