"""E5 (table): X2Y grid schemes vs. lower bound across size distributions.

For each size profile on both sides, the half-split grid, the best-split
grid, the big/small scheme and the greedy baseline are compared against
the cross-pair lower bound.  Expected shape: the grid schemes stay within
a small constant factor of the bound on *every* distribution (the paper's
"who wins" claim for the bin-packing approach), with best-split <= half.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import emit, run_once
from repro.core.bounds import x2y_reducer_lower_bound
from repro.core.instance import X2YInstance
from repro.core.selector import X2Y_METHODS
from repro.exceptions import ReproError
from repro.utils.tables import format_table
from repro.workloads.distributions import sample_sizes
from repro.workloads.stats import gini_coefficient

M = N = 60
Q = 300
SEED = 5
METHODS = ["half_grid", "best_split_grid", "big_small", "greedy"]
PROFILES = ["uniform", "zipf", "normal", "bimodal"]


def compute_rows() -> list[dict[str, object]]:
    rows = []
    for profile in PROFILES:
        xs = [min(s, Q // 2) for s in sample_sizes(profile, M, Q, seed=SEED)]
        ys = [min(s, Q // 2) for s in sample_sizes(profile, N, Q, seed=SEED + 1)]
        instance = X2YInstance(xs, ys, Q)
        bound = x2y_reducer_lower_bound(instance)
        row: dict[str, object] = {
            "profile": profile,
            "gini": round(gini_coefficient(xs + ys), 2),
            "lower_bound": bound,
        }
        for method in METHODS:
            try:
                schema = X2Y_METHODS[method](instance)
                schema.require_valid()
                row[method] = schema.num_reducers
                row[f"{method}_ratio"] = round(schema.num_reducers / bound, 2)
            except ReproError:
                row[method] = None
        rows.append(row)
    return rows


@pytest.mark.benchmark(group="E5")
def test_e5_x2y_across_distributions(benchmark):
    rows = run_once(benchmark, compute_rows)
    columns = ["profile", "gini", "lower_bound", *METHODS, *(f"{m}_ratio" for m in METHODS)]
    emit("E5", format_table(rows, columns=columns, title="E5: X2Y schemes vs lower bound"), rows=rows)

    for row in rows:
        assert row["best_split_grid"] is not None
        assert row["best_split_grid"] >= row["lower_bound"]
        if row["half_grid"] is not None:
            assert row["best_split_grid"] <= row["half_grid"]
        # Grid schemes within a small constant of the bound everywhere.
        assert row["best_split_grid_ratio"] <= 4.0, row["profile"]
