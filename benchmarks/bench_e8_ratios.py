"""E8 (figure): approximation-ratio distributions of the heuristics.

Random instances from four size profiles; the achieved/lower-bound reducer
ratio is summarized per (method, profile).  Expected shape: the structured
bin-pairing scheme's ratio mass sits within the constant promised by the
packing argument across every profile; greedy is competitive but with a
heavier tail on heterogeneous (zipf/bimodal) sizes.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import emit, run_once
from repro.analysis.ratios import a2a_ratio_study, x2y_ratio_study
from repro.utils.tables import format_table

TRIALS = 30
M = 50
Q = 300
PROFILES = ["uniform", "zipf", "normal", "bimodal"]


def compute_rows() -> list[dict[str, object]]:
    rows = []
    for profile in PROFILES:
        for method in ["bin_pairing", "greedy"]:
            summary = a2a_ratio_study(
                method, profile, trials=TRIALS, m=M, q=Q, seed=8
            )
            rows.append({"problem": "A2A", **summary.as_row()})
    for profile in PROFILES:
        summary = x2y_ratio_study(
            "best_split_grid", profile, trials=TRIALS, m=30, n=30, q=Q, seed=9
        )
        rows.append({"problem": "X2Y", **summary.as_row()})
    return rows


@pytest.mark.benchmark(group="E8")
def test_e8_approximation_ratios(benchmark):
    rows = run_once(benchmark, compute_rows)
    emit("E8", format_table(rows, title="E8: approximation ratios vs lower bounds"), rows=rows)

    for row in rows:
        assert row["solved"] == TRIALS, f"{row['method']} skipped instances"
        assert row["mean_ratio"] >= 1.0
    pairing = [r for r in rows if r["method"] == "bin_pairing"]
    assert max(r["max_ratio"] for r in pairing) <= 5.0
    grid = [r for r in rows if r["method"] == "best_split_grid"]
    assert max(r["max_ratio"] for r in grid) <= 5.0
