"""E2 (figure): A2A different-sized inputs — reducers vs. capacity q.

Zipf-distributed sizes, q swept over a 16x range.  Expected shape: the
reducer count of every algorithm falls superlinearly as q grows (each
reducer covers ~q^2 pairs), all stay above the lower bound, and the
structured bin-pairing scheme tracks the bound more tightly than the
unstructured greedy baseline at large q.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import emit, run_once
from repro.analysis.tradeoffs import sweep_a2a_reducers
from repro.utils.tables import format_table
from repro.workloads.distributions import zipf_sizes

M = 200
Q_VALUES = [100, 200, 400, 800, 1600]
SEED = 1


def make_sizes() -> list[int]:
    # Clamp to the smallest swept q // 2 so every method runs at every q.
    return [min(s, Q_VALUES[0] // 2) for s in zipf_sizes(M, 1.5, 200, seed=SEED)]


def compute_rows() -> list[dict[str, object]]:
    return sweep_a2a_reducers(
        make_sizes(), Q_VALUES, methods=("bin_pairing", "greedy")
    )


@pytest.mark.benchmark(group="E2")
def test_e2_a2a_reducers_vs_q(benchmark):
    rows = run_once(benchmark, compute_rows)
    emit("E2", format_table(rows, title="E2: A2A reducers vs q (zipf sizes, m=200)"), rows=rows)

    pairing = [r["bin_pairing"] for r in rows]
    greedy = [r["greedy"] for r in rows]
    bounds = [r["lower_bound"] for r in rows]
    # Monotone decrease in q for the structured scheme.
    assert all(a >= b for a, b in zip(pairing, pairing[1:]))
    # Everyone respects the lower bound.
    for series in (pairing, greedy):
        assert all(v >= b for v, b in zip(series, bounds))
    # Superlinear drop: 16x capacity shrinks reducers by far more than 16x.
    assert pairing[0] / pairing[-1] > 16
