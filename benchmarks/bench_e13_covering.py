"""E13 (ablation): covering designs vs. plain group pairing (equal sizes).

For equal-sized inputs, the plain grouping scheme pairs two groups per
reducer; the grouped-covering scheme packs ``s = k // g`` groups per
reducer using a pair-covering design (exact Steiner triple systems where
they exist).  Expected shape: covering wins whenever ``k >= 6`` (three or
more groups fit), approaching the ``C(s,2)``-fold improvement, and never
loses (the sweep includes plain pairing as the s=2 candidate).
"""

from __future__ import annotations

import pytest

from benchmarks.harness import emit, run_once
from repro.core.a2a import equal_sized_grouping, grouped_covering
from repro.core.bounds import a2a_equal_sized_reducer_bound
from repro.core.instance import A2AInstance
from repro.utils.tables import format_table

CASES = [
    # (m, w, q) -> k = q // w
    (48, 1, 4),
    (60, 1, 6),
    (90, 1, 6),
    (72, 1, 8),
    (120, 1, 12),
    (96, 2, 24),
    (180, 1, 18),
]


def compute_rows() -> list[dict[str, object]]:
    rows = []
    for m, w, q in CASES:
        instance = A2AInstance.equal_sized(m, w, q)
        plain = equal_sized_grouping(instance)
        covered = grouped_covering(instance)
        plain.require_valid()
        covered.require_valid()
        k = q // w
        bound = a2a_equal_sized_reducer_bound(m, k)
        rows.append(
            {
                "m": m,
                "k": k,
                "plain_pairing": plain.num_reducers,
                "grouped_covering": covered.num_reducers,
                "lower_bound": bound,
                "improvement": round(plain.num_reducers / covered.num_reducers, 2),
                "covering_ratio": round(covered.num_reducers / bound, 2),
            }
        )
    return rows


@pytest.mark.benchmark(group="E13")
def test_e13_covering_vs_pairing(benchmark):
    rows = run_once(benchmark, compute_rows)
    emit("E13", format_table(rows, title="E13: covering designs vs plain pairing"), rows=rows)

    for row in rows:
        assert row["grouped_covering"] <= row["plain_pairing"], row
        assert row["grouped_covering"] >= row["lower_bound"], row
    # Somewhere in the k >= 6 regime the improvement is substantial.
    big_k = [r for r in rows if r["k"] >= 6]
    assert max(r["improvement"] for r in big_k) >= 1.25
    # Covering tracks the bound within a modest constant everywhere.
    assert max(r["covering_ratio"] for r in rows) <= 3.0
