"""E19 (new): out-of-core execution — memory-bounded vs unbounded shuffle.

The spill-to-disk shuffle exists so jobs survive inputs whose intermediate
state does not fit in memory; E19 measures what that insurance costs when
it kicks in.  The shuffle-heavy scenario (tiny pairs, huge fan-out — the
workload shape with the largest buffered state per record) runs on every
backend twice: fully in-memory, and with a deliberately tiny
``memory_budget`` that forces many sorted runs to disk.

Expected shape: identical outputs in both modes on every backend (asserted
inside :func:`repro.engine.quickbench.run_out_of_core`); budgeted rows show
non-zero ``spill_runs``/``spilled_bytes`` with ``peak_buffered`` pinned
near the budget instead of growing with the input; the budgeted wall clock
pays a constant-factor serialization tax — the price of bounded memory,
not a scaling cliff.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import emit, run_once
from repro.engine.backends import BACKENDS, available_workers
from repro.engine.quickbench import check_spill, run_out_of_core
from repro.utils.tables import format_table

SCALE = 1.0
MEMORY_BUDGET = 512
REPEAT = 2


def compute_rows() -> list[dict[str, object]]:
    return run_out_of_core(
        scenario="shuffle_heavy",
        scale=SCALE,
        memory_budget=MEMORY_BUDGET,
        repeat=REPEAT,
    )


@pytest.mark.benchmark(group="E19")
def test_e19_out_of_core(benchmark):
    rows = run_once(benchmark, compute_rows)
    emit(
        "E19",
        format_table(
            rows,
            title=(
                f"E19: out-of-core shuffle, unbounded vs memory_budget="
                f"{MEMORY_BUDGET} pairs (scale={SCALE}, best of {REPEAT}, "
                f"{available_workers()} workers)"
            ),
        ),
        rows=rows,
    )

    assert len(rows) == 2 * len(BACKENDS)
    # Budgeted cells must actually have spilled, and the peak buffered
    # pair count must be bounded by the budget (plus one record's
    # emissions), or the bench is not measuring out-of-core execution.
    assert check_spill(rows) == []
    for row in rows:
        if row["mode"] == "unbounded":
            assert row["spill_runs"] == 0
        else:
            assert int(row["spill_runs"]) >= 2
            assert int(row["spilled_bytes"]) > 0
