"""E23 (new): fault tolerance — completion time vs injected failure rate.

The paper's mapping schemas make recovery cheap: every task's inputs are
known up front, so a lost task is recomputed in isolation instead of
rerunning the job.  This bench measures what that costs end to end on
the E18 shuffle-heavy scenario with pinned task geometry (identical task
decomposition on every backend, hence identical deterministic fault
decisions):

* ``faults-off`` — the fault plane fully disabled: the plain dispatch
  path, the overhead baseline (gated against the committed
  ``perf-baseline.json`` by the CI perf smoke, so recovery machinery can
  never silently tax the happy path).
* ``armed`` — retry policy configured but nothing injected: the price of
  the resilient dispatch path itself (materialized tasks, per-task
  bookkeeping) with zero failures.
* ``crash=0.05`` / ``crash=0.2`` — deterministic injected task crashes
  at E23's failure rates, recovered by per-task retry.
* ``kill=0.1`` (processes only) — injected worker deaths: the pool
  breaks, is rebuilt, and only the lost in-flight tasks are replayed.

Every faulted run's outputs are asserted identical to the fault-free
run's (inside :func:`run_fault_injection` for the rate sweep, explicitly
here for ``armed`` and ``kill``): recovery must be invisible in results.
The committed artifact records the overhead ratios and retry counts; the
in-test assertions are generous (shared CI runners add noise the
artifact's best-of-N walls largely avoid).
"""

from __future__ import annotations

from benchmarks.harness import emit, run_once
from repro.engine.backends import available_workers
from repro.engine.quickbench import (
    _FAULT_GEOMETRY,
    _FAULT_MAX_ATTEMPTS,
    run_fault_injection,
    run_scenario,
)
from repro.faults import RetryPolicy
from repro.utils.tables import format_table

SCALE = 0.5
REPEAT = 3
RATES = (0.05, 0.2)
BACKENDS = ("serial", "threads", "processes")
SPEC = "crash=0.2,seed=7"
KILL_SPEC = "kill=0.1,seed=3"
POLICY = RetryPolicy(
    max_attempts=_FAULT_MAX_ATTEMPTS, backoff_base=0.002, backoff_max=0.02
)


def _best_run(backend: str, **kwargs):
    best = None
    for _ in range(REPEAT):
        result, wall = run_scenario(
            "shuffle_heavy", backend, scale=SCALE, **_FAULT_GEOMETRY, **kwargs
        )
        if best is None or wall < best[1]:
            best = (result, wall)
    return best


def fault_rows() -> list[dict[str, object]]:
    rows = run_fault_injection(
        scenario="shuffle_heavy",
        backends=BACKENDS,
        spec=SPEC,
        rates=RATES,
        scale=SCALE,
        repeat=REPEAT,
    )
    off_walls = {
        str(r["backend"]): float(r["wall_s"])
        for r in rows
        if r["mode"] == "faults-off"
    }
    off_outputs = {
        str(r["backend"]): int(r["outputs"])
        for r in rows
        if r["mode"] == "faults-off"
    }
    # Armed-but-idle: the resilient dispatch path with zero failures —
    # the machinery's own overhead, separated from actual recovery work.
    for backend in BACKENDS:
        result, wall = _best_run(backend, retry=POLICY)
        assert len(result.outputs) == off_outputs[backend], backend
        rows.append(
            {
                "scenario": "shuffle_heavy",
                "backend": backend,
                "mode": "armed",
                "wall_s": round(wall, 3),
                "overhead_vs_off": round(wall / off_walls[backend], 2),
                "retries": result.engine.task_retries,
                "retry_bound": "",
                "pool_rebuilds": result.engine.pool_rebuilds,
                "outputs": len(result.outputs),
            }
        )
    # Worker deaths on the process pool: rebuild-and-replay recovery.
    result, wall = _best_run("processes", retry=POLICY, faults=KILL_SPEC)
    assert len(result.outputs) == off_outputs["processes"]
    rows.append(
        {
            "scenario": "shuffle_heavy",
            "backend": "processes",
            "mode": KILL_SPEC,
            "wall_s": round(wall, 3),
            "overhead_vs_off": round(wall / off_walls["processes"], 2),
            "retries": result.engine.task_retries,
            "retry_bound": "",
            "pool_rebuilds": result.engine.pool_rebuilds,
            "outputs": len(result.outputs),
        }
    )
    return rows


def test_e23_fault_tolerance(benchmark):
    rows = run_once(benchmark, fault_rows)
    emit(
        "E23",
        format_table(
            rows,
            title=(
                "E23: fault injection on shuffle_heavy "
                f"(scale={SCALE}, best of {REPEAT}, "
                f"{available_workers()} workers, pinned geometry "
                f"{_FAULT_GEOMETRY})"
            ),
        ),
        rows=rows,
    )
    by_mode: dict[tuple[str, str], dict[str, object]] = {
        (str(r["backend"]), str(r["mode"])): r for r in rows
    }
    crash_retries: dict[str, list[int]] = {}
    for (backend, mode), row in by_mode.items():
        if mode in ("faults-off", "armed"):
            # Nothing injected: the retry counter must stay at zero (on
            # the plain path it cannot even increment).
            assert int(row["retries"]) == 0, (backend, mode, row)
        elif mode.startswith("crash="):
            # Injected crashes must be observed, recovered boundedly.
            assert int(row["retries"]) >= 1, (backend, mode, row)
            assert int(row["retries"]) <= int(row["retry_bound"]), row
            crash_retries.setdefault(mode, []).append(int(row["retries"]))
    # Determinism across backends: pinned geometry + seeded injector means
    # every backend saw the *same* failure scenario — identical retry
    # counts, not merely identical outputs.
    for mode, counts in crash_retries.items():
        assert len(set(counts)) == 1, (mode, counts)
    kill = by_mode[("processes", KILL_SPEC)]
    assert int(kill["pool_rebuilds"]) >= 1, kill
    # Loose wall sanity: the armed-but-idle path must not blow up the
    # fault-free wall (the artifact carries the honest ratio).
    for backend in BACKENDS:
        off = float(by_mode[(backend, "faults-off")]["wall_s"])
        armed = float(by_mode[(backend, "armed")]["wall_s"])
        assert armed <= off * 1.5 + 0.05, (backend, off, armed)
