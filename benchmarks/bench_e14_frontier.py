"""E14 (figure): the capacity Pareto frontier — choosing q in practice.

Ties the three tradeoffs together: for one workload and worker pool, each
candidate q is evaluated on (communication cost, makespan) and the
Pareto-optimal set is marked.  Expected shape: small q are dominated
(replication work inflates both costs), very large q are dominated
(starved pool inflates makespan at no communication gain), and the
frontier sits in between — the operator's actual decision set.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import emit, run_once
from repro.analysis.frontier import best_capacity, capacity_frontier
from repro.utils.tables import format_table
from repro.workloads.distributions import sample_sizes

M = 150
WORKERS = 16
SEED = 14
Q_VALUES = [100, 150, 250, 400, 800, 1600, 3200, 6400]


def compute_rows() -> list[dict[str, object]]:
    sizes = [min(s, Q_VALUES[0] // 2) for s in sample_sizes("zipf", M, 300, seed=SEED)]
    points = capacity_frontier(sizes, Q_VALUES, WORKERS)
    best = best_capacity(sizes, Q_VALUES, WORKERS, comm_weight=0.05)
    rows = [p.as_row() for p in points]
    for row in rows:
        row["weighted_best"] = "<-" if row["q"] == best.q else ""
    return rows


@pytest.mark.benchmark(group="E14")
def test_e14_capacity_frontier(benchmark):
    rows = run_once(benchmark, compute_rows)
    emit("E14", format_table(rows, title=f"E14: capacity frontier ({WORKERS} workers)"), rows=rows)

    pareto = [r for r in rows if r["pareto"] == "*"]
    dominated = [r for r in rows if r["pareto"] != "*"]
    assert pareto, "frontier cannot be empty"
    assert dominated, "with an 64x capacity range some point must be dominated"
    # Communication is monotone nonincreasing in q across the sweep.
    comms = [r["comm_cost"] for r in rows]
    assert all(a >= b for a, b in zip(comms, comms[1:]))
    # The weighted pick lands on the frontier.
    chosen = next(r for r in rows if r["weighted_best"] == "<-")
    assert chosen["pareto"] == "*"
