"""E6 (figure): skew join — schema-based vs. hash partitioning under skew.

The skew exponent of the join-key distribution is swept.  Expected shape:
the hash join's max reducer load grows with skew and blows through the
capacity q (the heavy-hitter pathology the paper opens with), while the
schema-based join holds every reducer at <= q for identical output, paying
a bounded communication premium that grows with the number of heavy keys.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import emit, run_once
from repro.apps.skew_join import hash_join, naive_join, schema_skew_join
from repro.utils.tables import format_table
from repro.workloads.relations import generate_join_workload

TUPLES = 500
KEYS = 15
Q = 80
SEED = 6
SKEWS = [0.0, 0.4, 0.8, 1.2, 1.6]


def compute_rows() -> list[dict[str, object]]:
    rows = []
    for skew in SKEWS:
        x, y = generate_join_workload(TUPLES, TUPLES, KEYS, skew, seed=SEED)
        truth = naive_join(x, y)
        baseline = hash_join(x, y, Q)
        schema_run = schema_skew_join(x, y, Q)
        assert baseline.triple_set() == truth
        assert schema_run.triple_set() == truth
        rows.append(
            {
                "skew": skew,
                "heavy_keys": len(schema_run.heavy_keys),
                "hash_max_load": baseline.metrics.max_reducer_load,
                "schema_max_load": schema_run.metrics.max_reducer_load,
                "hash_comm": baseline.metrics.communication_cost,
                "schema_comm": schema_run.metrics.communication_cost,
                "join_rows": len(truth),
            }
        )
    return rows


@pytest.mark.benchmark(group="E6")
def test_e6_skew_join(benchmark):
    rows = run_once(benchmark, compute_rows)
    emit("E6", format_table(rows, title=f"E6: skew join, q={Q}, {KEYS} keys"), rows=rows)

    # Schema-based join never exceeds capacity, at any skew.
    assert all(r["schema_max_load"] <= Q for r in rows)
    # Hash join's max load grows with skew and ends far above capacity.
    hash_loads = [r["hash_max_load"] for r in rows]
    assert hash_loads[-1] > hash_loads[0]
    assert hash_loads[-1] > 2 * Q
    # The communication premium of the schema join is bounded (it only
    # replicates tuples of heavy keys).
    for row in rows:
        assert row["schema_comm"] <= 12 * row["hash_comm"]
