"""Shared helpers for the experiment benchmarks.

Every bench regenerates one reconstructed table/figure (E1-E17 in
DESIGN.md).  The regenerated rows are printed to stdout (visible with
``pytest -s``) and persisted under ``benchmarks/results/<id>.txt`` so the
artifacts survive the run; EXPERIMENTS.md records the reference outputs.
Benches that pass their raw ``rows`` additionally get a machine-readable
``benchmarks/results/<id>.json`` (rows plus wall time), so the performance
trajectory can be tracked across PRs by diffing JSON instead of scraping
tables.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Mapping, Sequence

RESULTS_DIR = Path(__file__).parent / "results"

#: Wall time of the most recent :func:`run_once` call, consumed by
#: :func:`emit` when the bench does not pass an explicit ``wall_seconds``.
LAST_WALL_SECONDS: float | None = None


def emit(
    experiment_id: str,
    text: str,
    rows: Sequence[Mapping[str, object]] | None = None,
    wall_seconds: float | None = None,
) -> None:
    """Print an experiment's regenerated table and persist it to disk.

    When *rows* is given, also writes ``results/<id>.json`` holding the raw
    rows plus the wall time (explicit *wall_seconds*, else the time of the
    last :func:`run_once` call), as the machine-readable counterpart of the
    text table.
    """
    banner = f"\n===== {experiment_id} =====\n{text}\n"
    print(banner)
    sys.stdout.flush()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id.lower()}.txt").write_text(banner)
    if rows is not None:
        if wall_seconds is None:
            wall_seconds = LAST_WALL_SECONDS
        payload = {
            "experiment": experiment_id,
            "wall_seconds": wall_seconds,
            "rows": [dict(row) for row in rows],
        }
        (RESULTS_DIR / f"{experiment_id.lower()}.json").write_text(
            json.dumps(payload, indent=2, default=str) + "\n"
        )


def run_once(benchmark, fn):
    """Time *fn* exactly once through pytest-benchmark and return its result.

    The experiments are deterministic computations, often seconds long, so
    one round is both sufficient and honest; pytest-benchmark still records
    the wall time in its table, and the measured wall time is kept in
    :data:`LAST_WALL_SECONDS` for :func:`emit`'s JSON artifact.
    """
    global LAST_WALL_SECONDS
    started = time.perf_counter()
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    LAST_WALL_SECONDS = time.perf_counter() - started
    return result
