"""Shared helpers for the experiment benchmarks.

Every bench regenerates one reconstructed table/figure (E1-E16 in
DESIGN.md).  The regenerated rows are printed to stdout (visible with
``pytest -s``) and persisted under ``benchmarks/results/<id>.txt`` so the
artifacts survive the run; EXPERIMENTS.md records the reference outputs.
"""

from __future__ import annotations

import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(experiment_id: str, text: str) -> None:
    """Print an experiment's regenerated table and persist it to disk."""
    banner = f"\n===== {experiment_id} =====\n{text}\n"
    print(banner)
    sys.stdout.flush()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id.lower()}.txt").write_text(banner)


def run_once(benchmark, fn):
    """Time *fn* exactly once through pytest-benchmark and return its result.

    The experiments are deterministic computations, often seconds long, so
    one round is both sufficient and honest; pytest-benchmark still records
    the wall time in its table.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
