"""E7 (table): end-to-end similarity join — schema join vs. broadcast.

For a fixed corpus the capacity q is swept.  Expected shape: both methods
return exactly the ground-truth pair set; the broadcast baseline ships the
corpus once but overflows its single reducer at every q below the corpus
size, while the schema join keeps max load <= q, trading replication
(communication) that shrinks as q grows.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import emit, run_once
from repro.apps.similarity_join import run_broadcast_baseline, run_similarity_join
from repro.utils.tables import format_table
from repro.workloads.documents import all_pairs_above, generate_documents

M = 50
THRESHOLD = 0.15
SEED = 7
Q_VALUES = [100, 150, 250]


def compute_rows() -> list[dict[str, object]]:
    documents = generate_documents(M, Q_VALUES[0], profile="zipf", seed=SEED)
    total_size = sum(d.size for d in documents)
    assert total_size > max(Q_VALUES), "corpus must exceed every swept q"
    truth = all_pairs_above(documents, THRESHOLD)
    rows = []
    for q in Q_VALUES:
        schema_run = run_similarity_join(documents, q, THRESHOLD)
        naive_run = run_broadcast_baseline(documents, q, THRESHOLD)
        assert schema_run.pair_set() == truth
        assert naive_run.pair_set() == truth
        rows.append(
            {
                "q": q,
                "true_pairs": len(truth),
                "schema_reducers": schema_run.metrics.num_reducers,
                "schema_comm": schema_run.metrics.communication_cost,
                "schema_max_load": schema_run.metrics.max_reducer_load,
                "schema_violations": len(schema_run.metrics.capacity_violations),
                "naive_comm": naive_run.metrics.communication_cost,
                "naive_max_load": naive_run.metrics.max_reducer_load,
                "naive_violations": len(naive_run.metrics.capacity_violations),
            }
        )
    return rows


@pytest.mark.benchmark(group="E7")
def test_e7_similarity_join(benchmark):
    rows = run_once(benchmark, compute_rows)
    emit("E7", format_table(rows, title="E7: similarity join, schema vs broadcast"), rows=rows)

    for row in rows:
        assert row["schema_violations"] == 0
        assert row["schema_max_load"] <= row["q"]
        # Corpus exceeds every swept q, so broadcast always overflows.
        assert row["naive_violations"] == 1
        assert row["naive_max_load"] > row["q"]
    # Schema communication falls as q grows.
    comms = [r["schema_comm"] for r in rows]
    assert all(a >= b for a, b in zip(comms, comms[1:]))
