"""E17 (new): execution-engine backends × schema methods, wall clock.

The analytical benches (E1-E16) compare schemas on cost metrics; E17 runs
them.  A large skew-join workload is executed through the engine on every
backend (serial / threads / processes) for several heavy-key solving
methods, and the table reports measured wall-clock per combination.
Expected shape: all backends produce identical output (the engine
cross-validates against the simulator), and on a multi-core machine the
process pool beats serial on this CPU-bound reduce phase; schema method
changes shift communication cost and task balance without changing output.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.harness import emit, run_once
from repro.apps.skew_join import naive_join, schema_skew_join
from repro.engine.backends import BACKENDS, available_workers
from repro.utils.tables import format_table
from repro.workloads.relations import generate_join_workload

TUPLES = 1200
KEYS = 10
Q = 150
SKEW = 1.4
SEED = 17
METHODS = ["auto", "half_grid", "best_split_grid"]


def compute_rows() -> list[dict[str, object]]:
    x, y = generate_join_workload(
        TUPLES, TUPLES, KEYS, SKEW, size_jitter=2, seed=SEED
    )
    truth = naive_join(x, y)
    rows: list[dict[str, object]] = []
    for method in METHODS:
        serial_wall: float | None = None
        for backend in ("serial", "threads", "processes"):
            started = time.perf_counter()
            run = schema_skew_join(x, y, Q, method=method, backend=backend)
            wall = time.perf_counter() - started
            if backend == "serial":
                serial_wall = wall
            assert run.triple_set() == truth, (method, backend)
            assert run.metrics.max_reducer_load <= Q
            rows.append(
                {
                    "method": method,
                    "backend": backend,
                    "wall_s": round(wall, 3),
                    "speedup_vs_serial": (
                        round(serial_wall / wall, 2) if serial_wall else ""
                    ),
                    "heavy_keys": len(run.heavy_keys),
                    "reducers": run.metrics.num_reducers,
                    "comm": run.metrics.communication_cost,
                    "max_task_load": run.engine.max_task_load,
                    "map_s": round(run.engine.timings.map_seconds, 3),
                    "shuffle_s": round(
                        run.engine.timings.shuffle_seconds, 3
                    ),
                    "reduce_s": round(run.engine.timings.reduce_seconds, 3),
                    "reduce_tasks": run.engine.num_reduce_tasks,
                    "join_rows": len(truth),
                }
            )
    return rows


@pytest.mark.benchmark(group="E17")
def test_e17_engine_backends(benchmark):
    rows = run_once(benchmark, compute_rows)
    emit(
        "E17",
        format_table(
            rows,
            title=(
                f"E17: engine backends x methods, skew join "
                f"({TUPLES}x{TUPLES} tuples, q={Q}, skew={SKEW}, "
                f"{available_workers()} workers)"
            ),
        ),
        rows=rows,
    )

    # Every backend/method combination produced the exact join output and
    # stayed within capacity (asserted inside compute_rows), so the only
    # question left is wall clock.
    assert len(rows) == len(METHODS) * len(BACKENDS)

    # On a multi-core machine the process pool must at least match serial
    # on this CPU-bound (pure-Python, GIL-holding) reduce phase, and the
    # partitioned shuffle keeps threads from falling behind serial.  A
    # single-core container cannot show any speedup, so the claims are
    # only checked when parallel hardware exists.
    if available_workers() >= 2:
        by_backend = {
            backend: min(
                r["wall_s"] for r in rows if r["backend"] == backend
            )
            for backend in BACKENDS
        }
        assert by_backend["processes"] <= by_backend["serial"]
        assert by_backend["threads"] <= by_backend["serial"] * 1.2
