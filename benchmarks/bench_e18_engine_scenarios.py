"""E18 (new): engine phase scenarios — map-heavy, reduce-heavy, shuffle-heavy.

E17 measures one realistic application (the skew join); E18 isolates the
engine's three phases so a regression in any one of them is visible on its
own.  Each scenario (defined in :mod:`repro.engine.quickbench` so the
``processes`` backend can import them) is run on every backend with
best-of-two wall clocks:

* ``map_heavy`` — GIL-releasing ``zlib`` work per record: the ``threads``
  backend scales with real cores; the headline "threads >= 1.5x serial"
  claim lives here.
* ``reduce_heavy`` — the same work concentrated in reducers, reached
  through the partitioned shuffle.
* ``shuffle_heavy`` — tiny pairs, huge fan-out: wall clock is pure engine
  plumbing (mapper-side pre-partitioning, transpose, task merges).

Expected shape: all backends produce identical outputs (asserted inside
:func:`repro.engine.quickbench.run_scenarios`); on multi-core hardware
``threads`` wins the GIL-releasing scenarios and ``processes`` at least
matches serial; on a single core every backend is within noise of serial
because the engine no longer does per-pair work in the parent.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import emit, run_once
from repro.engine.backends import BACKENDS, available_workers
from repro.engine.quickbench import SCENARIOS, run_scenarios
from repro.utils.tables import format_table

SCALE = 2.0
REPEAT = 2


def compute_rows() -> list[dict[str, object]]:
    return run_scenarios(scale=SCALE, repeat=REPEAT)


@pytest.mark.benchmark(group="E18")
def test_e18_engine_scenarios(benchmark):
    rows = run_once(benchmark, compute_rows)
    emit(
        "E18",
        format_table(
            rows,
            title=(
                f"E18: engine phase scenarios x backends "
                f"(scale={SCALE}, best of {REPEAT}, "
                f"{available_workers()} workers)"
            ),
        ),
        rows=rows,
    )

    assert len(rows) == len(SCENARIOS) * len(BACKENDS)

    # Output identity across backends is asserted inside run_scenarios;
    # wall-clock claims need parallel hardware to be meaningful.
    if available_workers() >= 2:
        def wall(scenario: str, backend: str) -> float:
            return min(
                float(r["wall_s"])
                for r in rows
                if r["scenario"] == scenario and r["backend"] == backend
            )

        # GIL-releasing map work: threads must show a real speedup.
        assert wall("map_heavy", "threads") * 1.5 <= wall(
            "map_heavy", "serial"
        )
        # Pure engine plumbing must not regress behind serial by much on
        # any backend that shares memory.
        assert wall("shuffle_heavy", "threads") <= wall(
            "shuffle_heavy", "serial"
        ) * 1.3
