"""E12 (ablation): the price of online assignment.

Inputs stream into :class:`OnlineA2AAssigner` (first-fit, no repacking);
the offline FFD pairing re-solves with hindsight.  Expected shape: the
online schema stays valid at every prefix, and its reducer overhead over
offline stays within the first-fit/FFD packing-ratio squared (~2x-3x on
heterogeneous sizes), shrinking on friendlier distributions.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import emit, run_once
from repro.core.a2a.ffd_pairing import ffd_pairing
from repro.core.a2a.online import OnlineA2AAssigner
from repro.core.instance import A2AInstance
from repro.utils.tables import format_table
from repro.workloads.distributions import sample_sizes

M = 150
Q = 200
SEED = 12
PROFILES = ["uniform", "zipf", "normal", "constant"]


def compute_rows() -> list[dict[str, object]]:
    rows = []
    for profile in PROFILES:
        sizes = [min(s, Q // 2) for s in sample_sizes(profile, M, Q, seed=SEED)]
        assigner = OnlineA2AAssigner(Q)
        assigner.extend(sizes)
        online_schema = assigner.schema()
        online_schema.require_valid()
        offline_schema = ffd_pairing(A2AInstance(sizes, Q))
        rows.append(
            {
                "profile": profile,
                "online_bins": assigner.num_bins,
                "online_reducers": online_schema.num_reducers,
                "offline_reducers": offline_schema.num_reducers,
                "overhead": round(
                    online_schema.num_reducers / offline_schema.num_reducers, 2
                ),
                "online_comm": online_schema.communication_cost,
                "offline_comm": offline_schema.communication_cost,
            }
        )
    return rows


@pytest.mark.benchmark(group="E12")
def test_e12_online_vs_offline(benchmark):
    rows = run_once(benchmark, compute_rows)
    emit("E12", format_table(rows, title="E12: online vs offline assignment"), rows=rows)

    for row in rows:
        # Online can't beat hindsight...
        assert row["online_reducers"] >= row["offline_reducers"] * 0.99
        # ...but stays within the first-fit guarantee squared.
        assert row["overhead"] <= 3.5, row["profile"]
    # On constant sizes first-fit == FFD: zero overhead.
    constant = next(r for r in rows if r["profile"] == "constant")
    assert constant["overhead"] == 1.0
