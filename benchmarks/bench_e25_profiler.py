"""E25 (new): profiler overhead — continuous profiling must be opt-in cheap.

The profiler's contract mirrors the tracer's (E22): *zero-cost when
disabled, bounded when enabled*.  The engine's hot loops contain no
profiling calls — the ``None`` default and the explicit
:data:`~repro.obs.profiler.NULL_PROFILER` both reduce to attribute
checks at phase boundaries — while an enabled
:class:`~repro.obs.profiler.PhaseProfiler` pays for a background
resource sampler plus per-phase ``cProfile`` capture.  This bench
measures the E18 map-heavy scenario (wall clock dominated by real user
work, so ratios are meaningful) three ways per backend: unprofiled,
null profiler passed explicitly, and a live profiler.

The committed artifact records the acceptance numbers (disabled
overhead within ~1%, enabled typically 1.5-3x on a CPU-bound scenario —
cProfile instruments every call); the in-test assertions are looser
because shared CI runners add scheduler noise that the artifact's
best-of-N walls largely avoid.
"""

from __future__ import annotations

from benchmarks.harness import emit, run_once
from repro.engine.backends import available_workers
from repro.engine.quickbench import run_profile_overhead
from repro.utils.tables import format_table

SCALE = 0.5
REPEAT = 7
BACKENDS = ("serial", "threads")


def overhead_rows() -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    for backend in BACKENDS:
        rows += run_profile_overhead(
            scenario="map_heavy", backend=backend, scale=SCALE, repeat=REPEAT
        )
    return rows


def test_e25_profiler_overhead(benchmark):
    rows = run_once(benchmark, overhead_rows)
    emit(
        "E25",
        format_table(
            rows,
            title=(
                "E25: profiler overhead on map_heavy "
                f"(scale={SCALE}, best of {REPEAT}, "
                f"{available_workers()} workers)"
            ),
        ),
        rows=rows,
    )
    by_mode = {(r["backend"], r["profiling"]): r for r in rows}
    for backend in BACKENDS:
        off = by_mode[(backend, "off")]
        null = by_mode[(backend, "null")]
        on = by_mode[(backend, "on")]
        # Disabled profilers collect nothing; the enabled run must have
        # real phases, a function table, and a sampled peak RSS.
        assert off["phases"] == 0 and off["functions"] == 0
        assert null["phases"] == 0 and null["functions"] == 0
        assert on["phases"] > 0 and on["functions"] > 0, backend
        assert float(on["peak_rss_mb"]) > 0, backend
        # Generous sanity bounds (the artifact carries the real ratios):
        # a disabled profiler must not double the wall clock, and an
        # enabled one — which runs cProfile over every task — must stay
        # within an order of magnitude on a CPU-bound scenario.
        assert float(null["wall_s"]) <= float(off["wall_s"]) * 1.25 + 0.05, (
            backend,
            null,
        )
        assert float(on["wall_s"]) <= float(off["wall_s"]) * 10.0 + 0.5, (
            backend,
            on,
        )
