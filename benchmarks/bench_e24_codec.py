"""E24 (new): block-codec data plane — throughput, block size, transport.

The batched data plane replaced per-object pickling with typed blocks
(:mod:`repro.engine.codec`) shipped, on the ``processes`` backend, either
inline through the result pipe or zero-copy via shared-memory segments
(:mod:`repro.engine.shm`).  E24 measures the three knobs of that design:

* per-key-kind encode/decode throughput against a plain whole-dict
  pickle round-trip of the same bucket (the old wire format), with every
  row round-trip-verified before it reports a number;
* a block-size sweep over the spill path's granularity — small blocks
  pay per-block framing, huge blocks defeat streaming decode;
* the shuffle-heavy scenario on ``processes`` with the shared-memory
  transport forced on vs off, outputs asserted identical (the transport
  rows double as a correctness proof of both paths).

Expected shape: typed codecs selected for int/str/bytes keys with tuples
on the pickle fallback; transport rows encode identical byte counts with
``shm_segments`` nonzero only on the shm variant.  Wall-clock deltas
between shm and pipe are hardware-dependent (pipe wins on tiny payloads,
shm on wide reduce fan-in) — the gate checks identity and engagement,
not a speed ratio.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import emit, run_once
from repro.engine.backends import available_workers
from repro.engine.quickbench import check_codec, run_codec_bench
from repro.utils.tables import format_table

ITEMS = 20000
REPEAT = 3
BLOCK_ITEMS = (128, 512, 2048)


def compute_rows() -> list[dict[str, object]]:
    return run_codec_bench(
        items=ITEMS, repeat=REPEAT, block_items=BLOCK_ITEMS
    )


@pytest.mark.benchmark(group="E24")
def test_e24_codec(benchmark):
    rows = run_once(benchmark, compute_rows)
    emit(
        "E24",
        format_table(
            rows,
            title=(
                f"E24: block codec throughput and transport "
                f"({ITEMS} items, best of {REPEAT}, "
                f"{available_workers()} workers)"
            ),
        ),
        rows=rows,
    )

    assert check_codec(rows) == []
    codec_rows = [r for r in rows if r["scenario"] == "codec"]
    sweep_rows = [r for r in rows if r["scenario"] == "block_sweep"]
    transport_rows = [r for r in rows if r["kind"] == "transport"]
    assert len(codec_rows) == 4
    assert len(sweep_rows) == len(BLOCK_ITEMS)
    assert len(transport_rows) >= 1  # pipe always; shm when available
    for row in transport_rows:
        assert int(row["encoded_bytes"]) > 0
        if row["backend"] == "processes[pipe]":
            assert int(row["shm_segments"]) == 0
        else:
            assert int(row["shm_segments"]) > 0
