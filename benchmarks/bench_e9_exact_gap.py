"""E9 (table): heuristics vs. exact optimum on small instances.

The exact branch-and-bound solvers give ground truth for m <= 8 (A2A) and
small grids (X2Y).  Expected shape: the heuristics never beat the optimum
(sanity), and their gap stays within a small factor — the NP-hardness of
the problems (the paper's central result) is what makes this sampled gap,
rather than a proof, the right scalable quality measure.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import emit, run_once
from repro.core.a2a import big_small, greedy_cover, solve_min_reducers
from repro.core.instance import A2AInstance, X2YInstance
from repro.core.x2y import best_split_grid, solve_min_reducers_x2y
from repro.utils.rng import spawn_rngs
from repro.utils.tables import format_table

TRIALS = 8
SEED = 9


def compute_rows() -> list[dict[str, object]]:
    rows = []
    for trial, rng in enumerate(spawn_rngs(SEED, TRIALS)):
        q = 12
        m = int(rng.integers(6, 9))
        sizes = [int(v) for v in rng.integers(1, q // 2 + 1, size=m)]
        instance = A2AInstance(sizes, q)
        exact = solve_min_reducers(instance, max_nodes=2_000_000)
        pairing = big_small(instance)
        greedy = greedy_cover(instance)
        rows.append(
            {
                "trial": trial,
                "problem": "A2A",
                "m": m,
                "exact": exact.num_reducers,
                "bin_pairing": pairing.num_reducers,
                "greedy": greedy.num_reducers,
                "pairing_gap": round(pairing.num_reducers / exact.num_reducers, 2),
                "greedy_gap": round(greedy.num_reducers / exact.num_reducers, 2),
            }
        )
    for trial, rng in enumerate(spawn_rngs(SEED + 1, TRIALS)):
        q = 10
        m = int(rng.integers(3, 5))
        n = int(rng.integers(3, 5))
        xs = [int(v) for v in rng.integers(1, q // 2 + 1, size=m)]
        ys = [int(v) for v in rng.integers(1, q // 2 + 1, size=n)]
        instance = X2YInstance(xs, ys, q)
        exact = solve_min_reducers_x2y(instance, max_nodes=2_000_000)
        grid = best_split_grid(instance)
        rows.append(
            {
                "trial": trial,
                "problem": "X2Y",
                "m": m * n,
                "exact": exact.num_reducers,
                "bin_pairing": grid.num_reducers,
                "greedy": None,
                "pairing_gap": round(grid.num_reducers / exact.num_reducers, 2),
                "greedy_gap": None,
            }
        )
    return rows


@pytest.mark.benchmark(group="E9")
def test_e9_exact_optimality_gap(benchmark):
    rows = run_once(benchmark, compute_rows)
    emit("E9", format_table(rows, title="E9: heuristics vs exact optimum (small m)"), rows=rows)

    for row in rows:
        assert row["bin_pairing"] >= row["exact"], "heuristic beat the optimum?!"
        assert row["pairing_gap"] <= 3.5, row
        if row["greedy"] is not None:
            assert row["greedy"] >= row["exact"]
            assert row["greedy_gap"] <= 3.5, row
