"""Trace spans: nested, monotonic, exportable as Chrome trace-event JSON.

A :class:`Tracer` produces :class:`Span` records — name, category, trace
id, span id, parent id, monotonic start, duration, and free-form
attributes.  Spans nest per thread (a ``with tracer.span(...)`` block's
children parent to it automatically); cross-thread and cross-process
relationships are expressed explicitly:

* :meth:`Tracer.activate` pushes an already-open span (e.g. a job's root
  span begun on the submitting thread) onto the current thread's stack so
  later spans nest under it.
* :meth:`Tracer.worker_context` packages ``(trace id, current span id)``
  as a small picklable tuple; :func:`worker_span` turns it back into a
  plain span *dict* inside a worker — thread- or process-pool — which the
  parent merges with :meth:`Tracer.add_worker_spans` after the task
  result travels home.  Worker spans therefore survive the engine's
  once-per-run task-pickling path with their parent linkage intact.

Timestamps are :func:`time.perf_counter` — monotonic, so durations can
never go negative, and (on the platforms this project targets) a
system-wide clock, so parent and worker-process spans share a timeline.

Tracing is **zero-cost when disabled**: :data:`NULL_TRACER` (a
:class:`NullTracer`) returns one shared no-op span from every call,
records nothing, and hands workers a ``None`` context so instrumented
task code skips span construction entirely — the hot per-record loops
contain no tracing calls at all either way.

:func:`to_chrome_trace` / :func:`write_chrome_trace` export collected
spans in the Chrome trace-event format (the ``traceEvents`` array of
``ph="X"``/``ph="i"`` events), loadable in Perfetto or
``chrome://tracing``; :func:`validate_chrome_trace` is the schema check
CI runs against generated trace files.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
import uuid
from typing import Any, Callable, Iterable

#: Process-wide span-id counter; combined with the pid, ids stay unique
#: across the worker processes that contribute spans to one trace.
_SPAN_IDS = itertools.count(1)


def next_span_id() -> str:
    """A span id unique across threads *and* worker processes."""
    return f"{os.getpid():x}.{next(_SPAN_IDS):x}"


class Span:
    """One traced operation: a named interval with attributes.

    Spans are created by a :class:`Tracer` (``span``/``begin``/
    ``record``/``instant``) and usable as context managers; ``set``
    attaches an attribute.  ``duration`` is ``None`` while the span is
    open and seconds once finished (0.0 for instants).
    """

    __slots__ = (
        "name",
        "category",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "duration",
        "pid",
        "tid",
        "attrs",
        "_tracer",
        "_on_stack",
    )

    def __init__(
        self,
        name: str,
        *,
        trace_id: str,
        parent_id: str | None = None,
        category: str = "",
        start: float | None = None,
        attrs: dict[str, Any] | None = None,
    ):
        self.name = name
        self.category = category
        self.trace_id = trace_id
        self.span_id = next_span_id()
        self.parent_id = parent_id
        self.start = time.perf_counter() if start is None else start
        self.duration: float | None = None
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self.attrs = attrs if attrs is not None else {}
        self._tracer: "Tracer | None" = None
        self._on_stack = False

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute to the span."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._tracer is not None:
            self._tracer.finish(self)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (one NDJSON span line in the serve protocol)."""
        return {
            "name": self.name,
            "cat": self.category,
            "trace": self.trace_id,
            "id": self.span_id,
            "parent": self.parent_id,
            "start": self.start,
            "dur": self.duration,
            "pid": self.pid,
            "tid": self.tid,
            "args": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, trace={self.trace_id!r}, "
            f"dur={self.duration})"
        )


class Tracer:
    """Produces nested spans into a shared, thread-safe sink.

    Args:
        trace_id: default trace id for spans (a fresh hex id when
            omitted).  :meth:`child` derives a tracer with a different
            trace id over the *same* sink — how the job service gives
            every job its own trace id while one serve session collects
            one span stream.
        on_finish: optional callback invoked with every finished span
            (the serve loop streams spans as NDJSON lines through this).
            Callback exceptions are swallowed — an observer must never
            break the traced code path.
    """

    #: Class-level so instrumented code can branch cheaply; the
    #: :class:`NullTracer` subclass overrides it to ``False``.
    enabled = True

    def __init__(
        self,
        trace_id: str | None = None,
        *,
        on_finish: Callable[[Span], None] | None = None,
        _sink: list[Span] | None = None,
        _lock: threading.Lock | None = None,
    ):
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self._sink: list[Span] = _sink if _sink is not None else []
        self._lock = _lock if _lock is not None else threading.Lock()
        self._on_finish = on_finish
        self._local = threading.local()

    # -- span lifecycle ---------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _current_id(self) -> str | None:
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def begin(
        self,
        name: str,
        *,
        category: str = "",
        parent: str | None = None,
        trace_id: str | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a span *without* making it the thread's current parent.

        Use for spans that outlive the opening call site (a job's root
        span finished on another thread); pair with :meth:`finish`, and
        :meth:`activate` to nest under it elsewhere.
        """
        span = Span(
            name,
            trace_id=trace_id or self.trace_id,
            parent_id=parent if parent is not None else self._current_id(),
            category=category,
            attrs=attrs or None,
        )
        span._tracer = self
        return span

    def span(
        self,
        name: str,
        *,
        category: str = "",
        trace_id: str | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a nested span: current parent taken from (and pushed onto)
        this thread's span stack; close it with the context manager."""
        span = self.begin(
            name, category=category, trace_id=trace_id, **attrs
        )
        span._on_stack = True
        self._stack().append(span)
        return span

    def finish(self, span: Span) -> None:
        """Close *span*: fix its duration, record it, notify observers."""
        if span.duration is not None:
            return  # already finished (double __exit__/finish is a no-op)
        span.duration = time.perf_counter() - span.start
        if span._on_stack:
            stack = self._stack()
            if stack and stack[-1] is span:
                stack.pop()
            span._on_stack = False
        self._record(span)

    def record(
        self,
        name: str,
        *,
        start: float,
        duration: float,
        category: str = "",
        parent: str | None = None,
        trace_id: str | None = None,
        **attrs: Any,
    ) -> Span:
        """Record an already-measured interval as a finished span.

        For durations measured before the span could exist — queue wait
        (submission to dispatch) is recorded from the dispatching thread
        with the submission-time start.
        """
        span = Span(
            name,
            trace_id=trace_id or self.trace_id,
            parent_id=parent,
            category=category,
            start=start,
            attrs=attrs or None,
        )
        span.duration = duration
        self._record(span)
        return span

    def instant(
        self,
        name: str,
        *,
        category: str = "",
        trace_id: str | None = None,
        **attrs: Any,
    ) -> Span:
        """Record a zero-duration marker (a lifecycle event, not a phase)."""
        return self.record(
            name,
            start=time.perf_counter(),
            duration=0.0,
            category=category,
            parent=self._current_id(),
            trace_id=trace_id,
            **attrs,
        )

    def _record(self, span: Span) -> None:
        with self._lock:
            self._sink.append(span)
        if self._on_finish is not None:
            try:
                self._on_finish(span)
            except Exception:  # noqa: BLE001 - observer isolation
                pass

    # -- cross-thread / cross-process plumbing ----------------------------

    class _Activation:
        """Context manager that pins a span as the thread's parent."""

        __slots__ = ("_tracer", "_span")

        def __init__(self, tracer: "Tracer", span: Span | None):
            self._tracer = tracer
            self._span = span

        def __enter__(self) -> Span | None:
            if self._span is not None:
                self._tracer._stack().append(self._span)
            return self._span

        def __exit__(self, *exc_info: object) -> None:
            if self._span is not None:
                stack = self._tracer._stack()
                if stack and stack[-1] is self._span:
                    stack.pop()

    def activate(self, span: Span | None) -> "Tracer._Activation":
        """Make *span* the current parent on this thread for the block.

        Does not finish the span — the owner does that explicitly.  A
        ``None`` span activates nothing (convenient when tracing is off).
        """
        return Tracer._Activation(self, span)

    def worker_context(self) -> tuple[str, str | None] | None:
        """A picklable ``(trace id, parent span id)`` for worker tasks."""
        return (self.trace_id, self._current_id())

    def add_worker_spans(self, spans: Iterable[dict[str, Any]]) -> None:
        """Merge span dicts built by :func:`worker_span` in workers.

        Preserves the worker-assigned ids, parents, pids, and tids, so
        the merged trace shows work on the thread/process it actually ran
        on, nested under the dispatching phase span.
        """
        for payload in spans:
            span = Span(
                payload["name"],
                trace_id=payload["trace"],
                parent_id=payload.get("parent"),
                category=payload.get("cat", ""),
                start=payload["start"],
                attrs=dict(payload.get("args") or {}),
            )
            span.span_id = payload["id"]
            span.duration = payload["dur"]
            span.pid = payload.get("pid", span.pid)
            span.tid = payload.get("tid", span.tid)
            self._record(span)

    # -- access -----------------------------------------------------------

    def child(self, trace_id: str) -> "Tracer":
        """A tracer with its own trace id and span stack, same sink."""
        return Tracer(
            trace_id,
            on_finish=self._on_finish,
            _sink=self._sink,
            _lock=self._lock,
        )

    def spans(self) -> list[Span]:
        """Snapshot of every recorded span, in completion order."""
        with self._lock:
            return list(self._sink)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sink)


class _NullSpan:
    """The shared do-nothing span the :class:`NullTracer` hands out.

    Carries empty id/name class attributes so instrumented code can read
    ``span.span_id`` (e.g. to parent a sibling span) without branching
    on whether tracing is enabled.
    """

    __slots__ = ()

    name = ""
    category = ""
    trace_id = ""
    span_id = ""
    parent_id = None
    duration = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass

    def set(self, key: str, value: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """Disabled tracing: every operation is a no-op on shared singletons.

    ``span``/``begin``/``activate`` return cached no-op objects (no
    allocation beyond the call itself), ``worker_context`` returns
    ``None`` so task wrappers skip worker-side span construction
    entirely, and nothing is ever recorded.
    """

    enabled = False

    def __init__(self):
        self.trace_id = ""
        self._on_finish = None

    def begin(self, name, **kwargs):  # type: ignore[override]
        return _NULL_SPAN

    def span(self, name, **kwargs):  # type: ignore[override]
        return _NULL_SPAN

    def finish(self, span):  # type: ignore[override]
        pass

    def record(self, name, **kwargs):  # type: ignore[override]
        return _NULL_SPAN

    def instant(self, name, **kwargs):  # type: ignore[override]
        return _NULL_SPAN

    def activate(self, span):  # type: ignore[override]
        return _NULL_SPAN

    def worker_context(self):  # type: ignore[override]
        return None

    def add_worker_spans(self, spans):  # type: ignore[override]
        pass

    def child(self, trace_id):  # type: ignore[override]
        return self

    def spans(self):  # type: ignore[override]
        return []

    def __len__(self) -> int:
        return 0


#: The shared disabled tracer; instrumented code uses it in place of
#: ``None`` so tracing calls never need a conditional.
NULL_TRACER = NullTracer()


def as_tracer(tracer: Tracer | None) -> Tracer:
    """Normalize an optional tracer to a real one (``None`` → disabled)."""
    return tracer if tracer is not None else NULL_TRACER


def worker_span(
    ctx: tuple[str, str | None],
    name: str,
    start: float,
    duration: float,
    **attrs: Any,
) -> dict[str, Any]:
    """Build a span *dict* inside a worker from a pickled trace context.

    The dict (not a :class:`Span`) travels back with the task result —
    plain dicts pickle cheaply and identically across backends — and the
    parent merges it with :meth:`Tracer.add_worker_spans`.
    """
    trace_id, parent_id = ctx
    return {
        "name": name,
        "cat": "task",
        "trace": trace_id,
        "id": next_span_id(),
        "parent": parent_id,
        "start": start,
        "dur": duration,
        "pid": os.getpid(),
        "tid": threading.get_ident(),
        "args": attrs,
    }


# -- Chrome trace-event export -------------------------------------------


def to_chrome_trace(spans: Iterable[Span]) -> dict[str, Any]:
    """Render spans as a Chrome trace-event JSON object.

    Finished spans become ``ph="X"`` (complete) events, zero-duration
    spans ``ph="i"`` (instant) events; timestamps and durations are
    microseconds on the spans' shared monotonic timebase.  The trace id,
    span id, and parent id ride in ``args`` so Perfetto's flow/queries
    can reconstruct the hierarchy across pid/tid lanes.
    """
    events: list[dict[str, Any]] = []
    for span in spans:
        duration = span.duration if span.duration is not None else 0.0
        args = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            **span.attrs,
        }
        event: dict[str, Any] = {
            "name": span.name,
            "cat": span.category or "repro",
            "ts": round(span.start * 1_000_000, 3),
            "pid": span.pid,
            "tid": span.tid,
            "args": args,
        }
        if duration <= 0.0:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = round(duration * 1_000_000, 3)
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: Iterable[Span]) -> int:
    """Write spans to *path* as Chrome trace-event JSON (atomically).

    Returns the number of exported events.  The write goes through
    :func:`repro.io.atomic_write_text`, so an interrupted export never
    leaves a truncated file.
    """
    from repro.io import atomic_write_text

    payload = to_chrome_trace(spans)
    atomic_write_text(path, json.dumps(payload, default=str) + "\n")
    return len(payload["traceEvents"])


#: Fields every Chrome trace event must carry, per phase type.
_REQUIRED_EVENT_FIELDS = ("name", "ph", "ts", "pid", "tid")


def validate_chrome_trace(payload: Any) -> list[dict[str, Any]]:
    """Check *payload* is well-formed Chrome trace-event JSON.

    Accepts the object form (``{"traceEvents": [...]}``) or the bare
    array form, per the spec.  Returns the event list on success; raises
    :class:`ValueError` naming every structural problem found.  This is
    the schema check the observability tests and the CI perf-smoke job
    run against generated ``--trace`` files.
    """
    problems: list[str] = []
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("object form must carry a 'traceEvents' list")
    elif isinstance(payload, list):
        events = payload
    else:
        raise ValueError(
            f"trace must be an object or array, got {type(payload).__name__}"
        )
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index}: not an object")
            continue
        for field in _REQUIRED_EVENT_FIELDS:
            if field not in event:
                problems.append(f"event {index}: missing {field!r}")
        phase = event.get("ph")
        if phase == "X":
            if not isinstance(event.get("dur"), (int, float)):
                problems.append(f"event {index}: 'X' event missing numeric dur")
            elif event["dur"] < 0:
                problems.append(f"event {index}: negative dur {event['dur']}")
        if "ts" in event and not isinstance(event.get("ts"), (int, float)):
            problems.append(f"event {index}: non-numeric ts {event['ts']!r}")
    if problems:
        raise ValueError(
            "invalid Chrome trace-event JSON: " + "; ".join(problems)
        )
    return events
