"""Observability: trace spans, process metrics, and durable observations.

Three complementary views of the same running system, each a sibling
module here:

* :mod:`repro.obs.trace` — *where did this run's time go*: nested
  :class:`Span` records produced by a :class:`Tracer`, propagated into
  thread/process workers, exported as Chrome trace-event JSON
  (Perfetto-openable) or streamed as NDJSON over ``repro serve``.
  Disabled tracing (:data:`NULL_TRACER`) is zero-cost.
* :mod:`repro.obs.metrics` — *how is the system behaving over many
  runs*: a :class:`MetricsRegistry` of counters, gauges, and histograms
  (job latency p50/p95, queue depth, plan-cache hit rate, spill bytes)
  with JSON-ready snapshots.
* :mod:`repro.obs.store` — *what actually happened, durably*: one
  :class:`ObservationRecord` per executed job (plan fingerprint plus
  measured phase timings and job metrics), appended to an NDJSON log —
  the input the self-calibrating-planner roadmap item consumes next.
* :mod:`repro.obs.profiler` — *why a phase cost what it did*: an opt-in
  :class:`PhaseProfiler` pairing a background RSS/CPU sampler with
  per-phase ``cProfile`` capture (worker-side for map/reduce, via the
  same pickling path as worker spans), exported as JSON with
  flamegraph-ready collapsed stacks.  Disabled profiling
  (:data:`NULL_PROFILER`) is zero-cost, mirroring the tracer.
* :mod:`repro.obs.history` — *how the numbers move across commits*: a
  :class:`ProfileHistory` append-only NDJSON trajectory keyed by
  (bench, scenario, hardware class, commit) with a rolling-median trend
  gate — ``check_baseline`` generalized to an enforced time-series.

The engine, planner, and service accept an optional ``tracer`` and
``profiler``; the CLI surfaces every layer (``--trace``, ``--profile``,
``repro metrics``, ``repro history``, ``repro serve --obs-log`` and its
``{"health": true}`` request).
"""

from repro.obs.history import (
    HistoryRecord,
    ProfileHistory,
    current_commit,
    hardware_class,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from repro.obs.profiler import (
    NULL_PROFILER,
    NullProfiler,
    PhaseProfiler,
    ResourceSampler,
    as_profiler,
    profile_worker_task,
    validate_collapsed,
    write_profile,
)
from repro.obs.store import (
    ObservationRecord,
    ObservationStore,
    load_observations,
    summarize_observations,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    as_tracer,
    next_span_id,
    to_chrome_trace,
    validate_chrome_trace,
    worker_span,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistoryRecord",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_TRACER",
    "NullProfiler",
    "NullTracer",
    "ObservationRecord",
    "ObservationStore",
    "PhaseProfiler",
    "ProfileHistory",
    "ResourceSampler",
    "Span",
    "Tracer",
    "as_profiler",
    "as_tracer",
    "current_commit",
    "hardware_class",
    "load_observations",
    "next_span_id",
    "percentile",
    "profile_worker_task",
    "summarize_observations",
    "to_chrome_trace",
    "validate_chrome_trace",
    "validate_collapsed",
    "worker_span",
    "write_chrome_trace",
    "write_profile",
]
