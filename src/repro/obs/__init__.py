"""Observability: trace spans, process metrics, and durable observations.

Three complementary views of the same running system, each a sibling
module here:

* :mod:`repro.obs.trace` — *where did this run's time go*: nested
  :class:`Span` records produced by a :class:`Tracer`, propagated into
  thread/process workers, exported as Chrome trace-event JSON
  (Perfetto-openable) or streamed as NDJSON over ``repro serve``.
  Disabled tracing (:data:`NULL_TRACER`) is zero-cost.
* :mod:`repro.obs.metrics` — *how is the system behaving over many
  runs*: a :class:`MetricsRegistry` of counters, gauges, and histograms
  (job latency p50/p95, queue depth, plan-cache hit rate, spill bytes)
  with JSON-ready snapshots.
* :mod:`repro.obs.store` — *what actually happened, durably*: one
  :class:`ObservationRecord` per executed job (plan fingerprint plus
  measured phase timings and job metrics), appended to an NDJSON log —
  the input the self-calibrating-planner roadmap item consumes next.

The engine, planner, and service accept an optional ``tracer``; the CLI
surfaces all three layers (``--trace``, ``repro metrics``, ``repro
serve --obs-log``).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from repro.obs.store import (
    ObservationRecord,
    ObservationStore,
    load_observations,
    summarize_observations,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    as_tracer,
    next_span_id,
    to_chrome_trace,
    validate_chrome_trace,
    worker_span,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "ObservationRecord",
    "ObservationStore",
    "Span",
    "Tracer",
    "as_tracer",
    "load_observations",
    "next_span_id",
    "percentile",
    "summarize_observations",
    "to_chrome_trace",
    "validate_chrome_trace",
    "worker_span",
    "write_chrome_trace",
]
