"""Continuous profiling: phase-attributed CPU/RSS plus ``cProfile`` capture.

Spans (:mod:`repro.obs.trace`) say *where wall-clock time went*; this
module says *why* — which functions burned the CPU and how much memory
the process held while each engine phase ran.  Two cooperating pieces:

* :class:`ResourceSampler` — a daemon thread that samples resident-set
  size (``/proc/self/statm``) and cumulative CPU seconds (``os.times``,
  including children, so process-pool work is visible from the parent)
  on a monotonic clock.  Queries are windowed, so callers can attribute
  a peak-RSS figure to one phase or one service job.
* :class:`PhaseProfiler` — accumulates per-phase wall/CPU/peak-RSS plus
  deterministically aggregated ``cProfile`` function tables.  Phases
  that dispatch worker tasks (map/reduce) get their function tables from
  *inside* the tasks via the same pickling path worker spans use
  (:func:`profile_worker_task` wraps the task, stats ride home next to
  the result); parent-side phases (shuffle/post) are captured in-process.
  The export is JSON (:meth:`PhaseProfiler.to_dict`) including
  collapsed-stack lines every flamegraph tool accepts.

Mirroring the tracer, the disabled path is zero-cost:
:data:`NULL_PROFILER` answers every call with a no-op and
``worker_context()`` returns ``None``, so the engine never wraps task
functions, starts threads, or touches ``cProfile`` unless a caller
passes a live profiler (``--profile out.json`` on ``run``/``bench``/
``submit``).

``cProfile`` cannot nest on one thread, so captures are guarded by a
thread-local flag: on the serial backend (tasks run inline in the
parent) worker-task capture simply yields to any enclosing capture
instead of raising.
"""

from __future__ import annotations

import cProfile
import json
import os
import threading
import time
from typing import Any, Callable, Iterable

__all__ = [
    "NULL_PROFILER",
    "NullProfiler",
    "PhaseProfiler",
    "ResourceSampler",
    "as_profiler",
    "profile_worker_task",
    "read_cpu_seconds",
    "read_rss_bytes",
    "validate_collapsed",
    "write_profile",
]

#: Default seconds between resource samples.
DEFAULT_SAMPLE_INTERVAL = 0.02

#: Maximum timeline samples kept in an export payload (oldest dropped).
MAX_EXPORT_SAMPLES = 2000

#: Function-table rows kept per phase in an export payload.
MAX_EXPORT_FUNCTIONS = 400

try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):  # pragma: no cover - non-POSIX
    _PAGE_SIZE = 4096


def read_rss_bytes() -> int:
    """Resident-set size of this process in bytes (0 when unreadable)."""
    try:
        with open("/proc/self/statm", encoding="ascii") as handle:
            return int(handle.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-Linux
        return 0


def read_cpu_seconds() -> float:
    """Cumulative CPU seconds: user+system of this process *and* children.

    Including reaped children means work done by a process pool shows up
    in the parent's delta once workers exit — exactly what a per-run CPU
    attribution wants.
    """
    times = os.times()
    return (
        times.user + times.system + times.children_user + times.children_system
    )


class ResourceSampler:
    """Background RSS/CPU sampler on a monotonic clock.

    One daemon thread (named ``repro-sampler`` so shutdown checks can
    find it) wakes every *interval* seconds and records
    ``(monotonic_t, rss_bytes, cpu_seconds)``.  ``start``/``stop`` are
    idempotent and thread-safe; samples are kept in a bounded window.
    """

    THREAD_NAME = "repro-sampler"

    def __init__(
        self,
        interval: float = DEFAULT_SAMPLE_INTERVAL,
        max_samples: int = 65536,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.max_samples = max_samples
        self._samples: list[tuple[float, int, float]] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop.clear()
            self._sample_locked()
            self._thread = threading.Thread(
                target=self._run, name=self.THREAD_NAME, daemon=True
            )
            self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=timeout)
        with self._lock:
            self._sample_locked()

    @property
    def running(self) -> bool:
        with self._lock:
            return self._thread is not None and self._thread.is_alive()

    def __enter__(self) -> "ResourceSampler":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- sampling -----------------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            with self._lock:
                self._sample_locked()

    def _sample_locked(self) -> None:
        self._samples.append(
            (time.monotonic(), read_rss_bytes(), read_cpu_seconds())
        )
        if len(self._samples) > self.max_samples:
            del self._samples[: -self.max_samples]

    def sample_now(self) -> tuple[float, int, float]:
        """Take (and record) one sample immediately."""
        with self._lock:
            self._sample_locked()
            return self._samples[-1]

    def samples(self) -> list[tuple[float, int, float]]:
        with self._lock:
            return list(self._samples)

    def peak_rss_bytes(self, since: float | None = None) -> int:
        """Largest observed RSS (bytes), optionally only at/after *since*.

        Always includes a fresh reading, so short windows that no
        background sample landed in still report a real figure.
        """
        current = read_rss_bytes()
        with self._lock:
            values = [
                rss
                for t, rss, _ in self._samples
                if since is None or t >= since
            ]
        if current > 0:
            values.append(current)
        return max(values, default=0)

    def cpu_seconds(self) -> float:
        """CPU seconds accumulated across the sampled window."""
        with self._lock:
            if len(self._samples) < 2:
                return 0.0
            return max(0.0, self._samples[-1][2] - self._samples[0][2])

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)


# --------------------------------------------------------------------------
# cProfile capture and deterministic aggregation
# --------------------------------------------------------------------------

# ``cProfile`` cannot nest on one thread; this flag lets inline task
# capture (serial backend) yield to an enclosing phase capture instead
# of fighting over the profile hook.
_CAPTURE_ACTIVE = threading.local()


def _capture_slot_acquire() -> bool:
    if getattr(_CAPTURE_ACTIVE, "busy", False):
        return False
    _CAPTURE_ACTIVE.busy = True
    return True


def _capture_slot_release() -> None:
    _CAPTURE_ACTIVE.busy = False


def _function_key(code: Any) -> str:
    """Stable key for one profiled function: ``file:line:name``.

    Paths are reduced to their basename so keys compare across machines
    and virtualenvs; built-ins (plain strings in ``getstats``) pass
    through unchanged.
    """
    if isinstance(code, str):
        return code
    return (
        f"{os.path.basename(code.co_filename)}"
        f":{code.co_firstlineno}:{code.co_name}"
    )


def profile_to_stats(profile: cProfile.Profile) -> dict[str, list[float]]:
    """Aggregate a finished profile into ``{key: [calls, tot, cum]}``.

    ``tot`` is inline time (excluding callees), ``cum`` cumulative —
    the two numbers flamegraphs and top-N tables need.  Aggregation by
    stable key makes merging across tasks and runs a plain per-key sum,
    independent of dict order or worker scheduling.
    """
    stats: dict[str, list[float]] = {}
    for entry in profile.getstats():  # type: ignore[attr-defined]
        key = _function_key(entry.code)
        row = stats.get(key)
        if row is None:
            stats[key] = [
                float(entry.callcount),
                entry.inlinetime,
                entry.totaltime,
            ]
        else:
            row[0] += entry.callcount
            row[1] += entry.inlinetime
            row[2] += entry.totaltime
    return stats


def merge_stats(
    into: dict[str, list[float]], source: dict[str, list[float]]
) -> None:
    """Fold one aggregated stats table into another (per-key sums)."""
    for key, row in source.items():
        target = into.get(key)
        if target is None:
            into[key] = list(row)
        else:
            target[0] += row[0]
            target[1] += row[1]
            target[2] += row[2]


def profile_worker_task(payload: Any, *, inner: Callable[[Any], Any]) -> tuple[
    Any, dict[str, list[float]]
]:
    """Run one task under ``cProfile``; returns ``(result, stats)``.

    The worker-side half of task profiling, installed around the
    map/reduce task partials *only when profiling is enabled* — the
    exact pattern of the tracer's ``_traced_task``.  Module-level, so
    ``functools.partial`` over it stays picklable for the processes
    backend.  When another capture is already active on this thread
    (serial backend running tasks inline under a capturing phase) the
    task runs unprofiled and returns an empty table.
    """
    if not _capture_slot_acquire():
        return inner(payload), {}
    profile = cProfile.Profile()
    try:
        profile.enable()
        try:
            result = inner(payload)
        finally:
            profile.disable()
    finally:
        _capture_slot_release()
    return result, profile_to_stats(profile)


# --------------------------------------------------------------------------
# PhaseProfiler
# --------------------------------------------------------------------------


class _PhaseHandle:
    """Context manager recording one phase occurrence into the profiler."""

    __slots__ = ("_profiler", "_name", "_capture", "_mono0", "_cpu0", "_prof")

    def __init__(self, profiler: "PhaseProfiler", name: str, capture: bool):
        self._profiler = profiler
        self._name = name
        self._capture = capture
        self._prof: cProfile.Profile | None = None

    def __enter__(self) -> "_PhaseHandle":
        self._mono0 = time.monotonic()
        self._cpu0 = read_cpu_seconds()
        if self._capture and _capture_slot_acquire():
            self._prof = cProfile.Profile()
            self._prof.enable()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        stats: dict[str, list[float]] | None = None
        if self._prof is not None:
            try:
                self._prof.disable()
                stats = profile_to_stats(self._prof)
            finally:
                _capture_slot_release()
        self._profiler._record_phase(
            self._name,
            wall_seconds=time.monotonic() - self._mono0,
            cpu_seconds=max(0.0, read_cpu_seconds() - self._cpu0),
            peak_rss_bytes=self._profiler.sampler.peak_rss_bytes(
                since=self._mono0
            ),
            stats=stats,
        )


class _NullPhaseHandle:
    __slots__ = ()

    def __enter__(self) -> "_NullPhaseHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_PHASE = _NullPhaseHandle()


class PhaseProfiler:
    """Accumulates per-phase wall/CPU/peak-RSS and function profiles.

    One profiler may span many engine runs (a bench sweep, a service's
    lifetime); repeated phases accumulate — wall and CPU sum, peak RSS
    maxes, function tables merge per key.  The engine drives it through
    four touchpoints, each a no-op on :data:`NULL_PROFILER`:

    * ``phase(name, capture=...)`` around map/shuffle/reduce/post (the
      engine captures parent-side cProfile only for shuffle/post —
      map/reduce CPU belongs to the workers);
    * ``worker_context()`` → truthy token or ``None``, exactly like
      ``Tracer.worker_context`` — ``None`` means "do not wrap tasks";
    * ``merge_worker_results(phase, raw)`` to strip the
      ``(result, stats)`` envelopes :func:`profile_worker_task` produces
      and fold the stats in;
    * ``add_counter(phase, ...)`` for phase-adjacent counters (spill
      bytes/runs).

    Args:
        sample_interval: seconds between background resource samples.
        capture_tasks: profile inside worker tasks (function tables for
            map/reduce).  Off leaves only sampler-derived numbers.
        autostart: start the sampler lazily on first ``phase()`` entry;
            callers may also ``start()``/``stop()`` explicitly (both
            idempotent; ``stop`` leaves recorded data intact).
    """

    enabled = True

    def __init__(
        self,
        *,
        sample_interval: float = DEFAULT_SAMPLE_INTERVAL,
        capture_tasks: bool = True,
        autostart: bool = True,
    ):
        self.sampler = ResourceSampler(interval=sample_interval)
        self.capture_tasks = capture_tasks
        self.autostart = autostart
        self._lock = threading.Lock()
        self._phases: dict[str, dict[str, Any]] = {}
        self._started_mono = time.monotonic()
        self._cpu0 = read_cpu_seconds()

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        self.sampler.start()

    def stop(self) -> None:
        self.sampler.stop()

    def __enter__(self) -> "PhaseProfiler":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- engine touchpoints -------------------------------------------

    def phase(self, name: str, capture: bool = False) -> Any:
        """Context manager timing one occurrence of phase *name*.

        ``capture=True`` additionally runs a parent-side ``cProfile``
        for the duration (used for phases that do their work in this
        process; nested/concurrent captures degrade to sampling only).
        """
        if self.autostart:
            self.sampler.start()
        return _PhaseHandle(self, name, capture)

    def worker_context(self) -> bool | None:
        """Truthy (picklable) token when tasks should be profiled."""
        return True if self.capture_tasks else None

    def merge_worker_results(
        self, phase: str, raw: list[tuple[Any, dict[str, list[float]]]]
    ) -> list[Any]:
        """Unwrap ``(result, stats)`` task envelopes, folding stats in."""
        results: list[Any] = []
        merged: dict[str, list[float]] = {}
        for result, stats in raw:
            results.append(result)
            if stats:
                merge_stats(merged, stats)
        if merged:
            with self._lock:
                entry = self._phase_entry(phase)
                merge_stats(entry["functions"], merged)
        return results

    def add_counter(self, phase: str, **counters: float) -> None:
        """Accumulate named counters (e.g. spill bytes) under *phase*."""
        with self._lock:
            entry = self._phase_entry(phase)
            for key, value in counters.items():
                entry["counters"][key] = entry["counters"].get(key, 0) + value

    def record(self, phase: str, wall_seconds: float, **counters: float) -> None:
        """Record a measured-elsewhere phase occurrence (e.g. spill flushes)."""
        self._record_phase(
            phase,
            wall_seconds=wall_seconds,
            cpu_seconds=0.0,
            peak_rss_bytes=0,
            stats=None,
        )
        if counters:
            self.add_counter(phase, **counters)

    def _phase_entry(self, name: str) -> dict[str, Any]:
        entry = self._phases.get(name)
        if entry is None:
            entry = {
                "wall_seconds": 0.0,
                "cpu_seconds": 0.0,
                "peak_rss_bytes": 0,
                "count": 0,
                "functions": {},
                "counters": {},
            }
            self._phases[name] = entry
        return entry

    def _record_phase(
        self,
        name: str,
        *,
        wall_seconds: float,
        cpu_seconds: float,
        peak_rss_bytes: int,
        stats: dict[str, list[float]] | None,
    ) -> None:
        with self._lock:
            entry = self._phase_entry(name)
            entry["wall_seconds"] += wall_seconds
            entry["cpu_seconds"] += cpu_seconds
            entry["peak_rss_bytes"] = max(
                entry["peak_rss_bytes"], peak_rss_bytes
            )
            entry["count"] += 1
            if stats:
                merge_stats(entry["functions"], stats)

    # -- queries and export -------------------------------------------

    def phases(self) -> dict[str, dict[str, Any]]:
        """Deep-enough copy of the per-phase accumulators."""
        with self._lock:
            return {
                name: {
                    **{
                        k: v
                        for k, v in entry.items()
                        if k not in ("functions", "counters")
                    },
                    "functions": dict(entry["functions"]),
                    "counters": dict(entry["counters"]),
                }
                for name, entry in self._phases.items()
            }

    def collapsed_stacks(self) -> list[str]:
        """Flamegraph-compatible collapsed lines: ``phase;func weight``.

        Weights are inline-time microseconds (integer, minimum 1 for any
        function that consumed measurable time); phases without function
        tables contribute one phase-level line weighted by CPU (falling
        back to wall) so the graph still shows where the run went.
        Output is sorted, hence deterministic for equal inputs.
        """
        lines: list[str] = []
        for name, entry in self.phases().items():
            functions = entry["functions"]
            emitted = False
            for key, (_, tot, _) in sorted(functions.items()):
                weight = int(round(tot * 1e6))
                if weight <= 0:
                    continue
                lines.append(f"{name};{key} {weight}")
                emitted = True
            if not emitted:
                weight = int(
                    round(
                        (entry["cpu_seconds"] or entry["wall_seconds"]) * 1e6
                    )
                )
                if weight > 0:
                    lines.append(f"{name} {weight}")
        return sorted(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready export: totals, timeline, per-phase tables, stacks."""
        samples = self.sampler.samples()[-MAX_EXPORT_SAMPLES:]
        phases_out: dict[str, Any] = {}
        for name, entry in sorted(self.phases().items()):
            table = sorted(
                entry["functions"].items(),
                key=lambda item: (-item[1][1], item[0]),
            )[:MAX_EXPORT_FUNCTIONS]
            phases_out[name] = {
                "wall_seconds": round(entry["wall_seconds"], 6),
                "cpu_seconds": round(entry["cpu_seconds"], 6),
                "peak_rss_bytes": entry["peak_rss_bytes"],
                "count": entry["count"],
                "counters": {
                    k: entry["counters"][k] for k in sorted(entry["counters"])
                },
                "functions": [
                    {
                        "func": key,
                        "calls": int(calls),
                        "tottime_s": round(tot, 6),
                        "cumtime_s": round(cum, 6),
                    }
                    for key, (calls, tot, cum) in table
                ],
            }
        return {
            "version": 1,
            "wall_seconds": round(time.monotonic() - self._started_mono, 6),
            "cpu_seconds": round(
                max(0.0, read_cpu_seconds() - self._cpu0), 6
            ),
            "peak_rss_bytes": self.sampler.peak_rss_bytes(),
            "sample_interval": self.sampler.interval,
            "samples": [
                [round(t, 4), rss, round(cpu, 4)] for t, rss, cpu in samples
            ],
            "phases": phases_out,
            "collapsed": self.collapsed_stacks(),
        }

    def write(self, path: str) -> dict[str, Any]:
        """Stop sampling and atomically write the JSON export to *path*."""
        self.stop()
        payload = self.to_dict()
        write_profile(payload, path)
        return payload

    def __len__(self) -> int:
        with self._lock:
            return len(self._phases)


class NullProfiler(PhaseProfiler):
    """Disabled profiler: every operation is a no-op.

    Mirrors :class:`~repro.obs.trace.NullTracer` — ``worker_context``
    returns ``None`` so the engine never wraps task functions, and
    ``phase`` hands back a shared do-nothing context manager.  No
    sampler thread is ever started.
    """

    enabled = False

    def __init__(self) -> None:  # noqa: D401 - no sampler, no state
        self.capture_tasks = False
        self.autostart = False
        self.sampler = ResourceSampler()  # never started
        self._lock = threading.Lock()
        self._phases = {}
        self._started_mono = 0.0
        self._cpu0 = 0.0

    def start(self) -> None:
        return None

    def stop(self) -> None:
        return None

    def phase(self, name: str, capture: bool = False) -> Any:
        return _NULL_PHASE

    def worker_context(self) -> None:
        return None

    def merge_worker_results(
        self, phase: str, raw: list[tuple[Any, dict[str, list[float]]]]
    ) -> list[Any]:
        return [result for result, _ in raw]

    def add_counter(self, phase: str, **counters: float) -> None:
        return None

    def _record_phase(self, name: str, **kwargs: Any) -> None:
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": 1,
            "wall_seconds": 0.0,
            "cpu_seconds": 0.0,
            "peak_rss_bytes": 0,
            "sample_interval": 0.0,
            "samples": [],
            "phases": {},
            "collapsed": [],
        }


#: Shared disabled profiler (the engine's default via ``as_profiler``).
NULL_PROFILER = NullProfiler()


def as_profiler(profiler: PhaseProfiler | None) -> PhaseProfiler:
    """Normalize an optional profiler: ``None`` becomes the null profiler."""
    return profiler if profiler is not None else NULL_PROFILER


# --------------------------------------------------------------------------
# Export helpers
# --------------------------------------------------------------------------


def write_profile(payload: dict[str, Any], path: str) -> None:
    """Atomically write a profile export as JSON."""
    from repro.io import atomic_write_text

    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True))


def validate_collapsed(lines: Iterable[str]) -> int:
    """Validate collapsed-stack lines; returns the line count.

    Each line must be ``frame(;frame)* <positive integer>`` — the format
    ``flamegraph.pl`` and speedscope ingest.  Raises ``ValueError`` on
    the first malformed line.
    """
    count = 0
    for index, line in enumerate(lines, start=1):
        stack, sep, weight = line.rpartition(" ")
        if not sep or not stack:
            raise ValueError(f"collapsed line {index}: missing stack/weight")
        if not weight.isdigit() or int(weight) <= 0:
            raise ValueError(
                f"collapsed line {index}: weight must be a positive "
                f"integer, got {weight!r}"
            )
        if any(not frame for frame in stack.split(";")):
            raise ValueError(f"collapsed line {index}: empty frame")
        count += 1
    return count
