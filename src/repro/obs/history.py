"""Per-commit performance history: an enforced time-series of bench runs.

``check_baseline`` (:mod:`repro.engine.quickbench`) gates against *one*
committed snapshot; this module generalizes it to an append-only NDJSON
trajectory.  Each :class:`HistoryRecord` keys one measured number by
``(bench, scenario, hardware_class, commit)``; :class:`ProfileHistory`
appends, loads, summarizes, and — the point — **gates**: the newest
record of every series must stay within ``tolerance`` of the rolling
median of its predecessors, so a regression has to beat the recent
*trend*, not a single lucky baseline run (perun-style continuous
performance testing).

Comparisons only bite within one hardware class (same effective worker
count) — a series recorded on different hardware is skipped with a
note, exactly like ``check_baseline``'s worker-count guard — and
sub-``min_wall`` cells are skipped as noise.  ``repro history`` is the
CLI surface (``record``/``report``/``compare``/``check``/``gc``).
"""

from __future__ import annotations

import json
import os
import subprocess
import time
import warnings
from dataclasses import asdict, dataclass, field
from typing import Any, Iterable

__all__ = [
    "HistoryRecord",
    "ProfileHistory",
    "current_commit",
    "hardware_class",
]

#: Default rolling-median window (prior records per series).
DEFAULT_WINDOW = 5

#: Default slowdown tolerance against the rolling median.
DEFAULT_TOLERANCE = 1.5

#: Cells faster than this are pure noise; never gated.
DEFAULT_MIN_WALL = 0.02

#: Minimum records a series needs before the gate bites.
DEFAULT_MIN_HISTORY = 3

_COMMIT_CACHE: dict[str, str] = {}


def hardware_class(workers: int | None = None) -> str:
    """Coarse hardware key: the effective worker count, e.g. ``"8w"``.

    Wall-clock comparisons across different machines are meaningless;
    this is the join key that keeps the trend gate honest (mirroring
    ``check_baseline``'s worker-count skip).
    """
    if workers is None:
        from repro.engine.backends import available_workers

        workers = available_workers()
    return f"{workers}w"


def current_commit(default: str = "unknown") -> str:
    """Current commit id (12 hex chars), best-effort and cached.

    Resolution order: ``REPRO_COMMIT`` env override, ``GITHUB_SHA``
    (CI), ``git rev-parse HEAD``, then *default* — history recording
    must work in exported tarballs too.
    """
    cached = _COMMIT_CACHE.get("commit")
    if cached is not None:
        return cached
    commit = os.environ.get("REPRO_COMMIT") or os.environ.get("GITHUB_SHA")
    if not commit:
        try:
            proc = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
                check=False,
            )
            if proc.returncode == 0:
                commit = proc.stdout.strip()
        except (OSError, subprocess.SubprocessError):
            commit = ""
    commit = (commit or default)[:12]
    _COMMIT_CACHE["commit"] = commit
    return commit


@dataclass(frozen=True)
class HistoryRecord:
    """One measured perf point on the per-commit trajectory.

    ``bench`` names the producing harness (``perf-smoke``, ``E25``, a
    profile export); ``scenario`` the cell within it (conventionally
    ``scenario/backend``); ``wall_seconds`` is the gated number, with
    ``cpu_seconds``/``peak_rss_bytes`` carried for attribution.  ``at``
    is wall-clock for humans; ordering within a series is append order.
    """

    bench: str
    scenario: str
    hardware_class: str
    commit: str
    wall_seconds: float
    cpu_seconds: float = 0.0
    peak_rss_bytes: int = 0
    at: float = field(default_factory=time.time)
    meta: dict[str, Any] = field(default_factory=dict)

    def key(self) -> tuple[str, str, str]:
        """Series key: hardware-scoped (bench, scenario) trajectory."""
        return (self.bench, self.scenario, self.hardware_class)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "HistoryRecord":
        known = set(cls.__dataclass_fields__)
        return cls(**{k: v for k, v in payload.items() if k in known})


class ProfileHistory:
    """Append-only NDJSON store of :class:`HistoryRecord` lines.

    The file is the contract: one JSON object per line, append-only, so
    CI can cat a new record onto a downloaded artifact and re-upload.
    Loading tolerates a truncated *final* line (crash mid-append) with a
    counted warning; corruption anywhere else still raises.
    """

    def __init__(self, path: str):
        self.path = path

    # -- persistence --------------------------------------------------

    def append(self, record: HistoryRecord) -> None:
        line = json.dumps(record.to_dict(), sort_keys=True, default=str)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    def extend(self, records: Iterable[HistoryRecord]) -> int:
        count = 0
        for record in records:
            self.append(record)
            count += 1
        return count

    def load(self) -> list[HistoryRecord]:
        """All records in append order (empty when the file is absent)."""
        if not os.path.exists(self.path):
            return []
        with open(self.path, encoding="utf-8") as handle:
            lines = handle.readlines()
        last_content = max(
            (i for i, line in enumerate(lines) if line.strip()), default=-1
        )
        records: list[HistoryRecord] = []
        for index, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                records.append(HistoryRecord.from_dict(json.loads(stripped)))
            except (json.JSONDecodeError, TypeError) as exc:
                if index == last_content:
                    warnings.warn(
                        f"{self.path}:{index + 1}: skipped truncated final "
                        f"history record (1 record dropped): {exc}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    continue
                raise ValueError(
                    f"{self.path}:{index + 1}: malformed history line: {exc}"
                ) from exc
        return records

    def series(self) -> dict[tuple[str, str, str], list[HistoryRecord]]:
        """Records grouped by series key, each in append order."""
        grouped: dict[tuple[str, str, str], list[HistoryRecord]] = {}
        for record in self.load():
            grouped.setdefault(record.key(), []).append(record)
        return grouped

    # -- reporting ----------------------------------------------------

    def report(
        self, *, bench: str | None = None, window: int = DEFAULT_WINDOW
    ) -> list[dict[str, Any]]:
        """One summary row per series: latest point vs rolling median."""
        rows: list[dict[str, Any]] = []
        grouped = self.series()
        for key in sorted(grouped):
            records = grouped[key]
            if bench is not None and key[0] != bench:
                continue
            latest = records[-1]
            prior = records[:-1][-window:]
            median = _median([r.wall_seconds for r in prior]) if prior else None
            rows.append(
                {
                    "bench": key[0],
                    "scenario": key[1],
                    "hardware": key[2],
                    "runs": len(records),
                    "commit": latest.commit,
                    "wall_s": round(latest.wall_seconds, 4),
                    "median_s": (
                        round(median, 4) if median is not None else None
                    ),
                    "trend": (
                        round(latest.wall_seconds / median, 3)
                        if median
                        else None
                    ),
                    "peak_rss_mb": round(
                        latest.peak_rss_bytes / (1024 * 1024), 1
                    ),
                }
            )
        return rows

    def compare(self, base: str, to: str) -> list[dict[str, Any]]:
        """Per-series wall ratio between two commits (latest record each)."""
        by_commit: dict[
            tuple[str, str, str], dict[str, HistoryRecord]
        ] = {}
        for record in self.load():
            by_commit.setdefault(record.key(), {})[record.commit] = record
        rows: list[dict[str, Any]] = []
        for key in sorted(by_commit):
            pair = by_commit[key]
            left, right = pair.get(base), pair.get(to)
            if left is None or right is None:
                continue
            rows.append(
                {
                    "bench": key[0],
                    "scenario": key[1],
                    "hardware": key[2],
                    "base_s": round(left.wall_seconds, 4),
                    "to_s": round(right.wall_seconds, 4),
                    "ratio": (
                        round(right.wall_seconds / left.wall_seconds, 3)
                        if left.wall_seconds > 0
                        else None
                    ),
                }
            )
        return rows

    # -- the gate -----------------------------------------------------

    def check(
        self,
        *,
        window: int = DEFAULT_WINDOW,
        tolerance: float = DEFAULT_TOLERANCE,
        min_wall: float = DEFAULT_MIN_WALL,
        min_history: int = DEFAULT_MIN_HISTORY,
        bench: str | None = None,
        hardware: str | None = None,
    ) -> tuple[list[str], list[str]]:
        """Trend gate: ``(failures, notes)``, like ``check_baseline``.

        For every series in the gated hardware class (default: this
        machine's), the newest record must satisfy
        ``wall <= tolerance * median(previous window records)``.  Series
        on other hardware, series shorter than *min_history*, and cells
        under *min_wall* are skipped with a note — a fresh trajectory
        accretes before it enforces.  A missing or empty history file is
        a failure: a gate pointed at nothing is a misconfigured gate.
        """
        failures: list[str] = []
        notes: list[str] = []
        gated_hw = hardware if hardware is not None else hardware_class()
        grouped = self.series()
        if bench is not None:
            grouped = {k: v for k, v in grouped.items() if k[0] == bench}
        if not grouped:
            failures.append(
                f"history check compared nothing: no records in "
                f"{self.path}"
                + (f" for bench {bench!r}" if bench is not None else "")
            )
            return failures, notes
        skipped_hw = 0
        compared = 0
        for key in sorted(grouped):
            series_name = f"{key[0]}/{key[1]}"
            records = grouped[key]
            if key[2] != gated_hw:
                skipped_hw += 1
                continue
            if len(records) < min_history:
                notes.append(
                    f"{series_name}: only {len(records)} record(s) "
                    f"(< {min_history}); trend gate not yet active"
                )
                continue
            latest = records[-1]
            prior = records[:-1][-window:]
            median = _median([r.wall_seconds for r in prior])
            if median < min_wall:
                notes.append(
                    f"{series_name}: median {median:.4f}s under "
                    f"{min_wall}s floor; skipped as noise"
                )
                continue
            compared += 1
            if latest.wall_seconds > tolerance * median:
                failures.append(
                    f"{series_name} [{key[2]}] commit {latest.commit}: "
                    f"{latest.wall_seconds:.4f}s vs rolling median "
                    f"{median:.4f}s over {len(prior)} run(s) "
                    f"(> {tolerance:.2f}x)"
                )
        if skipped_hw:
            notes.append(
                f"skipped {skipped_hw} series recorded on other hardware "
                f"classes (gating {gated_hw})"
            )
        if compared == 0 and not failures:
            notes.append(
                "no series were gated (all skipped); trajectory is still "
                "accreting"
            )
        return failures, notes

    # -- maintenance --------------------------------------------------

    def gc(self, *, keep: int = 50) -> tuple[int, int]:
        """Bound each series to its newest *keep* records.

        Rewrites the file atomically, preserving append order among the
        survivors; returns ``(kept, dropped)``.
        """
        if keep <= 0:
            raise ValueError(f"keep must be positive, got {keep}")
        records = self.load()
        per_key: dict[tuple[str, str, str], int] = {}
        for record in records:
            per_key[record.key()] = per_key.get(record.key(), 0) + 1
        drop_budget = {
            key: max(0, count - keep) for key, count in per_key.items()
        }
        survivors: list[HistoryRecord] = []
        for record in records:
            if drop_budget.get(record.key(), 0) > 0:
                drop_budget[record.key()] -= 1
                continue
            survivors.append(record)
        from repro.io import atomic_write_text

        atomic_write_text(
            self.path,
            "".join(
                json.dumps(r.to_dict(), sort_keys=True, default=str) + "\n"
                for r in survivors
            ),
        )
        return len(survivors), len(records) - len(survivors)

    def __len__(self) -> int:
        return len(self.load())


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    count = len(ordered)
    if count == 0:
        return 0.0
    middle = count // 2
    if count % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0
