"""Metrics registry: counters, gauges, and histograms with snapshots.

The tracing layer answers *where did this run's time go*; the metrics
registry answers *how is the system behaving over many runs* — job
latency percentiles, queue depth, plan-cache hit rate, spill bytes —
without retaining per-job artifacts.  The design follows the usual
process-metrics shape (Prometheus-style naming, point-in-time
snapshots) scaled down to one process:

* :class:`Counter` — monotonic total (``jobs.submitted``,
  ``engine.spilled_bytes``).
* :class:`Gauge` — last-set value (``scheduler.queue_depth``,
  ``scheduler.slot_utilization``).
* :class:`Histogram` — count/sum/min/max plus a bounded reservoir of the
  most recent observations, from which ``p50``/``p95`` are computed at
  snapshot time (``job.latency_seconds``).

All metrics are thread-safe (the job service updates them from scheduler
worker threads); :meth:`MetricsRegistry.snapshot` is the JSON-ready form
served by the ``metrics`` request on ``repro serve`` and rendered by the
``repro metrics`` summary table.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

#: Most recent observations a histogram retains for percentile estimates.
#: Count/sum/min/max remain exact over the full lifetime either way.
RESERVOIR_SIZE = 1024


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of *values* (0.0 for an empty list)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class Counter:
    """Monotonic counter; ``inc`` only ever adds a non-negative amount."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Point-in-time value; ``set`` replaces, ``add`` adjusts."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Streaming distribution: exact count/sum/min/max, recent percentiles."""

    __slots__ = ("_count", "_sum", "_min", "_max", "_recent", "_lock")

    def __init__(self, reservoir: int = RESERVOIR_SIZE) -> None:
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._recent: deque[float] = deque(maxlen=reservoir)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            self._recent.append(value)

    def snapshot(self) -> dict[str, float | int]:
        """count/sum/mean/min/max/p50/p95 at this instant."""
        with self._lock:
            count = self._count
            total = self._sum
            low = self._min
            high = self._max
            recent = list(self._recent)
        return {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else 0.0,
            "min": low if low is not None else 0.0,
            "max": high if high is not None else 0.0,
            "p50": percentile(recent, 0.50),
            "p95": percentile(recent, 0.95),
        }


class MetricsRegistry:
    """Get-or-create registry of named counters, gauges, and histograms.

    Names are dotted-lowercase (``jobs.submitted``); asking for an
    existing name returns the same metric object, and asking for a name
    registered as a different kind raises, so typos cannot silently fork
    a metric.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind: type) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready state: ``{"counters": ..., "gauges": ...,
        "histograms": ...}``, each keyed by metric name."""
        with self._lock:
            metrics = dict(self._metrics)
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, float | int]] = {}
        for name in sorted(metrics):
            metric = metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = metric.snapshot()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
