"""Observation store: durable ``(plan fingerprint, observed timings)`` log.

The planner's scores are analytical; the roadmap's self-calibrating
planner needs the *measured* counterpart — for each executed job, which
plan ran (by fingerprint) and what actually happened (phase timings,
queue wait, the :class:`~repro.mapreduce.metrics.JobMetrics` totals).
:class:`ObservationStore` appends exactly that record per finished job:
a bounded in-memory window for live queries plus, optionally, an
append-only NDJSON log on disk so observations survive the process —
perun-style profiles keyed by plan fingerprint rather than commit.

``repro serve --obs-log obs.ndjson`` writes the log;
``repro metrics --log obs.ndjson`` summarizes it
(:func:`summarize_observations`); the calibration work reads it back
with :func:`load_observations`.
"""

from __future__ import annotations

import json
import threading
import time
import warnings
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Any, Iterable

from repro.obs.metrics import percentile

#: Default number of observations retained in memory.
DEFAULT_CAPACITY = 4096


@dataclass(frozen=True)
class ObservationRecord:
    """One executed job's measured outcome, keyed by plan fingerprint.

    ``fingerprint`` is the plan-cache key
    (:func:`repro.planner.planner.plan_fingerprint`), so records group
    naturally by planning request; the remaining fields are the measured
    quantities a calibration fit needs (phase wall times, the shuffle's
    pair/byte totals, spill traffic) plus enough context to filter by
    backend and worker count.  ``at`` is wall-clock (for humans reading
    the log); every duration is monotonic-clock derived.

    ``status`` distinguishes completed jobs (``done``) from failures
    (``failed``) — the service appends a record for *every* finished
    execution, so failure rates are first-class observations rather than
    gaps in the log — and ``task_retries``/``pool_rebuilds`` carry the
    fault plane's recovery work into the calibration data.  All four
    fields default so logs written before the fault plane load cleanly.

    The data-plane counters (``encoded_bytes``/``encode_seconds``/
    ``decode_seconds``/``shm_segments``) likewise default to zero so
    logs written before the block codec landed load unchanged; they are
    only nonzero on backends that ship encoded blocks.

    ``commit`` and ``hardware_class`` key the record against the
    profile-history trajectory (:mod:`repro.obs.history`), and
    ``peak_rss_bytes``/``cpu_seconds`` carry the resource sampler's
    per-job attribution; all four default (empty/zero) so older logs
    load unchanged.
    """

    job_id: str
    fingerprint: str
    cache_hit: bool
    backend: str = ""
    workers: int = 0
    wall_seconds: float = 0.0
    queue_seconds: float = 0.0
    map_seconds: float = 0.0
    shuffle_seconds: float = 0.0
    reduce_seconds: float = 0.0
    map_output_pairs: int = 0
    communication_cost: int = 0
    num_reducers: int = 0
    max_reducer_load: int = 0
    spilled_bytes: int = 0
    spill_runs: int = 0
    output_records: int = 0
    status: str = "done"
    error: str = ""
    task_retries: int = 0
    pool_rebuilds: int = 0
    encoded_bytes: int = 0
    encode_seconds: float = 0.0
    decode_seconds: float = 0.0
    shm_segments: int = 0
    commit: str = ""
    hardware_class: str = ""
    peak_rss_bytes: int = 0
    cpu_seconds: float = 0.0
    at: float = field(default_factory=time.time)

    @classmethod
    def from_result(
        cls, result: Any, *, queue_seconds: float = 0.0, **extra: Any
    ) -> "ObservationRecord":
        """Build a record from a service :class:`JobResult`-shaped object.

        Duck-typed (``job_id``/``fingerprint``/``cache_hit``/``metrics``/
        ``engine``/``wall_seconds`` attributes) so this module never
        imports the service layer.  Plan-only results produce a record
        with zeroed execution fields — still useful for cache-hit-rate
        accounting over time.  ``extra`` passes caller-measured fields
        (``commit``, ``hardware_class``, ``peak_rss_bytes``,
        ``cpu_seconds``) straight through to the constructor.
        """
        metrics = getattr(result, "metrics", None)
        engine = getattr(result, "engine", None)
        kwargs: dict[str, Any] = {
            "job_id": result.job_id,
            "fingerprint": result.fingerprint,
            "cache_hit": result.cache_hit,
            "wall_seconds": result.wall_seconds,
            "queue_seconds": queue_seconds,
            **extra,
        }
        if engine is not None:
            kwargs.update(
                backend=engine.backend,
                workers=engine.num_workers,
                map_seconds=engine.timings.map_seconds,
                shuffle_seconds=engine.timings.shuffle_seconds,
                reduce_seconds=engine.timings.reduce_seconds,
                task_retries=engine.task_retries,
                pool_rebuilds=engine.pool_rebuilds,
                encoded_bytes=engine.encoded_bytes,
                encode_seconds=engine.encode_seconds,
                decode_seconds=engine.decode_seconds,
                shm_segments=engine.shm_segments,
            )
        if metrics is not None:
            kwargs.update(
                map_output_pairs=metrics.map_output_pairs,
                communication_cost=metrics.communication_cost,
                num_reducers=metrics.num_reducers,
                max_reducer_load=metrics.max_reducer_load,
                spilled_bytes=metrics.spilled_bytes,
                spill_runs=metrics.spill_runs,
                output_records=metrics.output_records,
            )
        return cls(**kwargs)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ObservationRecord":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        return cls(**{k: v for k, v in payload.items() if k in known})


class ObservationStore:
    """Bounded in-memory observation window plus optional NDJSON log.

    Args:
        path: append every record as one JSON line to this file (parent
            directory must exist); ``None`` keeps observations in memory
            only.
        capacity: in-memory records retained (oldest dropped first); the
            on-disk log is never truncated by this bound.

    Appends are thread-safe; disk-write failures raise (a service asked
    to persist observations must not drop them silently).
    """

    def __init__(
        self, path: str | None = None, capacity: int = DEFAULT_CAPACITY
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.path = path
        self._records: deque[ObservationRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.appended = 0

    def record(self, observation: ObservationRecord) -> None:
        """Append one observation (memory, then the log when configured)."""
        line = (
            json.dumps(observation.to_dict(), sort_keys=True, default=str)
            if self.path is not None
            else None
        )
        with self._lock:
            self._records.append(observation)
            self.appended += 1
            if line is not None:
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")

    def snapshot(self) -> list[ObservationRecord]:
        """The retained in-memory records, oldest first."""
        with self._lock:
            return list(self._records)

    def for_fingerprint(self, fingerprint: str) -> list[ObservationRecord]:
        """Retained observations of one planning request (calibration input)."""
        with self._lock:
            return [r for r in self._records if r.fingerprint == fingerprint]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


def load_observations(path: str) -> list[ObservationRecord]:
    """Read an NDJSON observation log back into records.

    Blank lines are skipped.  A malformed *final* line is the signature
    of a crash mid-append (the writer died between ``write`` and the
    newline hitting disk); that partial record is skipped with a counted
    ``RuntimeWarning`` so a log survives its writer.  A malformed line
    anywhere *else* is real corruption and still raises ``ValueError``
    with its line number — a corrupt log should fail loudly, not feed
    half a dataset into a calibration fit.
    """
    records: list[ObservationRecord] = []
    with open(path, encoding="utf-8") as handle:
        lines = handle.readlines()
    last_content = max(
        (i for i, line in enumerate(lines) if line.strip()), default=-1
    )
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            records.append(ObservationRecord.from_dict(json.loads(stripped)))
        except (json.JSONDecodeError, TypeError) as exc:
            if index == last_content:
                warnings.warn(
                    f"{path}:{index + 1}: skipped truncated final "
                    f"observation record (1 record dropped): {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            raise ValueError(
                f"{path}:{index + 1}: malformed observation line: {exc}"
            ) from exc
    return records


def summarize_observations(
    records: Iterable[ObservationRecord],
) -> list[dict[str, Any]]:
    """Aggregate observations into per-backend summary rows.

    One row per backend (plan-only records group under ``plan-only``):
    job count, cache-hit rate, latency p50/p95, mean phase seconds, and
    spill totals — the table ``repro metrics`` prints.
    """
    groups: dict[str, list[ObservationRecord]] = {}
    for record in records:
        groups.setdefault(record.backend or "plan-only", []).append(record)
    rows: list[dict[str, Any]] = []
    for backend in sorted(groups):
        group = groups[backend]
        walls = [r.wall_seconds for r in group]
        count = len(group)
        rows.append(
            {
                "backend": backend,
                "jobs": count,
                "cache_hit_rate": round(
                    sum(1 for r in group if r.cache_hit) / count, 3
                ),
                "wall_p50_s": round(percentile(walls, 0.50), 4),
                "wall_p95_s": round(percentile(walls, 0.95), 4),
                "queue_mean_s": round(
                    sum(r.queue_seconds for r in group) / count, 4
                ),
                "map_mean_s": round(
                    sum(r.map_seconds for r in group) / count, 4
                ),
                "shuffle_mean_s": round(
                    sum(r.shuffle_seconds for r in group) / count, 4
                ),
                "reduce_mean_s": round(
                    sum(r.reduce_seconds for r in group) / count, 4
                ),
                "shuffle_pairs": sum(r.map_output_pairs for r in group),
                "spilled_bytes": sum(r.spilled_bytes for r in group),
                "encoded_bytes": sum(r.encoded_bytes for r in group),
                "shm_segments": sum(r.shm_segments for r in group),
                "outputs": sum(r.output_records for r in group),
            }
        )
    return rows
