"""The simulated MapReduce job: map, shuffle, reduce with capacity checks.

This is the substrate substitution for a real Hadoop-style cluster (see
DESIGN.md): the paper's metrics — communication cost, reducer count,
per-reducer load against the capacity ``q`` — are defined on this abstract
model, which the job executes faithfully in-process.

The simulator deliberately keeps the simple one-dict shuffle even though
the execution engine (:mod:`repro.engine.engine`) moved to a partitioned
task contract (map tasks return partition-bucketed groups, reduce tasks
merge their own partition): the shared helpers in
:mod:`repro.mapreduce.shuffle` plus the sorted-key reduce order are what
keep the two executors byte-identical, which
:mod:`repro.engine.crossval` verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable

from repro.exceptions import CapacityExceededError
from repro.mapreduce.metrics import JobMetrics
from repro.mapreduce.shuffle import group_pairs, map_record, ordered_keys
from repro.mapreduce.types import MapFn, ReduceFn, SizeFn, default_size


@dataclass(frozen=True)
class JobResult:
    """Outputs plus metrics of one job run."""

    outputs: list
    metrics: JobMetrics


@dataclass
class MapReduceJob:
    """A single MapReduce job over in-memory records.

    Attributes:
        map_fn: record -> iterable of (key, value).
        reduce_fn: (key, values) -> iterable of outputs.
        size_of: value-size function for capacity and communication
            accounting (defaults to :func:`default_size`).
        reducer_capacity: the paper's ``q``; when set, each reducer's total
            value size is checked against it.
        strict_capacity: when True (default) exceeding the capacity raises
            :class:`CapacityExceededError`; when False the violation is
            recorded in the metrics and the reducer still runs — used by
            experiments that *measure* how badly a baseline overflows.
        combiner_fn: optional mapper-side combiner ``(key, values) ->
            iterable of values``: applied to each record's emissions before
            the shuffle (each record plays the role of one mapper).
            Combining reduces the communication cost and the reducer loads
            — exactly the quantities the paper's metrics count — so the
            metrics reflect the post-combine volumes.
    """

    map_fn: MapFn
    reduce_fn: ReduceFn
    size_of: SizeFn = default_size
    reducer_capacity: int | None = None
    strict_capacity: bool = True
    combiner_fn: ReduceFn | None = None

    def run(self, records: Iterable[Any]) -> JobResult:
        """Execute the job: map every record, shuffle, reduce every key.

        Keys are reduced in sorted order when orderable (falling back to
        insertion order) so runs are deterministic.
        """
        groups, map_inputs, map_pairs, comm = self._map_and_shuffle(records)
        return self._reduce(groups, map_inputs, map_pairs, comm)

    def _map_and_shuffle(
        self, records: Iterable[Any]
    ) -> tuple[dict[Hashable, list[Any]], int, int, int]:
        """Run the map phase (plus any combiner) and group pairs by key."""
        groups: dict[Hashable, list[Any]] = {}
        map_inputs = 0
        map_pairs = 0
        comm = 0
        for record in records:
            map_inputs += 1
            emitted = map_record(record, self.map_fn, self.combiner_fn)
            map_pairs += len(emitted)
            comm += sum(self.size_of(value) for _, value in emitted)
            group_pairs(emitted, groups)
        return groups, map_inputs, map_pairs, comm

    def _reduce(
        self,
        groups: dict[Hashable, list[Any]],
        map_inputs: int,
        map_pairs: int,
        comm: int,
    ) -> JobResult:
        """Run every reducer, enforcing the capacity if configured."""
        outputs: list[Any] = []
        loads: dict[Hashable, int] = {}
        violations: list[Hashable] = []
        for key in ordered_keys(groups):
            values = groups[key]
            load = sum(self.size_of(v) for v in values)
            loads[key] = load
            if self.reducer_capacity is not None and load > self.reducer_capacity:
                if self.strict_capacity:
                    raise CapacityExceededError(
                        f"reducer for key {key!r} received load {load} "
                        f"> capacity {self.reducer_capacity}",
                        key=key,
                        load=load,
                        capacity=self.reducer_capacity,
                    )
                violations.append(key)
            outputs.extend(self.reduce_fn(key, values))

        metrics = JobMetrics(
            map_input_records=map_inputs,
            map_output_pairs=map_pairs,
            communication_cost=comm,
            num_reducers=len(groups),
            reducer_loads=loads,
            max_reducer_load=max(loads.values(), default=0),
            capacity=self.reducer_capacity,
            capacity_violations=tuple(violations),
            output_records=len(outputs),
        )
        return JobResult(outputs=outputs, metrics=metrics)
