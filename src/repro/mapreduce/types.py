"""Basic types for the MapReduce simulator.

The simulator implements the abstract model the paper defines its metrics
on: mappers emit key-value pairs, the shuffle groups values by key, and a
*reducer* is one application of the reduce function to a key and its value
list, bounded by the capacity ``q`` on the sum of value sizes.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable

#: A mapper takes one input record and yields (key, value) pairs.
MapFn = Callable[[Any], Iterable[tuple[Hashable, Any]]]

#: A reducer takes a key and the full list of its values and yields outputs.
ReduceFn = Callable[[Hashable, list[Any]], Iterable[Any]]

#: Sizes a value for capacity/communication accounting.
SizeFn = Callable[[Any], int]


def default_size(value: Any) -> int:
    """Default value-size function.

    Preference order: an explicit ``size`` attribute (the convention used by
    :mod:`repro.workloads` objects), then ``len`` for sized containers, then
    1 for scalars.  Never returns less than 1 so every shipped value costs
    something, matching the paper's accounting where each copy of an input
    contributes its size.
    """
    size_attr = getattr(value, "size", None)
    if isinstance(size_attr, int) and size_attr > 0:
        return size_attr
    try:
        length = len(value)  # type: ignore[arg-type]
    except TypeError:
        return 1
    return max(1, length)
