"""Simulated MapReduce substrate: jobs, capacity-checked reducers, cluster."""

from repro.mapreduce.types import MapFn, ReduceFn, SizeFn, default_size
from repro.mapreduce.metrics import JobMetrics
from repro.mapreduce.shuffle import (
    group_pairs,
    hash_partition,
    map_record,
    ordered_keys,
    partition_groups,
    stable_hash,
)
from repro.mapreduce.job import JobResult, MapReduceJob
from repro.mapreduce.cluster import ScheduleResult, SimulatedCluster, schedule_loads

__all__ = [
    "MapFn",
    "ReduceFn",
    "SizeFn",
    "default_size",
    "JobMetrics",
    "JobResult",
    "MapReduceJob",
    "ScheduleResult",
    "SimulatedCluster",
    "schedule_loads",
    "map_record",
    "group_pairs",
    "ordered_keys",
    "hash_partition",
    "partition_groups",
    "stable_hash",
]
