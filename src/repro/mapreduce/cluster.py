"""Cluster scheduling model: turn reducer loads into makespan.

The paper's parallelism tradeoff (ii) says larger capacities mean fewer,
heavier reducers and therefore less parallelism.  This module quantifies
that: given the reduce-task loads of a schema or job and a worker pool, it
schedules tasks with Longest-Processing-Time-first (the classic 4/3-
approximation for makespan) and reports the resulting makespan in
simulated time units (1 unit of load = 1 unit of time by default).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.exceptions import InvalidInstanceError


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling reduce tasks on a finite worker pool.

    Attributes:
        makespan: time until the last worker finishes (max worker busy time).
        worker_loads: total load per worker after assignment.
        num_tasks: tasks scheduled.
        num_workers: pool size.
        waves: ``ceil(num_tasks / num_workers)`` — the task-wave count a
            slot-based scheduler (Hadoop-style) would need.
    """

    makespan: float
    worker_loads: tuple[float, ...]
    num_tasks: int
    num_workers: int
    waves: int

    @property
    def utilization(self) -> float:
        """Mean worker busy time / makespan; 1.0 is a perfectly full pool."""
        if self.makespan <= 0 or not self.worker_loads:
            return 0.0
        return (sum(self.worker_loads) / len(self.worker_loads)) / self.makespan


def schedule_loads(
    loads: Sequence[int | float],
    num_workers: int,
    *,
    time_per_unit: float = 1.0,
    worker_speeds: Sequence[float] | None = None,
) -> ScheduleResult:
    """LPT-schedule reduce tasks with the given *loads* on *num_workers*.

    Each task's duration on worker ``w`` is ``load * time_per_unit /
    speed_w``.  *worker_speeds* models a heterogeneous pool (default: all
    1.0); tasks go to the worker that would finish them earliest, in
    LPT order.  Returns the :class:`ScheduleResult` with *busy times* per
    worker; an empty task list yields a zero makespan.
    """
    if num_workers <= 0:
        raise InvalidInstanceError(f"num_workers must be positive, got {num_workers}")
    if time_per_unit <= 0:
        raise InvalidInstanceError(
            f"time_per_unit must be positive, got {time_per_unit}"
        )
    if worker_speeds is None:
        speeds = [1.0] * num_workers
    else:
        speeds = [float(s) for s in worker_speeds]
        if len(speeds) != num_workers:
            raise InvalidInstanceError(
                f"worker_speeds has {len(speeds)} entries for {num_workers} workers"
            )
        if any(s <= 0 for s in speeds):
            raise InvalidInstanceError("worker speeds must be positive")

    tasks = sorted((float(load) * time_per_unit for load in loads), reverse=True)
    busy = [0.0] * num_workers
    for duration in tasks:
        # Pick the worker that would *finish this task* earliest.
        best_worker = min(
            range(num_workers), key=lambda w: busy[w] + duration / speeds[w]
        )
        busy[best_worker] += duration / speeds[best_worker]
    worker_loads = tuple(sorted(busy, reverse=True))
    num_tasks = len(tasks)
    return ScheduleResult(
        makespan=worker_loads[0] if worker_loads else 0.0,
        worker_loads=worker_loads,
        num_tasks=num_tasks,
        num_workers=num_workers,
        waves=-(-num_tasks // num_workers) if num_tasks else 0,
    )


@dataclass(frozen=True)
class SimulatedCluster:
    """A worker pool with a common reducer capacity.

    Thin convenience wrapper tying the capacity ``q`` (used when building
    schemas and jobs) to the worker count (used when scheduling), so
    experiments carry one object around.
    """

    num_workers: int
    reducer_capacity: int
    time_per_unit: float = 1.0
    worker_speeds: tuple[float, ...] | None = None

    def __post_init__(self):
        if self.num_workers <= 0:
            raise InvalidInstanceError(
                f"num_workers must be positive, got {self.num_workers}"
            )
        if self.reducer_capacity <= 0:
            raise InvalidInstanceError(
                f"reducer_capacity must be positive, got {self.reducer_capacity}"
            )
        if self.worker_speeds is not None and len(self.worker_speeds) != self.num_workers:
            raise InvalidInstanceError(
                f"worker_speeds has {len(self.worker_speeds)} entries "
                f"for {self.num_workers} workers"
            )

    def schedule(self, loads: Sequence[int | float]) -> ScheduleResult:
        """Schedule reduce-task *loads* on this cluster's workers."""
        return schedule_loads(
            loads,
            self.num_workers,
            time_per_unit=self.time_per_unit,
            worker_speeds=self.worker_speeds,
        )
