"""Shared map/shuffle primitives for the simulator and the execution engine.

Both :class:`repro.mapreduce.job.MapReduceJob` (the in-process reference
simulator) and :mod:`repro.engine` (the parallel execution engine) implement
the same abstract model: mappers emit key-value pairs, an optional combiner
folds each mapper's emissions, and the shuffle groups values by key.  These
helpers hold that logic in one place so the two executors cannot drift.

The engine's shuffle is *partitioned*: map tasks pre-group their pairs by
reduce partition (:func:`partition_groups` over :func:`stable_hash`) so the
parent process never re-hashes individual pairs.  The simulator keeps the
single-dict shuffle (:func:`group_pairs`) — its job is to define the
metrics, not to be fast — and stays byte-identical to the engine because
both executors reduce keys in :func:`ordered_keys` order.
"""

from __future__ import annotations

import numbers
import zlib
from typing import Any, Hashable, Iterable

from repro.exceptions import InvalidInstanceError
from repro.mapreduce.types import MapFn, ReduceFn


def map_record(
    record: Any,
    map_fn: MapFn,
    combiner_fn: ReduceFn | None = None,
) -> list[tuple[Hashable, Any]]:
    """Apply the map function (plus optional combiner) to one record.

    Each record plays the role of one mapper, so the combiner sees exactly
    the emissions of that record, grouped by key, before the shuffle — this
    is what makes combining reduce the shuffled volume.
    """
    emitted: list[tuple[Hashable, Any]] = list(map_fn(record))
    if combiner_fn is None:
        return emitted
    local: dict[Hashable, list[Any]] = {}
    for key, value in emitted:
        local.setdefault(key, []).append(value)
    return [
        (key, combined)
        for key, values in local.items()
        for combined in combiner_fn(key, values)
    ]


def group_pairs(
    pairs: Iterable[tuple[Hashable, Any]],
    groups: dict[Hashable, list[Any]] | None = None,
) -> dict[Hashable, list[Any]]:
    """Shuffle: append ``(key, value)`` pairs into per-key value lists.

    Passing an existing *groups* dict accumulates across calls; values keep
    arrival order so grouping is deterministic for a fixed record order.
    """
    if groups is None:
        groups = {}
    for key, value in pairs:
        groups.setdefault(key, []).append(value)
    return groups


def ordered_keys(groups: dict[Hashable, Any]) -> list[Hashable]:
    """Keys in sorted order when orderable, else insertion order.

    Both executors reduce keys in this order, which is what makes their
    outputs byte-identical for the same inputs.
    """
    try:
        return sorted(groups)
    except TypeError:
        return list(groups)


def stable_hash(key: Hashable) -> int:
    """A hash that is stable across interpreter runs and processes, and
    consistent with equality for the key types jobs actually use.

    The builtin ``hash()`` is salted per process for strings (and tuples
    containing them), which would make the engine's partitioning — and with
    it the per-task load metrics written to benchmark artifacts —
    nondeterministic between identical runs.  Numbers, however, hash
    *unsalted* in CPython, so numeric keys reuse ``hash()`` directly —
    which also preserves the hash/equality contract (``1``, ``1.0`` and
    ``True`` are equal and must land in the same partition, or the
    partitioned shuffle would reduce "the same" key in two tasks).
    Strings and bytes go through CRC32, and tuples mix their elements'
    stable hashes (the same multiply-xor scheme CPython uses for tuple
    hashing).  Everything else falls back to ``hash()`` for numeric types
    and CRC32 over ``repr`` otherwise; keys of exotic types are supported
    only insofar as equal keys produce equal reprs.

    **Contract:** the guarantees above hold only for keys that are equal
    to themselves.  ``float('nan')`` is not (``nan != nan``), which breaks
    grouping itself, not just hashing: every NaN *object* becomes its own
    dict group, on CPython >= 3.10 ``hash(nan)`` is id-based so the
    partition assignment is not even stable across processes, and exotic
    containers holding NaN hash equal through the ``repr`` fallback while
    comparing unequal.  The execution engine therefore rejects
    non-self-equal keys whenever it must merge groups deterministically
    (strict capacity mode, and always in out-of-core runs, where the
    sorted spill-file merge could otherwise silently diverge from dict
    grouping); the reference simulator keeps the raw dict semantics,
    which the test suite pins.
    """
    kind = type(key)
    if kind is int or kind is bool or kind is float:
        return hash(key) & 0xFFFFFFFF
    if kind is str:
        return zlib.crc32(key.encode("utf-8", "backslashreplace"))
    if kind is tuple:
        acc = 0x345678
        for item in key:
            acc = ((acc * 1000003) ^ stable_hash(item)) & 0xFFFFFFFF
        return acc ^ len(key)
    if kind is bytes:
        return zlib.crc32(key)
    if isinstance(key, numbers.Number):
        return hash(key) & 0xFFFFFFFF
    return zlib.crc32(repr(key).encode("utf-8", "backslashreplace"))


def hash_partition(
    keys: Iterable[Hashable], num_partitions: int
) -> list[list[Hashable]]:
    """Assign each key to one of *num_partitions* buckets by stable hash.

    The relative order of keys within a bucket follows the input order, so
    partitioning a sorted key list yields sorted buckets.
    :func:`stable_hash` makes the assignment reproducible across runs and
    across worker processes — mapper-side partitioning in different
    processes agrees with the parent by construction.
    """
    if num_partitions <= 0:
        raise InvalidInstanceError(
            f"num_partitions must be positive, got {num_partitions}"
        )
    buckets: list[list[Hashable]] = [[] for _ in range(num_partitions)]
    for key in keys:
        buckets[stable_hash(key) % num_partitions].append(key)
    return buckets


def partition_groups(
    groups: dict[Hashable, list[Any]], num_partitions: int
) -> list[dict[Hashable, list[Any]]]:
    """Split a key-grouped dict into per-reduce-partition dicts.

    This is the mapper-side half of the engine's partitioned shuffle: each
    map task groups its own pairs by key, then buckets the *distinct* keys
    by :func:`stable_hash` — one hash per key instead of one per pair.  The
    returned list has exactly *num_partitions* dicts (empty ones included;
    the engine drops empty partitions after transposing across map tasks).
    """
    if num_partitions <= 0:
        raise InvalidInstanceError(
            f"num_partitions must be positive, got {num_partitions}"
        )
    if num_partitions == 1:
        return [groups]
    buckets: list[dict[Hashable, list[Any]]] = [
        {} for _ in range(num_partitions)
    ]
    for key, values in groups.items():
        buckets[stable_hash(key) % num_partitions][key] = values
    return buckets
