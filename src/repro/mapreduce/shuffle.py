"""Shared map/shuffle primitives for the simulator and the execution engine.

Both :class:`repro.mapreduce.job.MapReduceJob` (the in-process reference
simulator) and :mod:`repro.engine` (the parallel execution engine) implement
the same abstract model: mappers emit key-value pairs, an optional combiner
folds each mapper's emissions, and the shuffle groups values by key.  These
helpers hold that logic in one place so the two executors cannot drift.
"""

from __future__ import annotations

import zlib
from typing import Any, Hashable, Iterable

from repro.exceptions import InvalidInstanceError
from repro.mapreduce.types import MapFn, ReduceFn


def map_record(
    record: Any,
    map_fn: MapFn,
    combiner_fn: ReduceFn | None = None,
) -> list[tuple[Hashable, Any]]:
    """Apply the map function (plus optional combiner) to one record.

    Each record plays the role of one mapper, so the combiner sees exactly
    the emissions of that record, grouped by key, before the shuffle — this
    is what makes combining reduce the shuffled volume.
    """
    emitted: list[tuple[Hashable, Any]] = list(map_fn(record))
    if combiner_fn is None:
        return emitted
    local: dict[Hashable, list[Any]] = {}
    for key, value in emitted:
        local.setdefault(key, []).append(value)
    return [
        (key, combined)
        for key, values in local.items()
        for combined in combiner_fn(key, values)
    ]


def group_pairs(
    pairs: Iterable[tuple[Hashable, Any]],
    groups: dict[Hashable, list[Any]] | None = None,
) -> dict[Hashable, list[Any]]:
    """Shuffle: append ``(key, value)`` pairs into per-key value lists.

    Passing an existing *groups* dict accumulates across calls (the engine
    merges one map task's output at a time); values keep arrival order so
    grouping is deterministic for a fixed record order.
    """
    if groups is None:
        groups = {}
    for key, value in pairs:
        groups.setdefault(key, []).append(value)
    return groups


def ordered_keys(groups: dict[Hashable, Any]) -> list[Hashable]:
    """Keys in sorted order when orderable, else insertion order.

    Both executors reduce keys in this order, which is what makes their
    outputs byte-identical for the same inputs.
    """
    try:
        return sorted(groups)
    except TypeError:
        return list(groups)


def stable_hash(key: Hashable) -> int:
    """A hash that is stable across interpreter runs.

    The builtin ``hash()`` is salted per process for strings (and tuples
    containing them), which would make the engine's partitioning — and with
    it the per-task load metrics written to benchmark artifacts —
    nondeterministic between identical runs.  CRC32 over the key's ``repr``
    is stable for the value-like keys jobs use (ints, strings, tuples).
    """
    return zlib.crc32(repr(key).encode("utf-8", "backslashreplace"))


def hash_partition(
    keys: Iterable[Hashable], num_partitions: int
) -> list[list[Hashable]]:
    """Assign each key to one of *num_partitions* buckets by stable hash.

    The relative order of keys within a bucket follows the input order, so
    partitioning a sorted key list yields sorted buckets.  This is the
    engine's shuffle partitioner: one bucket becomes one reduce task, and
    :func:`stable_hash` makes the assignment reproducible across runs.
    """
    if num_partitions <= 0:
        raise InvalidInstanceError(
            f"num_partitions must be positive, got {num_partitions}"
        )
    buckets: list[list[Hashable]] = [[] for _ in range(num_partitions)]
    for key in keys:
        buckets[stable_hash(key) % num_partitions].append(key)
    return buckets
