"""Metrics collected by simulated MapReduce jobs.

``communication_cost`` is the paper's definition verbatim: the total amount
of data transmitted from the map phase to the reduce phase, i.e. the summed
sizes of all shuffled values.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class JobMetrics:
    """Everything measured during one simulated job run.

    Attributes:
        map_input_records: records fed to mappers.
        map_output_pairs: key-value pairs emitted by mappers.
        communication_cost: total value size shuffled map -> reduce.
        num_reducers: distinct keys reduced (reducer = key + value list).
        reducer_loads: per-key total value size, keyed by reduce key.
        max_reducer_load: largest reducer load.
        capacity: the enforced reducer capacity (``None`` if unenforced).
        capacity_violations: keys whose load exceeded the capacity (only
            populated when enforcement is non-strict; strict mode raises).
        output_records: records produced by reducers.
        spilled_bytes: bytes written to on-disk shuffle runs by map tasks
            (0 for the simulator and for unbounded engine runs; these
            three counters describe the physical execution, not the
            paper's analytical model, so cross-validation against the
            simulator ignores them).
        spill_runs: sorted run files written during the map phase.
        peak_buffered_pairs: most key-value pairs any single map task held
            in memory at once, measured only in memory-budgeted runs
            (0 otherwise — the unbounded peak would merely echo the
            backend's chunking and break cross-backend metric identity).
            It may overshoot the budget by at most one record's emissions,
            since the flush triggers between records.
    """

    map_input_records: int = 0
    map_output_pairs: int = 0
    communication_cost: int = 0
    num_reducers: int = 0
    reducer_loads: dict = field(default_factory=dict)
    max_reducer_load: int = 0
    capacity: int | None = None
    capacity_violations: tuple = ()
    output_records: int = 0
    spilled_bytes: int = 0
    spill_runs: int = 0
    peak_buffered_pairs: int = 0

    @property
    def mean_reducer_load(self) -> float:
        """Average reducer load (0.0 for an empty job)."""
        if not self.reducer_loads:
            return 0.0
        return sum(self.reducer_loads.values()) / len(self.reducer_loads)

    @property
    def load_skew(self) -> float:
        """Max load / mean load; 1.0 means perfectly balanced."""
        mean = self.mean_reducer_load
        return (self.max_reducer_load / mean) if mean else 0.0

    def as_row(self) -> dict[str, object]:
        """Flat dict for table rendering (drops the per-key load map)."""
        return {
            "map_inputs": self.map_input_records,
            "map_pairs": self.map_output_pairs,
            "comm_cost": self.communication_cost,
            "reducers": self.num_reducers,
            "max_load": self.max_reducer_load,
            "mean_load": round(self.mean_reducer_load, 2),
            "skew": round(self.load_skew, 3),
            "violations": len(self.capacity_violations),
            "outputs": self.output_records,
        }
