"""Pair-covering designs: cover all pairs of t points with blocks of size s.

The equal-sized grouping scheme assigns *two* groups per reducer, but when
``k = q // w`` is large a reducer can host ``s = k // g`` groups of size
``g`` — and then the reducers needed are exactly a *covering design*
C(t, 2, s): a family of s-element blocks over t points such that every
pair of points lies in some block.  Good designs cut the reducer count
from ``C(t,2)`` toward the Schönheim bound ``~C(t,2)/C(s,2)``.

This module provides:

* :func:`schonheim_lower_bound` — the classic covering-number bound;
* :func:`steiner_triple_system` — *exact* optimal designs for s = 3 when
  ``t ≡ 1, 3 (mod 6)`` (Bose and Skolem constructions);
* :func:`greedy_pair_cover` — a general greedy design for any (t, s);
* :func:`pair_cover` — front door picking the best available construction.
"""

from __future__ import annotations

from math import ceil

from repro.exceptions import InvalidInstanceError


def schonheim_lower_bound(t: int, s: int) -> int:
    """The Schönheim bound on the pair-covering number C(t, 2, s).

    ``C(t, 2, s) >= ceil(t/s * ceil((t-1)/(s-1)))``; for s = 3 and
    ``t ≡ 1, 3 (mod 6)`` it is met exactly by Steiner triple systems.
    """
    if t < 2:
        return 0 if t < 2 else 1
    if s < 2:
        raise InvalidInstanceError(f"block size must be >= 2, got {s}")
    if s >= t:
        return 1
    return ceil(t / s * ceil((t - 1) / (s - 1)))


def validate_pair_cover(t: int, blocks: list[tuple[int, ...]], s: int | None = None) -> None:
    """Assert *blocks* covers every pair of ``range(t)`` within block size.

    Raises :class:`AssertionError` on violation; used by tests and by the
    constructions' self-checks.
    """
    covered: set[tuple[int, int]] = set()
    for block in blocks:
        assert len(set(block)) == len(block), f"duplicate point in block {block}"
        if s is not None:
            assert len(block) <= s, f"block {block} exceeds size {s}"
        for i_pos, i in enumerate(sorted(block)):
            for j in sorted(block)[i_pos + 1:]:
                covered.add((i, j))
        for point in block:
            assert 0 <= point < t, f"point {point} out of range"
    required = {(i, j) for i in range(t) for j in range(i + 1, t)}
    missing = required - covered
    assert not missing, f"{len(missing)} pairs uncovered, e.g. {next(iter(missing))}"


def steiner_triple_system(t: int) -> list[tuple[int, int, int]]:
    """An exact Steiner triple system on t points (every pair in ONE triple).

    Implemented constructions:

    * **Bose** for ``t = 6n + 3``: points are ``Z_{2n+1} x {0,1,2}``;
      triples are ``{(i,0),(i,1),(i,2)}`` and, for ``i < j``,
      ``{(i,r),(j,r),((i+j)*(n+1) mod 2n+1, r+1 mod 3)}``.
    * **Skolem** for ``t = 6n + 1``: the standard construction over
      ``Z_{6n+1}``... implemented here via the difference-method fallback:
      for ``t ≡ 1 (mod 6)`` we use the Netto-style base blocks when
      available and otherwise raise.

    Raises :class:`InvalidInstanceError` when ``t`` is not ``≡ 3 (mod 6)``
    (the Bose case this module constructs exactly); callers should fall
    back to :func:`greedy_pair_cover`.
    """
    if t % 6 != 3:
        raise InvalidInstanceError(
            f"exact STS construction implemented for t = 6n+3 only, got t={t}"
        )
    n = (t - 3) // 6
    modulus = 2 * n + 1
    half = n + 1  # multiplicative inverse of 2 modulo 2n+1

    def point(i: int, r: int) -> int:
        return 3 * i + r

    triples: list[tuple[int, int, int]] = []
    for i in range(modulus):
        triples.append((point(i, 0), point(i, 1), point(i, 2)))
    for i in range(modulus):
        for j in range(i + 1, modulus):
            k = ((i + j) * half) % modulus
            for r in range(3):
                triples.append(
                    tuple(sorted((point(i, r), point(j, r), point(k, (r + 1) % 3))))
                )
    return triples


def greedy_pair_cover(t: int, s: int) -> list[tuple[int, ...]]:
    """Greedy covering design: repeatedly build the block covering most pairs.

    Guarantees a valid cover for any ``t >= 2, s >= 2``; quality is within
    a logarithmic factor of optimal (the classic set-cover bound), which is
    ample for the grouped-covering reducer scheme.
    """
    if t < 1:
        raise InvalidInstanceError(f"t must be >= 1, got {t}")
    if s < 2:
        raise InvalidInstanceError(f"block size must be >= 2, got {s}")
    if t == 1:
        return [(0,)]
    if s >= t:
        return [tuple(range(t))]

    uncovered: set[tuple[int, int]] = {
        (i, j) for i in range(t) for j in range(i + 1, t)
    }
    degree = [t - 1] * t
    blocks: list[tuple[int, ...]] = []
    while uncovered:
        # Seed with the uncovered pair of max joint degree.
        seed = max(uncovered, key=lambda p: degree[p[0]] + degree[p[1]])
        block = {seed[0], seed[1]}
        while len(block) < s:
            best_point = -1
            best_gain = 0
            for candidate in range(t):
                if candidate in block:
                    continue
                gain = sum(
                    1
                    for member in block
                    if (min(candidate, member), max(candidate, member)) in uncovered
                )
                if gain > best_gain:
                    best_gain = gain
                    best_point = candidate
            if best_point < 0:
                break
            block.add(best_point)
        ordered = tuple(sorted(block))
        blocks.append(ordered)
        for i_pos, i in enumerate(ordered):
            for j in ordered[i_pos + 1:]:
                if (i, j) in uncovered:
                    uncovered.discard((i, j))
                    degree[i] -= 1
                    degree[j] -= 1
    return blocks


def pair_cover(t: int, s: int) -> list[tuple[int, ...]]:
    """Best available pair cover of t points with blocks of size <= s.

    Uses the exact Steiner construction when ``s == 3`` and ``t ≡ 3 (mod 6)``
    and the greedy design otherwise.
    """
    if s == 3 and t % 6 == 3:
        return [tuple(b) for b in steiner_triple_system(t)]
    return greedy_pair_cover(t, s)
