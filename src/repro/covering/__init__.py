"""Covering designs: pair covers used by the grouped-covering A2A scheme."""

from repro.covering.designs import (
    greedy_pair_cover,
    pair_cover,
    schonheim_lower_bound,
    steiner_triple_system,
    validate_pair_cover,
)

__all__ = [
    "greedy_pair_cover",
    "pair_cover",
    "schonheim_lower_bound",
    "steiner_triple_system",
    "validate_pair_cover",
]
