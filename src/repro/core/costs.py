"""Cost metrics over mapping schemas.

The paper frames three tradeoffs against the reducer capacity ``q``:
(i) number of reducers, (ii) parallelism, (iii) communication cost.  This
module computes all three (plus replication rate, the standard normalized
form of communication cost) from a schema, so every experiment reports the
same metric definitions.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from statistics import mean, pstdev

from repro.core.schema import A2ASchema, X2YSchema


@dataclass(frozen=True)
class CostSummary:
    """All tradeoff metrics for one schema.

    Attributes:
        algorithm: name of the producing algorithm.
        num_reducers: reducer count (primary minimization target).
        communication_cost: total size shipped map -> reduce.
        replication_rate: communication cost / total input size; the average
            number of copies made of each size unit.
        max_load: largest reducer load (q bounds it; lower = more parallel
            headroom per reducer).
        mean_load: average reducer load.
        load_stdev: population standard deviation of loads (balance).
        capacity_utilization: mean load / q, in [0, 1].
    """

    algorithm: str
    num_reducers: int
    communication_cost: int
    replication_rate: float
    max_load: int
    mean_load: float
    load_stdev: float
    capacity_utilization: float

    def as_row(self) -> dict[str, object]:
        """Dict form for table rendering."""
        return asdict(self)


def summarize(schema: A2ASchema | X2YSchema) -> CostSummary:
    """Compute the :class:`CostSummary` of a schema (A2A or X2Y)."""
    loads = schema.loads
    total = schema.instance.total_size
    q = schema.instance.q
    num = schema.num_reducers
    comm = schema.communication_cost
    return CostSummary(
        algorithm=schema.algorithm,
        num_reducers=num,
        communication_cost=comm,
        replication_rate=comm / total if total else 0.0,
        max_load=schema.max_load,
        mean_load=mean(loads) if loads else 0.0,
        load_stdev=pstdev(loads) if loads else 0.0,
        capacity_utilization=(mean(loads) / q) if loads else 0.0,
    )


def parallelism_degree(schema: A2ASchema | X2YSchema) -> int:
    """Degree of parallelism: the number of reducers that can run at once.

    In the paper's model every reducer is an independent unit of work, so
    the schema's reducer count *is* the available parallelism; the cluster
    simulator turns this into makespan for a finite worker pool.
    """
    return schema.num_reducers


def skew(schema: A2ASchema | X2YSchema) -> float:
    """Load skew: max load / mean load (1.0 = perfectly balanced)."""
    loads = schema.loads
    if not loads:
        return 0.0
    average = mean(loads)
    return (max(loads) / average) if average else 0.0
