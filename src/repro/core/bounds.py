"""Lower bounds on reducer count, replication and communication cost.

The heuristics in :mod:`repro.core.a2a` and :mod:`repro.core.x2y` are judged
against these bounds throughout the tests and experiments.  Each bound is a
direct consequence of the mapping-schema constraints:

* volume: every input must be shipped at least once and no reducer holds
  more than ``q``;
* pair covering: a reducer holding ``t`` inputs covers at most ``C(t, 2)``
  pairs (A2A) or ``a * b`` cross pairs (X2Y);
* residual capacity: a reducer containing input ``i`` has only ``q - w_i``
  room for partners, so input ``i`` needs many copies to meet everyone.
"""

from __future__ import annotations

from math import ceil

from repro.core.instance import A2AInstance, X2YInstance


def a2a_volume_bound(instance: A2AInstance) -> int:
    """``ceil(total size / q)``: every input is assigned at least once."""
    return ceil(instance.total_size / instance.q)


def a2a_pair_cover_bound(instance: A2AInstance) -> int:
    """Pair-covering bound: ``C(m,2) / C(t,2)`` with ``t`` the max inputs per reducer.

    ``t`` is computed from the smallest sizes, so the per-reducer pair count
    ``C(t, 2)`` is an upper bound over all feasible reducers.  Returns 1 for
    single-input instances (one reducer still needed to emit the input).
    """
    m = instance.m
    if m < 2:
        return 1 if m else 0
    t = instance.max_inputs_per_reducer()
    if t < 2:
        # No reducer can hold two inputs; instance is infeasible, bound is
        # infinite in spirit — report a huge sentinel so callers notice.
        return instance.num_pairs + 1
    per_reducer = t * (t - 1) // 2
    return ceil(instance.num_pairs / per_reducer)


def a2a_replication_lower_bounds(instance: A2AInstance) -> tuple[int, ...]:
    """Per-input minimum replication.

    Input ``i`` must share reducers with all other inputs, whose total size
    is ``W - w_i``; each reducer holding ``i`` has residual capacity
    ``q - w_i``.  Hence ``r_i >= ceil((W - w_i) / (q - w_i))`` (and at least
    1 always).  For ``m == 1`` the bound is simply 1.
    """
    total = instance.total_size
    bounds = []
    for w in instance.sizes:
        others = total - w
        residual = instance.q - w
        if others == 0:
            bounds.append(1)
        elif residual <= 0:
            # Cannot host any partner: infeasible instance; sentinel bound.
            bounds.append(others + 1)
        else:
            bounds.append(max(1, ceil(others / residual)))
    return tuple(bounds)


def a2a_communication_lower_bound(instance: A2AInstance) -> int:
    """Communication lower bound: ``sum_i w_i * r_i`` with per-input bounds."""
    reps = a2a_replication_lower_bounds(instance)
    return sum(w * r for w, r in zip(instance.sizes, reps))


def a2a_reducer_lower_bound(instance: A2AInstance) -> int:
    """Strongest implemented lower bound on the number of reducers.

    Takes the max of the volume bound, the pair-covering bound, and the
    communication bound divided by ``q`` (no reducer absorbs more than ``q``
    of the mandatory communication).
    """
    comm = a2a_communication_lower_bound(instance)
    return max(
        a2a_volume_bound(instance),
        a2a_pair_cover_bound(instance),
        ceil(comm / instance.q),
    )


def a2a_equal_sized_reducer_bound(m: int, k: int) -> int:
    """Specialized bound for equal-sized inputs.

    With ``k = q // w`` inputs fitting per reducer, each reducer covers at
    most ``C(k, 2)`` pairs, so ``z >= ceil(C(m,2) / C(k,2))``.
    """
    if m < 2:
        return 1 if m else 0
    if k < 2:
        return m * (m - 1) // 2 + 1
    return ceil((m * (m - 1)) / (k * (k - 1)))


def x2y_volume_bound(instance: X2YInstance) -> int:
    """``ceil(total size / q)`` for X2Y."""
    return ceil(instance.total_size / instance.q)


def x2y_pair_cover_bound(instance: X2YInstance) -> int:
    """Cross-pair covering bound.

    A reducer with ``a`` X-inputs and ``b`` Y-inputs covers ``a * b`` pairs.
    The maximum feasible ``a * b`` is found by taking the ``a`` smallest X
    sizes and filling the remaining capacity with the smallest Y sizes,
    maximized over ``a``.
    """
    xs = sorted(instance.x_sizes)
    ys = sorted(instance.y_sizes)
    q = instance.q

    # Prefix sums of the smallest sizes on each side.
    x_prefix = [0]
    for w in xs:
        x_prefix.append(x_prefix[-1] + w)
    y_prefix = [0]
    for w in ys:
        y_prefix.append(y_prefix[-1] + w)

    def max_fit(prefix: list[int], budget: int) -> int:
        """Largest count whose smallest-prefix sum fits in *budget*."""
        lo, hi = 0, len(prefix) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if prefix[mid] <= budget:
                lo = mid
            else:
                hi = mid - 1
        return lo

    best = 0
    for a in range(1, len(xs) + 1):
        if x_prefix[a] > q:
            break
        b = max_fit(y_prefix, q - x_prefix[a])
        best = max(best, a * b)
    if best == 0:
        return instance.num_pairs + 1  # infeasible sentinel
    return ceil(instance.num_pairs / best)


def x2y_replication_lower_bounds(
    instance: X2YInstance,
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Per-input replication bounds for both sides.

    An X input of size ``w`` must meet all of Y (total ``W_Y``) and each of
    its reducers has residual ``q - w`` for Y inputs, so
    ``r >= ceil(W_Y / (q - w))``; symmetrically for Y inputs.
    """
    total_y = sum(instance.y_sizes)
    total_x = sum(instance.x_sizes)
    q = instance.q

    def side(sizes: tuple[int, ...], other_total: int) -> tuple[int, ...]:
        bounds = []
        for w in sizes:
            residual = q - w
            if residual <= 0:
                bounds.append(other_total + 1)
            else:
                bounds.append(max(1, ceil(other_total / residual)))
        return tuple(bounds)

    return side(instance.x_sizes, total_y), side(instance.y_sizes, total_x)


def x2y_communication_lower_bound(instance: X2YInstance) -> int:
    """``sum w_i r_i`` over both sides with the replication bounds above."""
    x_reps, y_reps = x2y_replication_lower_bounds(instance)
    return sum(w * r for w, r in zip(instance.x_sizes, x_reps)) + sum(
        w * r for w, r in zip(instance.y_sizes, y_reps)
    )


def x2y_reducer_lower_bound(instance: X2YInstance) -> int:
    """Strongest implemented lower bound on reducer count for X2Y."""
    comm = x2y_communication_lower_bound(instance)
    return max(
        x2y_volume_bound(instance),
        x2y_pair_cover_bound(instance),
        ceil(comm / instance.q),
    )
