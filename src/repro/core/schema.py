"""Mapping schemas: the assignments of inputs to reducers.

A schema is the paper's central object — for A2A a set of reducers each
holding a subset of input indices, for X2Y a set of reducers each holding a
subset of X indices and a subset of Y indices.  Schemas are immutable; all
cost metrics are derived from them (see :mod:`repro.core.costs`) and all
validity checking lives in :mod:`repro.core.verify`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.core.instance import A2AInstance, X2YInstance
from repro.core.verify import VerificationReport, require_valid, verify_a2a, verify_x2y


@dataclass(frozen=True)
class A2ASchema:
    """An assignment of A2A inputs to reducers.

    ``reducers[r]`` is the tuple of input indices assigned to reducer ``r``.
    The schema also records the name of the algorithm that produced it so
    experiment output is self-describing.
    """

    instance: A2AInstance
    reducers: tuple[tuple[int, ...], ...]
    algorithm: str = "unspecified"

    @classmethod
    def from_lists(
        cls,
        instance: A2AInstance,
        reducers,
        algorithm: str = "unspecified",
    ) -> "A2ASchema":
        """Build a schema from any iterable of iterables of input indices.

        Indices within each reducer are deduplicated and sorted so schemas
        compare structurally.
        """
        normalized = tuple(tuple(sorted(set(r))) for r in reducers)
        return cls(instance=instance, reducers=normalized, algorithm=algorithm)

    @property
    def num_reducers(self) -> int:
        """Number of reducers used — the paper's primary minimization target."""
        return len(self.reducers)

    @cached_property
    def loads(self) -> tuple[int, ...]:
        """Total assigned size per reducer."""
        sizes = self.instance.sizes
        return tuple(sum(sizes[i] for i in reducer) for reducer in self.reducers)

    @cached_property
    def replication(self) -> tuple[int, ...]:
        """Number of reducers each input is assigned to."""
        counts = [0] * self.instance.m
        for reducer in self.reducers:
            for i in reducer:
                counts[i] += 1
        return tuple(counts)

    @property
    def communication_cost(self) -> int:
        """Total size shipped from mappers to reducers: sum of reducer loads.

        This is the paper's communication cost — each copy of an input sent
        to a reducer costs its size.
        """
        return sum(self.loads)

    @property
    def max_load(self) -> int:
        """Largest reducer load; inverse proxy for parallelism."""
        return max(self.loads, default=0)

    def reducers_of(self, input_index: int) -> tuple[int, ...]:
        """Indices of the reducers that input *input_index* is assigned to."""
        return tuple(
            r for r, members in enumerate(self.reducers) if input_index in members
        )

    def verify(self) -> VerificationReport:
        """Check capacity and all-pairs coverage; never raises."""
        return verify_a2a(self)

    def require_valid(self) -> "A2ASchema":
        """Raise :class:`repro.exceptions.InvalidSchemaError` if invalid."""
        require_valid(self.verify(), context=f"A2A schema from {self.algorithm}")
        return self


@dataclass(frozen=True)
class X2YSchema:
    """An assignment of X and Y inputs to reducers.

    ``reducers[r]`` is a pair ``(x_indices, y_indices)``: which X inputs and
    which Y inputs reducer ``r`` receives.
    """

    instance: X2YInstance
    reducers: tuple[tuple[tuple[int, ...], tuple[int, ...]], ...]
    algorithm: str = "unspecified"

    @classmethod
    def from_lists(
        cls,
        instance: X2YInstance,
        reducers,
        algorithm: str = "unspecified",
    ) -> "X2YSchema":
        """Build a schema from iterables of ``(x_indices, y_indices)`` pairs."""
        normalized = tuple(
            (tuple(sorted(set(x_part))), tuple(sorted(set(y_part))))
            for x_part, y_part in reducers
        )
        return cls(instance=instance, reducers=normalized, algorithm=algorithm)

    @property
    def num_reducers(self) -> int:
        """Number of reducers used."""
        return len(self.reducers)

    @cached_property
    def loads(self) -> tuple[int, ...]:
        """Total assigned size per reducer (X side plus Y side)."""
        xs, ys = self.instance.x_sizes, self.instance.y_sizes
        return tuple(
            sum(xs[i] for i in x_part) + sum(ys[j] for j in y_part)
            for x_part, y_part in self.reducers
        )

    @cached_property
    def replication(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Replication counts as ``(x_counts, y_counts)``."""
        x_counts = [0] * self.instance.m
        y_counts = [0] * self.instance.n
        for x_part, y_part in self.reducers:
            for i in x_part:
                x_counts[i] += 1
            for j in y_part:
                y_counts[j] += 1
        return tuple(x_counts), tuple(y_counts)

    @property
    def communication_cost(self) -> int:
        """Total size shipped from mappers to reducers."""
        return sum(self.loads)

    @property
    def max_load(self) -> int:
        """Largest reducer load."""
        return max(self.loads, default=0)

    def verify(self) -> VerificationReport:
        """Check capacity and all-cross-pairs coverage; never raises."""
        return verify_x2y(self)

    def require_valid(self) -> "X2YSchema":
        """Raise :class:`repro.exceptions.InvalidSchemaError` if invalid."""
        require_valid(self.verify(), context=f"X2Y schema from {self.algorithm}")
        return self
