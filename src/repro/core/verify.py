"""Structural verification of mapping schemas.

A schema is valid iff (i) no reducer's total assigned size exceeds ``q`` and
(ii) every required pair meets at some reducer — the two conditions of the
paper's mapping-schema definition.  Verification returns a structured report
rather than a bare bool so tests and callers can see *which* constraint broke.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.exceptions import InvalidSchemaError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from repro.core.schema import A2ASchema, X2YSchema


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of verifying a mapping schema against its instance.

    Attributes:
        valid: ``True`` iff both conditions hold.
        capacity_violations: ``(reducer_index, load)`` for each overloaded
            reducer.
        uncovered_pairs: required pairs that meet at no reducer.  For A2A a
            pair is ``(i, j)`` with ``i < j``; for X2Y it is
            ``(x_index, y_index)``.
        duplicate_assignments: ``(reducer_index, input_key)`` where the same
            input appears twice in one reducer (wasted capacity; flagged but
            only treated as invalid if it causes an overflow).
        num_reducers: size of the schema checked.
    """

    valid: bool
    capacity_violations: tuple[tuple[int, int], ...] = ()
    uncovered_pairs: tuple[tuple[int, int], ...] = ()
    duplicate_assignments: tuple[tuple[int, object], ...] = ()
    num_reducers: int = 0

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.valid:
            return f"valid schema with {self.num_reducers} reducers"
        return (
            f"INVALID schema ({self.num_reducers} reducers): "
            f"{len(self.capacity_violations)} capacity violations, "
            f"{len(self.uncovered_pairs)} uncovered pairs"
        )


#: Cap on how many violations a report enumerates; verification is used in
#: hot loops by tests and benches, and the first few violations carry all
#: the diagnostic value.
_MAX_REPORTED = 50


def verify_a2a(schema: "A2ASchema") -> VerificationReport:
    """Verify an A2A schema: capacities and all-pairs coverage."""
    instance = schema.instance
    sizes = instance.sizes
    capacity_violations: list[tuple[int, int]] = []
    duplicates: list[tuple[int, object]] = []

    covered: set[int] = set()
    m = instance.m
    for r_index, reducer in enumerate(schema.reducers):
        seen_here: set[int] = set()
        load = 0
        for i in reducer:
            if i in seen_here:
                duplicates.append((r_index, i))
                continue
            seen_here.add(i)
            load += sizes[i]
        if load > instance.q and len(capacity_violations) < _MAX_REPORTED:
            capacity_violations.append((r_index, load))
        members = sorted(seen_here)
        for a_pos, i in enumerate(members):
            base = i * m
            for j in members[a_pos + 1:]:
                covered.add(base + j)

    uncovered: list[tuple[int, int]] = []
    for i, j in instance.pairs():
        if i * m + j not in covered:
            uncovered.append((i, j))
            if len(uncovered) >= _MAX_REPORTED:
                break

    valid = not capacity_violations and not uncovered
    return VerificationReport(
        valid=valid,
        capacity_violations=tuple(capacity_violations),
        uncovered_pairs=tuple(uncovered),
        duplicate_assignments=tuple(duplicates[:_MAX_REPORTED]),
        num_reducers=schema.num_reducers,
    )


def verify_x2y(schema: "X2YSchema") -> VerificationReport:
    """Verify an X2Y schema: capacities and all-cross-pairs coverage."""
    instance = schema.instance
    capacity_violations: list[tuple[int, int]] = []
    duplicates: list[tuple[int, object]] = []

    n = instance.n
    covered: set[int] = set()
    for r_index, (x_part, y_part) in enumerate(schema.reducers):
        load = 0
        x_seen: set[int] = set()
        y_seen: set[int] = set()
        for i in x_part:
            if i in x_seen:
                duplicates.append((r_index, ("x", i)))
                continue
            x_seen.add(i)
            load += instance.x_sizes[i]
        for j in y_part:
            if j in y_seen:
                duplicates.append((r_index, ("y", j)))
                continue
            y_seen.add(j)
            load += instance.y_sizes[j]
        if load > instance.q and len(capacity_violations) < _MAX_REPORTED:
            capacity_violations.append((r_index, load))
        for i in x_seen:
            base = i * n
            for j in y_seen:
                covered.add(base + j)

    uncovered: list[tuple[int, int]] = []
    for i, j in instance.pairs():
        if i * n + j not in covered:
            uncovered.append((i, j))
            if len(uncovered) >= _MAX_REPORTED:
                break

    valid = not capacity_violations and not uncovered
    return VerificationReport(
        valid=valid,
        capacity_violations=tuple(capacity_violations),
        uncovered_pairs=tuple(uncovered),
        duplicate_assignments=tuple(duplicates[:_MAX_REPORTED]),
        num_reducers=schema.num_reducers,
    )


def require_valid(report: VerificationReport, context: str = "schema") -> None:
    """Raise :class:`InvalidSchemaError` unless *report* says valid."""
    if not report.valid:
        raise InvalidSchemaError(f"{context}: {report.summary()}", report=report)
