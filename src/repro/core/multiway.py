"""Multiway generalization: outputs depending on r > 2 inputs.

The paper's model fixes "each output depends on exactly two inputs"; its
natural generalization (discussed as an extension in the companion
technical report) requires every *r-subset* of inputs to meet at some
reducer — e.g. three-way similarity, triangle enumeration over adjacency
lists, or r-way joins.  The bin-pairing scheme generalizes directly: pack
inputs into bins of capacity ``q // r`` and give every r-combination of
bins a reducer (any r such bins co-fit).

This module is self-contained: instance, schema, verification, lower
bounds and the generalized scheme, mirroring the pairwise machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from math import ceil, comb
from typing import Iterator

from repro.binpack.ffd import first_fit_decreasing
from repro.exceptions import (
    InfeasibleInstanceError,
    InvalidInstanceError,
    InvalidSchemaError,
)
from repro.utils.validation import check_capacity, check_positive_int, check_sizes


@dataclass(frozen=True)
class MultiwayInstance:
    """m inputs, capacity q, and every r-subset of inputs must meet."""

    sizes: tuple[int, ...]
    q: int
    r: int

    def __init__(self, sizes, q, r):
        object.__setattr__(self, "sizes", check_sizes(sizes))
        object.__setattr__(self, "q", check_capacity(q, self.sizes))
        object.__setattr__(self, "r", check_positive_int(r, "r"))
        if self.r < 2:
            raise InvalidInstanceError(f"r must be >= 2, got {r}")

    @property
    def m(self) -> int:
        """Number of inputs."""
        return len(self.sizes)

    @property
    def total_size(self) -> int:
        """Sum of all input sizes."""
        return sum(self.sizes)

    @property
    def num_groups(self) -> int:
        """Number of required r-subsets: C(m, r)."""
        return comb(self.m, self.r)

    def groups(self) -> Iterator[tuple[int, ...]]:
        """Iterate all required r-subsets (sorted index tuples)."""
        return combinations(range(self.m), self.r)

    def max_inputs_per_reducer(self) -> int:
        """Largest number of inputs one reducer can hold (smallest-first)."""
        budget = self.q
        count = 0
        for size in sorted(self.sizes):
            if size > budget:
                break
            budget -= size
            count += 1
        return count

    def is_feasible(self) -> bool:
        """Any schema exists iff the r largest inputs co-fit."""
        if self.m < self.r:
            return True  # no r-subset exists; a single reducer suffices
        largest = sorted(self.sizes, reverse=True)[: self.r]
        return sum(largest) <= self.q

    def check_feasible(self) -> None:
        """Raise :class:`InfeasibleInstanceError` if no schema can exist."""
        if not self.is_feasible():
            raise InfeasibleInstanceError(
                f"the {self.r} largest inputs sum beyond q = {self.q}; "
                "this group can never meet at any reducer"
            )


@dataclass(frozen=True)
class MultiwaySchema:
    """An assignment of multiway inputs to reducers."""

    instance: MultiwayInstance
    reducers: tuple[tuple[int, ...], ...]
    algorithm: str = "unspecified"

    @classmethod
    def from_lists(cls, instance, reducers, algorithm="unspecified"):
        """Normalize reducers (dedupe + sort member indices)."""
        normalized = tuple(tuple(sorted(set(r))) for r in reducers)
        return cls(instance=instance, reducers=normalized, algorithm=algorithm)

    @property
    def num_reducers(self) -> int:
        """Number of reducers used."""
        return len(self.reducers)

    @property
    def loads(self) -> tuple[int, ...]:
        """Total assigned size per reducer."""
        sizes = self.instance.sizes
        return tuple(sum(sizes[i] for i in reducer) for reducer in self.reducers)

    @property
    def communication_cost(self) -> int:
        """Total size shipped map -> reduce."""
        return sum(self.loads)

    def verify(self) -> tuple[bool, str]:
        """Check capacity and r-subset coverage; returns (ok, message).

        Exhaustive over C(m, r) subsets — intended for the moderate sizes
        the multiway extension targets.
        """
        instance = self.instance
        for index, load in enumerate(self.loads):
            if load > instance.q:
                return False, f"reducer {index} load {load} > q {instance.q}"
        covered: set[tuple[int, ...]] = set()
        for reducer in self.reducers:
            if len(reducer) >= instance.r:
                covered.update(combinations(reducer, instance.r))
        if instance.m < instance.r:
            missing = 0 if self.reducers else 1
            if missing:
                return False, "no reducer emits the undersized input set"
            return True, "valid"
        for group in instance.groups():
            if group not in covered:
                return False, f"group {group} meets at no reducer"
        return True, "valid"

    def require_valid(self) -> "MultiwaySchema":
        """Raise :class:`InvalidSchemaError` unless the schema verifies."""
        ok, message = self.verify()
        if not ok:
            raise InvalidSchemaError(f"multiway schema: {message}")
        return self


def multiway_volume_bound(instance: MultiwayInstance) -> int:
    """``ceil(total / q)``: every input ships at least once."""
    return ceil(instance.total_size / instance.q)


def multiway_cover_bound(instance: MultiwayInstance) -> int:
    """Group-covering bound: ``C(m,r) / C(t,r)`` with t = max inputs/reducer."""
    if instance.m < instance.r:
        return 1
    t = instance.max_inputs_per_reducer()
    if t < instance.r:
        return instance.num_groups + 1  # infeasible sentinel
    return ceil(instance.num_groups / comb(t, instance.r))


def multiway_reducer_lower_bound(instance: MultiwayInstance) -> int:
    """Strongest implemented lower bound for the multiway problem."""
    return max(multiway_volume_bound(instance), multiway_cover_bound(instance))


def multiway_bin_combining(
    instance: MultiwayInstance,
    packer=first_fit_decreasing,
) -> MultiwaySchema:
    """The generalized bin scheme: ``q // r`` bins, one reducer per r-combination.

    Any r bins of capacity ``q // r`` co-fit in one reducer; every r-subset
    of inputs meets at the reducer of its (multiset of) bins — subsets
    spanning fewer than r distinct bins are covered because combinations of
    the *other* bins complete the reducer, so we take combinations of all
    bins, plus the degenerate single-reducer cases.

    Requires every size <= ``q // r``; raises
    :class:`InvalidInstanceError` otherwise (the multiway analogue of big
    inputs is out of scope, matching the TR's treatment).
    """
    instance.check_feasible()
    share = instance.q // instance.r
    oversized = [i for i, w in enumerate(instance.sizes) if w > share]
    if oversized:
        raise InvalidInstanceError(
            f"{len(oversized)} input(s) exceed q//r = {share}; the multiway "
            "bin scheme requires all sizes within one bin share"
        )
    if instance.m <= instance.r:
        return MultiwaySchema.from_lists(
            instance, [list(range(instance.m))], algorithm="bin_combining"
        )

    packing = packer(instance.sizes, share)
    bins = [list(b) for b in packing.bins]
    if len(bins) <= instance.r:
        reducers = [[i for bin_items in bins for i in bin_items]]
    else:
        reducers = [
            [i for index in combo for i in bins[index]]
            for combo in combinations(range(len(bins)), instance.r)
        ]
    return MultiwaySchema.from_lists(instance, reducers, algorithm="bin_combining")
