"""Core model: instances, schemas, verification, costs, bounds, algorithms.

This package is the paper's primary contribution: the two mapping-schema
problems (A2A and X2Y), the validity conditions, the cost/tradeoff metrics,
lower bounds, and the assignment algorithms.
"""

from repro.core.instance import A2AInstance, X2YInstance
from repro.core.schema import A2ASchema, X2YSchema
from repro.core.verify import VerificationReport, verify_a2a, verify_x2y
from repro.core.costs import CostSummary, parallelism_degree, skew, summarize
from repro.core.selector import A2A_METHODS, X2Y_METHODS, solve_a2a, solve_x2y
from repro.core import a2a, bounds, x2y

__all__ = [
    "A2AInstance",
    "X2YInstance",
    "A2ASchema",
    "X2YSchema",
    "VerificationReport",
    "verify_a2a",
    "verify_x2y",
    "CostSummary",
    "summarize",
    "parallelism_degree",
    "skew",
    "solve_a2a",
    "solve_x2y",
    "A2A_METHODS",
    "X2Y_METHODS",
    "a2a",
    "x2y",
    "bounds",
]
