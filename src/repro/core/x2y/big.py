"""General X2Y scheme with dedicated big-input handling.

Like the A2A big/small scheme, inputs larger than ``q // 2`` get special
treatment: a big X input cannot share a half-capacity bin, so it is
replicated against bins of Y packed into its *residual* capacity
``q - w``.  The four pair classes are covered separately:

1. big-X x big-Y: one dedicated reducer per cross pair (in a *feasible*
   instance this class is empty — two inputs above q/2 that must meet
   would overflow q — but the code handles it so near-boundary integer
   cases stay safe);
2. big-X x small-Y: per big X, pack the small Ys into ``q - w`` bins;
3. small-X x big-Y: symmetric;
4. small-X x small-Y: the half-split grid on the smalls.

When neither side has big inputs this reduces exactly to the half-split
grid.  Compared to :func:`repro.core.x2y.grid.best_split_grid` — which is
also fully general — this scheme can win when one side's bigs would force
the global split to starve the other side; ``solve_x2y(..., "auto")``
simply builds both and keeps the cheaper.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.binpack.ffd import first_fit_decreasing
from repro.binpack.packing import PackingResult
from repro.core.instance import X2YInstance
from repro.core.schema import X2YSchema

Packer = Callable[[Sequence[int], int], PackingResult]


def split_big_small_x2y(
    instance: X2YInstance,
) -> tuple[list[int], list[int], list[int], list[int]]:
    """Partition both sides into big (> q//2) and small indices.

    Returns ``(big_x, small_x, big_y, small_y)``.
    """
    half = instance.q // 2
    big_x = [i for i, w in enumerate(instance.x_sizes) if w > half]
    small_x = [i for i, w in enumerate(instance.x_sizes) if w <= half]
    big_y = [j for j, w in enumerate(instance.y_sizes) if w > half]
    small_y = [j for j, w in enumerate(instance.y_sizes) if w <= half]
    return big_x, small_x, big_y, small_y


def big_small_x2y(
    instance: X2YInstance,
    packer: Packer = first_fit_decreasing,
) -> X2YSchema:
    """Build a valid schema for any feasible X2Y instance.

    Raises :class:`repro.exceptions.InfeasibleInstanceError` if the largest
    X and largest Y inputs cannot co-fit.
    """
    instance.check_feasible()
    xs, ys = instance.x_sizes, instance.y_sizes
    q = instance.q
    big_x, small_x, big_y, small_y = split_big_small_x2y(instance)
    reducers: list[tuple[tuple[int, ...], tuple[int, ...]]] = []

    # 1. big-X x big-Y cross pairs, one reducer each.
    for i in big_x:
        for j in big_y:
            reducers.append(((i,), (j,)))

    # 2. each big X meets all small Ys via residual-capacity bins.
    for i in big_x:
        if not small_y:
            break
        packing = packer([ys[j] for j in small_y], q - xs[i])
        for bin_items in packing.bins:
            reducers.append(((i,), tuple(small_y[j] for j in bin_items)))

    # 3. each big Y meets all small Xs, symmetrically.
    for j in big_y:
        if not small_x:
            break
        packing = packer([xs[i] for i in small_x], q - ys[j])
        for bin_items in packing.bins:
            reducers.append((tuple(small_x[i] for i in bin_items), (j,)))

    # 4. small-X x small-Y via the half-split grid.
    if small_x and small_y:
        half = q // 2
        x_packing = packer([xs[i] for i in small_x], half)
        y_packing = packer([ys[j] for j in small_y], q - half)
        for x_bin in x_packing.bins:
            mapped_x = tuple(small_x[i] for i in x_bin)
            for y_bin in y_packing.bins:
                reducers.append((mapped_x, tuple(small_y[j] for j in y_bin)))

    return X2YSchema.from_lists(instance, reducers, algorithm="big_small_x2y")
