"""Exact minimum-reducer solver for small X2Y instances.

Mirrors :mod:`repro.core.a2a.exact`: iterative deepening on the reducer
budget with depth-first covering of cross pairs, used as ground truth in
the E9 optimality-gap experiment.  The X2Y problem is NP-complete, so this
is only tractable for roughly ``m * n <= 30`` pairs.
"""

from __future__ import annotations

from repro.core.bounds import x2y_reducer_lower_bound
from repro.core.instance import X2YInstance
from repro.core.schema import X2YSchema
from repro.exceptions import SolverLimitError


def solve_min_reducers_x2y(
    instance: X2YInstance,
    *,
    max_nodes: int = 500_000,
    max_reducers: int | None = None,
) -> X2YSchema:
    """Return a schema with the provably minimum number of reducers.

    Raises :class:`SolverLimitError` on node-budget exhaustion and
    :class:`repro.exceptions.InfeasibleInstanceError` for infeasible
    instances.
    """
    instance.check_feasible()
    xs, ys = instance.x_sizes, instance.y_sizes
    q = instance.q
    all_pairs = sorted(
        instance.pairs(), key=lambda p: xs[p[0]] + ys[p[1]], reverse=True
    )
    lower = x2y_reducer_lower_bound(instance)
    ceiling = max_reducers if max_reducers is not None else len(all_pairs)
    nodes = 0

    def search(
        pair_pos: int,
        x_members: list[set[int]],
        y_members: list[set[int]],
        loads: list[int],
        budget: int,
    ) -> list[tuple[set[int], set[int]]] | None:
        nonlocal nodes
        nodes += 1
        if nodes > max_nodes:
            raise SolverLimitError(
                f"X2Y exact solver exceeded {max_nodes} nodes at "
                f"m={instance.m}, n={instance.n}"
            )
        while pair_pos < len(all_pairs):
            i, j = all_pairs[pair_pos]
            if any(i in xm and j in ym for xm, ym in zip(x_members, y_members)):
                pair_pos += 1
            else:
                break
        if pair_pos == len(all_pairs):
            return [(set(xm), set(ym)) for xm, ym in zip(x_members, y_members)]
        i, j = all_pairs[pair_pos]

        seen_signatures: set[tuple[int, frozenset[int], frozenset[int]]] = set()
        for r in range(len(loads)):
            has_i, has_j = i in x_members[r], j in y_members[r]
            extra = (0 if has_i else xs[i]) + (0 if has_j else ys[j])
            if loads[r] + extra > q:
                continue
            signature = (loads[r], frozenset(x_members[r]), frozenset(y_members[r]))
            if signature in seen_signatures:
                continue
            seen_signatures.add(signature)
            if not has_i:
                x_members[r].add(i)
            if not has_j:
                y_members[r].add(j)
            loads[r] += extra
            result = search(pair_pos + 1, x_members, y_members, loads, budget)
            loads[r] -= extra
            if not has_i:
                x_members[r].discard(i)
            if not has_j:
                y_members[r].discard(j)
            if result is not None:
                return result

        if budget > 0:
            x_members.append({i})
            y_members.append({j})
            loads.append(xs[i] + ys[j])
            result = search(pair_pos + 1, x_members, y_members, loads, budget - 1)
            x_members.pop()
            y_members.pop()
            loads.pop()
            if result is not None:
                return result
        return None

    for target in range(max(1, lower), ceiling + 1):
        solution = search(0, [], [], [], target)
        if solution is not None:
            return X2YSchema.from_lists(
                instance,
                [(sorted(xm), sorted(ym)) for xm, ym in solution],
                algorithm="exact",
            )
    raise SolverLimitError(
        f"no X2Y schema found within the reducer ceiling {ceiling}"
    )
