"""X2Y scheme for equal sizes on each side.

With every X input of size ``w`` and every Y input of size ``w'``, a
reducer can host ``a`` X inputs and ``b`` Y inputs whenever
``a*w + b*w' <= q``.  The scheme picks the ``(a, b)`` maximizing the pairs
covered per reducer (``a * b``), groups each side accordingly, and assigns
every (X-group, Y-group) pair to one reducer — ``ceil(m/a) * ceil(n/b)``
reducers, matching the cross-pair lower bound up to rounding.
"""

from __future__ import annotations

from repro.core.a2a.equal import group_inputs
from repro.core.instance import X2YInstance
from repro.core.schema import X2YSchema
from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError


def _require_equal_sides(instance: X2YInstance) -> tuple[int, int]:
    """Return (w, w') or raise if either side has mixed sizes."""
    x_unique = set(instance.x_sizes)
    y_unique = set(instance.y_sizes)
    if len(x_unique) != 1 or len(y_unique) != 1:
        raise InvalidInstanceError(
            "equal-sized X2Y scheme requires uniform sizes on each side; "
            f"got {len(x_unique)} distinct X sizes and {len(y_unique)} distinct Y sizes"
        )
    return instance.x_sizes[0], instance.y_sizes[0]


def best_group_shape(w: int, w_prime: int, q: int, m: int, n: int) -> tuple[int, int]:
    """The per-reducer group shape ``(a, b)`` maximizing covered pairs.

    Sweeps ``a`` over its feasible range and fills the rest with Y inputs;
    both counts are clamped to the population sizes so small instances do
    not over-allocate.  Raises :class:`InfeasibleInstanceError` when not
    even one input of each side co-fits.
    """
    if w + w_prime > q:
        raise InfeasibleInstanceError(
            f"one X input ({w}) plus one Y input ({w_prime}) exceed q = {q}"
        )
    best_a, best_b = 1, 1
    max_a = min(m, (q - w_prime) // w)
    for a in range(1, max_a + 1):
        b = min(n, (q - a * w) // w_prime)
        if b >= 1 and a * b > best_a * best_b:
            best_a, best_b = a, b
    return best_a, best_b


def equal_sized_grid(instance: X2YInstance) -> X2YSchema:
    """Build the grouped grid schema for an equal-sized X2Y instance."""
    w, w_prime = _require_equal_sides(instance)
    a, b = best_group_shape(w, w_prime, instance.q, instance.m, instance.n)
    x_groups = group_inputs(instance.m, a)
    y_groups = group_inputs(instance.n, b)
    reducers = [(xg, yg) for xg in x_groups for yg in y_groups]
    return X2YSchema.from_lists(
        instance, reducers, algorithm=f"equal_grid[a={a},b={b}]"
    )


def equal_sized_reducer_count(m: int, n: int, a: int, b: int) -> int:
    """Closed-form reducer count of :func:`equal_sized_grid` for shape (a, b)."""
    if a <= 0 or b <= 0:
        raise InvalidInstanceError(f"group shape must be positive, got ({a}, {b})")
    tx = -(-m // a)
    ty = -(-n // b)
    return tx * ty
