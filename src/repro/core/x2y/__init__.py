"""X2Y mapping-schema algorithms.

* :func:`half_split_grid` / :func:`grid_with_split` / :func:`best_split_grid`
  — the bin-packing grid schemes.
* :func:`equal_sized_grid` — grouped grid for uniform sizes per side.
* :func:`big_small_x2y` — the general scheme with big-input handling.
* :func:`greedy_cover_x2y` — unstructured greedy baseline.
* :func:`solve_min_reducers_x2y` — exact branch-and-bound for small instances.
"""

from repro.core.x2y.grid import best_split_grid, grid_with_split, half_split_grid
from repro.core.x2y.equal import (
    best_group_shape,
    equal_sized_grid,
    equal_sized_reducer_count,
)
from repro.core.x2y.big import big_small_x2y, split_big_small_x2y
from repro.core.x2y.greedy import greedy_cover_x2y
from repro.core.x2y.exact import solve_min_reducers_x2y

__all__ = [
    "best_split_grid",
    "grid_with_split",
    "half_split_grid",
    "best_group_shape",
    "equal_sized_grid",
    "equal_sized_reducer_count",
    "big_small_x2y",
    "split_big_small_x2y",
    "greedy_cover_x2y",
    "solve_min_reducers_x2y",
]
