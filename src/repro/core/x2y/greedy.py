"""Greedy cross-pair cover baseline for X2Y.

The unstructured comparator for the grid schemes: seed each new reducer
with an uncovered cross pair, then grow it with whichever input (from
either side) covers the most new cross pairs per size unit.
"""

from __future__ import annotations

from repro.core.instance import X2YInstance
from repro.core.schema import X2YSchema


def greedy_cover_x2y(
    instance: X2YInstance, *, max_reducers: int | None = None
) -> X2YSchema:
    """Cover all cross pairs greedily; see module docstring.

    Raises :class:`repro.exceptions.InfeasibleInstanceError` for infeasible
    instances.  Terminates because every iteration covers its seed pair.
    """
    instance.check_feasible()
    xs, ys = instance.x_sizes, instance.y_sizes
    q = instance.q
    uncovered: set[tuple[int, int]] = set(instance.pairs())
    reducers: list[tuple[list[int], list[int]]] = []

    while uncovered:
        if max_reducers is not None and len(reducers) >= max_reducers:
            break
        seed_i, seed_j = next(iter(uncovered))
        x_members = {seed_i}
        y_members = {seed_j}
        load = xs[seed_i] + ys[seed_j]

        grew = True
        while grew:
            grew = False
            best_gain = 0.0
            best_choice: tuple[str, int] | None = None
            for i in range(instance.m):
                if i in x_members or load + xs[i] > q:
                    continue
                new_pairs = sum(1 for j in y_members if (i, j) in uncovered)
                if new_pairs and new_pairs / xs[i] > best_gain:
                    best_gain = new_pairs / xs[i]
                    best_choice = ("x", i)
            for j in range(instance.n):
                if j in y_members or load + ys[j] > q:
                    continue
                new_pairs = sum(1 for i in x_members if (i, j) in uncovered)
                if new_pairs and new_pairs / ys[j] > best_gain:
                    best_gain = new_pairs / ys[j]
                    best_choice = ("y", j)
            if best_choice is not None:
                side, index = best_choice
                if side == "x":
                    x_members.add(index)
                    load += xs[index]
                else:
                    y_members.add(index)
                    load += ys[index]
                grew = True

        reducers.append((sorted(x_members), sorted(y_members)))
        for i in x_members:
            for j in y_members:
                uncovered.discard((i, j))

    return X2YSchema.from_lists(instance, reducers, algorithm="greedy_cover_x2y")
