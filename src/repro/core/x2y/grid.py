"""Grid schemes for X2Y: bin-pack each side, pair bins across sides.

Split the reducer capacity into an X share ``t`` and a Y share ``q - t``,
pack the X inputs into bins of capacity ``t`` and the Y inputs into bins of
capacity ``q - t``, and create one reducer per (X-bin, Y-bin) pair.  Every
cross pair meets at the reducer of its two bins, and each reducer's load is
at most ``t + (q - t) = q``.  With ``b_x`` and ``b_y`` bins the scheme uses
``b_x * b_y`` reducers; :func:`best_split_grid` searches the split ``t``
that minimizes the product, which makes the scheme fully general (any
feasible instance admits a split with ``t >= max(x)`` and
``q - t >= max(y)``).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.binpack.ffd import first_fit_decreasing
from repro.binpack.packing import PackingResult
from repro.core.instance import X2YInstance
from repro.core.schema import X2YSchema
from repro.exceptions import InvalidInstanceError

Packer = Callable[[Sequence[int], int], PackingResult]


def grid_with_split(
    instance: X2YInstance,
    x_capacity: int,
    packer: Packer = first_fit_decreasing,
) -> X2YSchema:
    """Grid scheme with an explicit X-side capacity share.

    ``x_capacity`` must admit every X input and leave room (``q -
    x_capacity``) for every Y input; otherwise the split is invalid for this
    instance and :class:`InvalidInstanceError` is raised.
    """
    y_capacity = instance.q - x_capacity
    if x_capacity < max(instance.x_sizes):
        raise InvalidInstanceError(
            f"x_capacity {x_capacity} < largest X input {max(instance.x_sizes)}"
        )
    if y_capacity < max(instance.y_sizes):
        raise InvalidInstanceError(
            f"y share q - t = {y_capacity} < largest Y input {max(instance.y_sizes)}"
        )
    x_packing = packer(instance.x_sizes, x_capacity)
    y_packing = packer(instance.y_sizes, y_capacity)
    reducers = [
        (tuple(x_bin), tuple(y_bin))
        for x_bin in x_packing.bins
        for y_bin in y_packing.bins
    ]
    return X2YSchema.from_lists(
        instance,
        reducers,
        algorithm=f"grid[t={x_capacity},{x_packing.algorithm}]",
    )


def half_split_grid(
    instance: X2YInstance, packer: Packer = first_fit_decreasing
) -> X2YSchema:
    """The symmetric ``q/2 | q/2`` grid — the paper's default scheme.

    Requires every input on both sides to fit in half a reducer; use
    :func:`best_split_grid` or the big/small scheme otherwise.
    """
    return grid_with_split(instance, instance.q // 2, packer=packer)


def _candidate_splits(instance: X2YInstance, max_candidates: int) -> list[int]:
    """Split values to probe: the feasible range, subsampled if wide."""
    low = max(instance.x_sizes)
    high = instance.q - max(instance.y_sizes)
    if low > high:
        return []
    candidates = {low, high, instance.q // 2}
    span = high - low
    if span <= max_candidates:
        candidates.update(range(low, high + 1))
    else:
        step = span / max_candidates
        candidates.update(int(low + round(step * i)) for i in range(max_candidates + 1))
    return sorted(t for t in candidates if low <= t <= high)


def best_split_grid(
    instance: X2YInstance,
    packer: Packer = first_fit_decreasing,
    *,
    max_candidates: int = 64,
) -> X2YSchema:
    """Grid scheme with the capacity split chosen to minimize reducer count.

    Probes up to *max_candidates* split values across the feasible range
    (always including the endpoints and the symmetric split) and keeps the
    one whose ``b_x * b_y`` product is smallest.  Fully general: succeeds on
    every feasible X2Y instance.
    """
    instance.check_feasible()
    best: X2YSchema | None = None
    for t in _candidate_splits(instance, max_candidates):
        schema = grid_with_split(instance, t, packer=packer)
        if best is None or schema.num_reducers < best.num_reducers:
            best = schema
    if best is None:
        # check_feasible passed, so the feasible split range is non-empty;
        # this is unreachable but keeps the type checker honest.
        raise InvalidInstanceError("no feasible capacity split found")
    return best
