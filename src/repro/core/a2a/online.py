"""Online A2A assignment: inputs arrive one at a time.

The paper's offline schemes assume all sizes are known up front.  In a
streaming ingest (new web pages arriving for a similarity join), the
assignment must be extended *incrementally* without moving inputs that
mappers have already shipped.  This module maintains the bin-pairing
invariant online:

* inputs are first-fit packed into half-capacity (``q // 2``) bins as they
  arrive (first-fit is the online analogue of FFD);
* opening bin ``b`` creates reducers pairing ``b`` with every existing bin,
  so all cross-bin pairs stay covered;
* an input joining an existing bin inherits that bin's reducers, covering
  its pairs with all earlier inputs.

After every insertion the snapshot schema is valid — the class-level
invariant the property tests drive.  The price of not knowing the future
is packing quality: first-fit uses up to ~1.7x the bins of FFD, and the
reducer count is quadratic in the bins, which experiment E12 quantifies.
"""

from __future__ import annotations

from repro.core.instance import A2AInstance
from repro.core.schema import A2ASchema
from repro.exceptions import InvalidInstanceError
from repro.utils.validation import check_positive_int


class OnlineA2AAssigner:
    """Incrementally maintained bin-pairing assignment.

    Only inputs of size at most ``q // 2`` are supported: a big input would
    retroactively need residual-capacity repacking of everything seen so
    far, defeating the online setting (and a feasible instance carries at
    most one such input anyway).
    """

    def __init__(self, q: int):
        self.q = check_positive_int(q, "q")
        self._half = self.q // 2
        if self._half < 1:
            raise InvalidInstanceError(f"q={q} leaves no room for any input")
        self._sizes: list[int] = []
        self._bin_loads: list[int] = []
        self._bin_members: list[list[int]] = []

    @property
    def num_inputs(self) -> int:
        """Inputs inserted so far."""
        return len(self._sizes)

    @property
    def num_bins(self) -> int:
        """Half-capacity bins opened so far."""
        return len(self._bin_loads)

    @property
    def num_reducers(self) -> int:
        """Reducers in the current snapshot: C(bins, 2), or 1 for one bin."""
        b = self.num_bins
        if b == 0:
            return 0
        if b == 1:
            return 1
        return b * (b - 1) // 2

    def add_input(self, size: int) -> int:
        """Insert an input of *size*; returns its index.

        Raises :class:`InvalidInstanceError` for sizes above ``q // 2``.
        """
        validated = check_positive_int(size, "size")
        if validated > self._half:
            raise InvalidInstanceError(
                f"online assignment supports sizes <= q//2 = {self._half}, "
                f"got {validated}"
            )
        index = len(self._sizes)
        self._sizes.append(validated)
        for b, load in enumerate(self._bin_loads):
            if load + validated <= self._half:
                self._bin_loads[b] += validated
                self._bin_members[b].append(index)
                return index
        self._bin_loads.append(validated)
        self._bin_members.append([index])
        return index

    def extend(self, sizes) -> list[int]:
        """Insert many inputs; returns their indices."""
        return [self.add_input(s) for s in sizes]

    def instance(self) -> A2AInstance:
        """The instance of everything inserted so far."""
        if not self._sizes:
            raise InvalidInstanceError("no inputs inserted yet")
        return A2AInstance(self._sizes, self.q)

    def schema(self) -> A2ASchema:
        """Snapshot of the current assignment (valid at every point)."""
        instance = self.instance()
        bins = self._bin_members
        if len(bins) == 1:
            reducers = [list(bins[0])]
        else:
            reducers = [
                bins[a] + bins[b]
                for a in range(len(bins))
                for b in range(a + 1, len(bins))
            ]
        return A2ASchema.from_lists(instance, reducers, algorithm="online_pairing")

    def replication_of(self, index: int) -> int:
        """How many reducers currently hold input *index*.

        Every input is replicated to the reducers of its bin: ``b - 1`` of
        them (or 1 when only one bin exists).
        """
        if not 0 <= index < len(self._sizes):
            raise InvalidInstanceError(f"no input with index {index}")
        return max(1, self.num_bins - 1)
