"""The bin-packing-based A2A scheme for different-sized inputs.

Pack all inputs into bins of capacity ``q // 2`` (First-Fit-Decreasing by
default) and assign every pair of bins to one reducer.  Any two bins fit
together (2 * q/2 <= q), every cross-bin pair meets at that reducer, and
every within-bin pair meets wherever the bin travels.  With ``b`` bins the
scheme uses ``C(b, 2)`` reducers; since an optimal schema cannot do better
than the packing lower bound on ``b``, this is the paper's
constant-factor approximation for inputs no larger than ``q/2``.

Inputs larger than ``q/2`` cannot enter a half-capacity bin; they are the
*big inputs* handled by :mod:`repro.core.a2a.big_small`, which delegates
the small ones back here.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.binpack.ffd import first_fit_decreasing
from repro.binpack.packing import PackingResult
from repro.core.instance import A2AInstance
from repro.core.schema import A2ASchema
from repro.exceptions import InvalidInstanceError

Packer = Callable[[Sequence[int], int], PackingResult]


def pair_bins(bins: Sequence[Sequence[int]]) -> list[list[int]]:
    """Turn bins of input indices into reducers: one per unordered bin pair.

    A single bin yields a single reducer so within-bin pairs are still
    covered.  Exposed separately so big/small and ablation code can reuse
    the pairing step with their own packings.
    """
    if len(bins) == 1:
        return [list(bins[0])]
    return [
        list(bins[a]) + list(bins[b])
        for a in range(len(bins))
        for b in range(a + 1, len(bins))
    ]


def ffd_pairing(
    instance: A2AInstance,
    packer: Packer = first_fit_decreasing,
) -> A2ASchema:
    """Build the bin-pairing schema for an instance with all sizes <= q // 2.

    *packer* may be any :mod:`repro.binpack` heuristic (the E8 ablation sweeps
    them); it receives the sizes and the half-capacity ``q // 2``.

    Raises :class:`InvalidInstanceError` when some input exceeds ``q // 2`` —
    use :func:`repro.core.a2a.big_small.big_small` for the general case.
    """
    half = instance.q // 2
    oversized = [i for i, w in enumerate(instance.sizes) if w > half]
    if oversized:
        raise InvalidInstanceError(
            f"{len(oversized)} input(s) exceed q//2 = {half} "
            f"(first: index {oversized[0]}, size {instance.sizes[oversized[0]]}); "
            "use the big/small algorithm for instances with big inputs"
        )
    if instance.m == 1:
        return A2ASchema.from_lists(instance, [[0]], algorithm="ffd_pairing")

    packing = packer(instance.sizes, half)
    reducers = pair_bins(packing.bins)
    return A2ASchema.from_lists(
        instance, reducers, algorithm=f"bin_pairing[{packing.algorithm}]"
    )
