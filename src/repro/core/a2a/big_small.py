"""The general A2A scheme: split inputs into *big* and *small*.

A *big* input has size > ``q // 2``; two bigs only co-fit if their sum is
<= q, and no big fits in a half-capacity bin.  The scheme covers the three
kinds of pairs separately:

1. **big-big** — one dedicated reducer per pair of big inputs.  (In a
   *feasible* A2A instance at most one input exceeds q/2 — two bigs that
   must meet would overflow q — so this class is empty in practice; the
   code keeps it so the construction stays correct if the feasibility
   precondition is ever relaxed to partial coverage.);
2. **small-small** — the bin-pairing scheme of
   :mod:`repro.core.a2a.ffd_pairing` on the small inputs alone;
3. **big-small** — for each big input ``i``, pack the smalls into bins of
   the residual capacity ``q - w_i`` and add one reducer ``{i} + bin`` per
   bin, so ``i`` meets every small.

This is the paper's strategy for different-sized inputs in the presence of
big inputs; when there are no bigs it reduces exactly to the bin-pairing
scheme.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.binpack.ffd import first_fit_decreasing
from repro.binpack.packing import PackingResult
from repro.core.instance import A2AInstance
from repro.core.schema import A2ASchema
from repro.core.a2a.ffd_pairing import pair_bins

Packer = Callable[[Sequence[int], int], PackingResult]


def split_big_small(instance: A2AInstance) -> tuple[list[int], list[int]]:
    """Partition input indices into (big, small) relative to ``q // 2``.

    Big means strictly larger than ``q // 2``: such an input can never share
    a half-capacity bin.
    """
    half = instance.q // 2
    big = [i for i, w in enumerate(instance.sizes) if w > half]
    small = [i for i, w in enumerate(instance.sizes) if w <= half]
    return big, small


def big_small(
    instance: A2AInstance,
    packer: Packer = first_fit_decreasing,
) -> A2ASchema:
    """Build a valid schema for any feasible A2A instance.

    Raises :class:`repro.exceptions.InfeasibleInstanceError` when the two
    largest inputs cannot co-fit (then no schema exists at all).
    """
    instance.check_feasible()
    if instance.m == 1:
        return A2ASchema.from_lists(instance, [[0]], algorithm="big_small")

    big, small = split_big_small(instance)
    sizes = instance.sizes
    reducers: list[list[int]] = []

    # 1. big-big pairs: one reducer each.  Feasibility guarantees every pair
    #    fits because the two largest inputs fit.
    for a in range(len(big)):
        for b in range(a + 1, len(big)):
            reducers.append([big[a], big[b]])

    # 2. small-small pairs via half-capacity bin pairing.
    small_bins: list[list[int]] = []
    if small:
        half = instance.q // 2
        packing = packer([sizes[i] for i in small], half)
        small_bins = [[small[i] for i in bin_items] for bin_items in packing.bins]
        if len(small) == 1 and not big:
            reducers.append([small[0]])
        else:
            reducers.extend(pair_bins(small_bins))

    # 3. big-small pairs: re-pack smalls into each big's residual capacity.
    for i in big:
        if not small:
            break
        residual = instance.q - sizes[i]
        packing = packer([sizes[j] for j in small], residual)
        for bin_items in packing.bins:
            reducers.append([i] + [small[j] for j in bin_items])

    # A lone big input with no smalls and no partner still must be emitted.
    if not reducers:
        reducers.append(list(range(instance.m)))

    # Drop reducers fully contained in another (pure cost, no coverage gain).
    reducers = _prune_dominated(reducers)
    return A2ASchema.from_lists(instance, reducers, algorithm="big_small")


def _prune_dominated(reducers: list[list[int]]) -> list[list[int]]:
    """Remove reducers whose input set is a subset of another reducer's.

    The construction above can produce containment (e.g. a residual bin that
    equals a half-capacity bin); pruning preserves coverage because any pair
    met in a subset is met in its superset.  O(z^2) on the reducer count,
    which the construction keeps polynomial.
    """
    as_sets = [frozenset(r) for r in reducers]
    order = sorted(range(len(as_sets)), key=lambda r: len(as_sets[r]), reverse=True)
    kept: list[frozenset[int]] = []
    kept_lists: list[list[int]] = []
    for r in order:
        candidate = as_sets[r]
        if any(candidate <= existing for existing in kept):
            continue
        kept.append(candidate)
        kept_lists.append(reducers[r])
    return kept_lists
