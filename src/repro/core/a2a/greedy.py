"""Greedy pair-cover baseline for A2A.

A straightforward comparator for the paper's structured schemes: repeatedly
open a reducer, seed it with the uncovered pair of largest joint degree,
then keep adding the input with the best (newly covered pairs / size) ratio
until nothing fits or nothing helps.  No approximation guarantee, but a
natural "what a practitioner would try first" baseline for E2/E8.
"""

from __future__ import annotations

from repro.core.instance import A2AInstance
from repro.core.schema import A2ASchema


def greedy_cover(instance: A2AInstance, *, max_reducers: int | None = None) -> A2ASchema:
    """Cover all pairs greedily.

    *max_reducers* optionally caps the schema size (a safety valve for
    adversarial instances); by default the loop runs until every pair is
    covered, which always terminates because each iteration covers at least
    the seeding pair.

    Raises :class:`repro.exceptions.InfeasibleInstanceError` for infeasible
    instances.
    """
    instance.check_feasible()
    m = instance.m
    if m == 1:
        return A2ASchema.from_lists(instance, [[0]], algorithm="greedy_cover")

    sizes = instance.sizes
    q = instance.q
    uncovered: set[tuple[int, int]] = set(instance.pairs())
    # degree[i] = number of uncovered pairs touching input i.
    degree = [m - 1] * m
    reducers: list[list[int]] = []

    while uncovered:
        if max_reducers is not None and len(reducers) >= max_reducers:
            break
        # Seed with the uncovered pair of maximum joint degree that co-fits;
        # feasibility guarantees at least one uncovered pair fits (all do).
        seed = max(uncovered, key=lambda p: (degree[p[0]] + degree[p[1]], -sizes[p[0]] - sizes[p[1]]))
        members = {seed[0], seed[1]}
        load = sizes[seed[0]] + sizes[seed[1]]

        while True:
            best_gain = 0.0
            best_input = -1
            best_new = 0
            for i in range(m):
                if i in members or load + sizes[i] > q:
                    continue
                new_pairs = sum(
                    1 for j in members if (min(i, j), max(i, j)) in uncovered
                )
                if new_pairs == 0:
                    continue
                gain = new_pairs / sizes[i]
                if gain > best_gain:
                    best_gain = gain
                    best_input = i
                    best_new = new_pairs
            if best_input < 0 or best_new == 0:
                break
            members.add(best_input)
            load += sizes[best_input]

        reducer = sorted(members)
        reducers.append(reducer)
        for a_pos, i in enumerate(reducer):
            for j in reducer[a_pos + 1:]:
                pair = (i, j)
                if pair in uncovered:
                    uncovered.discard(pair)
                    degree[i] -= 1
                    degree[j] -= 1

    return A2ASchema.from_lists(instance, reducers, algorithm="greedy_cover")
