"""Exact minimum-reducer solver for small A2A instances.

The A2A mapping-schema problem is NP-complete (the paper's main hardness
result), so exact solving is only for ground truth on small instances: the
E9 experiment measures the heuristics' optimality gap against this solver.

The solver runs iterative deepening on the reducer budget ``z`` starting
from the instance lower bound.  For a fixed ``z`` it covers required pairs
one at a time with depth-first search: take the first uncovered pair and
try every way of making it meet (grow an existing reducer, or open a new
one), pruning on capacity and on budget, with symmetry breaking on new
reducers.
"""

from __future__ import annotations

from repro.core.bounds import a2a_reducer_lower_bound
from repro.core.instance import A2AInstance
from repro.core.schema import A2ASchema
from repro.exceptions import SolverLimitError


def solve_min_reducers(
    instance: A2AInstance,
    *,
    max_nodes: int = 500_000,
    max_reducers: int | None = None,
) -> A2ASchema:
    """Return a schema with the provably minimum number of reducers.

    Raises :class:`SolverLimitError` when the node budget is exhausted, and
    :class:`repro.exceptions.InfeasibleInstanceError` for infeasible
    instances.  Intended for ``m`` up to roughly 10-12.
    """
    instance.check_feasible()
    m = instance.m
    if m == 1:
        return A2ASchema.from_lists(instance, [[0]], algorithm="exact")

    sizes = instance.sizes
    q = instance.q
    all_pairs = list(instance.pairs())
    # Hardest pairs first: large joint size constrains placement most.
    all_pairs.sort(key=lambda p: sizes[p[0]] + sizes[p[1]], reverse=True)

    lower = a2a_reducer_lower_bound(instance)
    ceiling = max_reducers if max_reducers is not None else len(all_pairs)
    nodes = 0

    def is_covered(i: int, j: int, members: list[set[int]]) -> bool:
        return any(i in r and j in r for r in members)

    def search(
        pair_pos: int,
        members: list[set[int]],
        loads: list[int],
        budget: int,
    ) -> list[set[int]] | None:
        nonlocal nodes
        nodes += 1
        if nodes > max_nodes:
            raise SolverLimitError(
                f"A2A exact solver exceeded {max_nodes} nodes at m={m}"
            )
        while pair_pos < len(all_pairs) and is_covered(*all_pairs[pair_pos], members):
            pair_pos += 1
        if pair_pos == len(all_pairs):
            return [set(r) for r in members]
        i, j = all_pairs[pair_pos]

        # Option A: host the pair inside an existing reducer.
        seen_signatures: set[tuple[int, frozenset[int]]] = set()
        for r, reducer in enumerate(members):
            has_i, has_j = i in reducer, j in reducer
            extra = 0
            if not has_i:
                extra += sizes[i]
            if not has_j:
                extra += sizes[j]
            if loads[r] + extra > q:
                continue
            signature = (loads[r], frozenset(reducer))
            if signature in seen_signatures:
                continue  # identical reducer state: symmetric branch
            seen_signatures.add(signature)
            added = []
            if not has_i:
                reducer.add(i)
                added.append(i)
            if not has_j:
                reducer.add(j)
                added.append(j)
            loads[r] += extra
            result = search(pair_pos + 1, members, loads, budget)
            loads[r] -= extra
            for element in added:
                reducer.discard(element)
            if result is not None:
                return result

        # Option B: open a new reducer holding exactly this pair.
        if budget > 0:
            members.append({i, j})
            loads.append(sizes[i] + sizes[j])
            result = search(pair_pos + 1, members, loads, budget - 1)
            members.pop()
            loads.pop()
            if result is not None:
                return result
        return None

    for target in range(max(1, lower), ceiling + 1):
        solution = search(0, [], [], target)
        if solution is not None:
            return A2ASchema.from_lists(
                instance, [sorted(r) for r in solution], algorithm="exact"
            )
    raise SolverLimitError(
        f"no schema found within the reducer ceiling {ceiling} (m={m})"
    )
