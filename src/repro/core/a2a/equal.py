"""A2A schemes for equal-sized inputs (the paper's tractable special case).

With every input of size ``w`` and ``k = q // w`` inputs fitting per
reducer, the grouping scheme splits the inputs into groups of ``k // 2``
and assigns every pair of groups to one reducer.  Each reducer then holds
at most ``k`` inputs (load <= q), every same-group pair meets wherever the
group appears, and every cross-group pair meets at that pair's reducer.
The scheme uses ``C(t, 2)`` reducers for ``t = ceil(m / (k // 2))`` groups,
within a small constant factor of the ``ceil(C(m,2)/C(k,2))`` lower bound
(factor ~2 for even ``k``).
"""

from __future__ import annotations

from repro.core.instance import A2AInstance
from repro.core.schema import A2ASchema
from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError


def _require_equal_sizes(instance: A2AInstance) -> int:
    """Return the common size, or raise if sizes differ."""
    unique = set(instance.sizes)
    if len(unique) != 1:
        raise InvalidInstanceError(
            f"equal-sized scheme requires identical sizes, got {len(unique)} distinct values"
        )
    return instance.sizes[0]


def inputs_per_reducer(instance: A2AInstance) -> int:
    """``k = q // w``: how many equal-sized inputs fit in one reducer."""
    w = _require_equal_sizes(instance)
    return instance.q // w


def group_inputs(m: int, group_size: int) -> list[tuple[int, ...]]:
    """Split input indices ``0..m-1`` into consecutive groups of *group_size*.

    The final group may be smaller.  Exposed for tests and for the X2Y
    equal-sized scheme which groups both sides the same way.
    """
    if group_size <= 0:
        raise InvalidInstanceError(f"group_size must be positive, got {group_size}")
    return [
        tuple(range(start, min(start + group_size, m)))
        for start in range(0, m, group_size)
    ]


def equal_sized_grouping(instance: A2AInstance) -> A2ASchema:
    """The grouping scheme for equal-sized A2A inputs.

    Cases:

    * ``m <= k``: a single reducer holds everything (optimal).
    * ``k == 1`` and ``m >= 2``: infeasible — no reducer fits any pair.
    * otherwise: groups of ``k // 2`` inputs, one reducer per pair of
      groups (and a single reducer if only one group forms).

    Returns a verified-constructible schema; ``schema.require_valid()`` is
    exercised by the tests rather than re-run here.
    """
    w = _require_equal_sizes(instance)
    k = instance.q // w
    m = instance.m

    if m == 1:
        return A2ASchema.from_lists(instance, [[0]], algorithm="equal_grouping")
    if k < 2:
        raise InfeasibleInstanceError(
            f"capacity q={instance.q} fits only k={k} input(s) of size {w}; "
            "no pair of inputs can ever meet",
            offending_pair=(0, 1),
        )
    if m <= k:
        return A2ASchema.from_lists(
            instance, [list(range(m))], algorithm="equal_grouping"
        )

    group_size = max(1, k // 2)
    groups = group_inputs(m, group_size)
    if len(groups) == 1:
        return A2ASchema.from_lists(instance, [groups[0]], algorithm="equal_grouping")

    reducers = [
        groups[a] + groups[b]
        for a in range(len(groups))
        for b in range(a + 1, len(groups))
    ]
    return A2ASchema.from_lists(instance, reducers, algorithm="equal_grouping")


def equal_sized_reducer_count(m: int, k: int) -> int:
    """Closed-form reducer count of :func:`equal_sized_grouping`.

    Used by E1 to report the analytic curve next to the constructed one.
    """
    if m <= 0:
        return 0
    if m == 1:
        return 1
    if k < 2:
        raise InfeasibleInstanceError(f"k={k} cannot host any pair")
    if m <= k:
        return 1
    group_size = max(1, k // 2)
    t = -(-m // group_size)  # ceil division
    if t == 1:
        return 1
    return t * (t - 1) // 2
