"""A2A mapping-schema algorithms.

* :func:`equal_sized_grouping` — near-optimal scheme for equal sizes.
* :func:`grouped_covering` — covering-design scheme for equal sizes (beats
  plain grouping when many groups fit per reducer).
* :func:`ffd_pairing` — bin-pairing approximation for sizes <= q/2.
* :func:`big_small` — the general scheme (handles big inputs > q/2).
* :func:`greedy_cover` — unstructured greedy baseline.
* :func:`solve_min_reducers` — exact branch-and-bound for small instances.
"""

from repro.core.a2a.equal import (
    equal_sized_grouping,
    equal_sized_reducer_count,
    group_inputs,
    inputs_per_reducer,
)
from repro.core.a2a.ffd_pairing import ffd_pairing, pair_bins
from repro.core.a2a.grouped_covering import grouped_covering
from repro.core.a2a.big_small import big_small, split_big_small
from repro.core.a2a.greedy import greedy_cover
from repro.core.a2a.exact import solve_min_reducers
from repro.core.a2a.online import OnlineA2AAssigner

__all__ = [
    "equal_sized_grouping",
    "equal_sized_reducer_count",
    "group_inputs",
    "inputs_per_reducer",
    "ffd_pairing",
    "grouped_covering",
    "pair_bins",
    "big_small",
    "split_big_small",
    "greedy_cover",
    "solve_min_reducers",
    "OnlineA2AAssigner",
]
