"""Grouped-covering A2A scheme: more than two groups per reducer.

The plain grouping scheme (:mod:`repro.core.a2a.equal`) puts exactly two
groups of ``k // 2`` inputs in each reducer.  But when ``k = q // w`` is
large, a reducer can host ``s = k // g`` groups of size ``g`` for *smaller*
``g`` — and then covering all pairs of groups with s-element blocks is a
covering-design problem, solved by :mod:`repro.covering`.  With a good
design the reducer count approaches ``C(t,2) / C(s,2)``, which for ``s=3``
(Steiner triple systems) is a 3x improvement over plain pairing.

The scheme sweeps candidate group sizes ``g`` and keeps the cheapest valid
construction, so it never does worse than the plain grouping scheme.
"""

from __future__ import annotations

from repro.core.a2a.equal import _require_equal_sizes, group_inputs
from repro.core.instance import A2AInstance
from repro.core.schema import A2ASchema
from repro.covering.designs import pair_cover
from repro.exceptions import InfeasibleInstanceError


def grouped_covering(instance: A2AInstance, *, max_group_candidates: int = 8) -> A2ASchema:
    """Equal-sized A2A scheme built from pair-covering designs.

    Requires uniform input sizes (raises
    :class:`repro.exceptions.InvalidInstanceError` otherwise) and a
    capacity hosting at least two inputs (raises
    :class:`InfeasibleInstanceError` if ``k < 2`` with ``m >= 2``).

    Sweeps group sizes ``g`` from ``k // 2`` downward (up to
    *max_group_candidates* values); for each, builds a covering design over
    the ``t = ceil(m / g)`` groups with block size ``s = k // g`` and turns
    each block into a reducer.  Returns the construction using the fewest
    reducers.
    """
    w = _require_equal_sizes(instance)
    k = instance.q // w
    m = instance.m

    if m == 1:
        return A2ASchema.from_lists(instance, [[0]], algorithm="grouped_covering")
    if k < 2:
        raise InfeasibleInstanceError(
            f"capacity q={instance.q} fits only k={k} input(s) of size {w}; "
            "no pair of inputs can ever meet",
            offending_pair=(0, 1),
        )
    if m <= k:
        return A2ASchema.from_lists(
            instance, [list(range(m))], algorithm="grouped_covering"
        )

    best: list[list[int]] | None = None
    candidates = range(max(1, k // 2), 0, -1)
    tried = 0
    for g in candidates:
        if tried >= max_group_candidates:
            break
        s = k // g
        if s < 2:
            continue
        groups = group_inputs(m, g)
        t = len(groups)
        # The greedy design is quadratic in t; only pay for large t when
        # the exact (cheap) Steiner construction applies.
        if t > 300 and not (s == 3 and t % 6 == 3):
            continue
        tried += 1
        if t == 1:
            construction = [list(groups[0])]
        else:
            blocks = pair_cover(t, s)
            construction = [
                [i for group_index in block for i in groups[group_index]]
                for block in blocks
            ]
        if best is None or len(construction) < len(best):
            best = construction

    assert best is not None  # k >= 2 guarantees g = k//2 >= 1 with s >= 2
    return A2ASchema.from_lists(instance, best, algorithm="grouped_covering")
