"""Problem instances for the two mapping-schema problems.

An instance is exactly what the paper's problem statements specify: the
input sizes plus the common reducer capacity ``q``.  Instances are immutable
and validated on construction; feasibility (can *any* schema exist?) is a
separate, explicit check because the paper treats it as part of the decision
problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product
from typing import Iterator

from repro.exceptions import InfeasibleInstanceError
from repro.utils.validation import check_capacity, check_sizes


@dataclass(frozen=True)
class A2AInstance:
    """An all-to-all (A2A) mapping-schema instance.

    ``m`` inputs with sizes ``w_1..w_m`` and reducer capacity ``q``; every
    unordered pair of distinct inputs must be assigned to at least one
    reducer in common.  Similarity join is the canonical application.
    """

    sizes: tuple[int, ...]
    q: int

    def __init__(self, sizes, q):
        object.__setattr__(self, "sizes", check_sizes(sizes))
        object.__setattr__(self, "q", check_capacity(q, self.sizes))

    @classmethod
    def equal_sized(cls, m: int, w: int, q: int) -> "A2AInstance":
        """Instance with *m* inputs all of size *w* (the paper's special case)."""
        if m <= 0:
            raise InfeasibleInstanceError(f"m must be positive, got {m}")
        return cls([w] * m, q)

    @property
    def m(self) -> int:
        """Number of inputs."""
        return len(self.sizes)

    @property
    def total_size(self) -> int:
        """Sum of all input sizes (the minimum data that must be shipped once)."""
        return sum(self.sizes)

    @property
    def num_pairs(self) -> int:
        """Number of required pairs: C(m, 2)."""
        return self.m * (self.m - 1) // 2

    def pairs(self) -> Iterator[tuple[int, int]]:
        """Iterate all required pairs ``(i, j)`` with ``i < j``."""
        return combinations(range(self.m), 2)

    def max_inputs_per_reducer(self) -> int:
        """Largest number of inputs that can share one reducer.

        Computed greedily from the smallest sizes; this is the ``t`` used by
        the pair-covering lower bound.
        """
        budget = self.q
        count = 0
        for size in sorted(self.sizes):
            if size > budget:
                break
            budget -= size
            count += 1
        return count

    def is_feasible(self) -> bool:
        """Whether any mapping schema exists.

        For A2A this holds iff the two largest inputs fit together in one
        reducer (every pair must meet somewhere).  A single input is trivially
        feasible.
        """
        if self.m < 2:
            return True
        largest_two = sorted(self.sizes, reverse=True)[:2]
        return sum(largest_two) <= self.q

    def check_feasible(self) -> None:
        """Raise :class:`InfeasibleInstanceError` if no schema can exist."""
        if self.is_feasible():
            return
        ranked = sorted(range(self.m), key=lambda i: self.sizes[i], reverse=True)
        pair = (ranked[0], ranked[1])
        raise InfeasibleInstanceError(
            f"inputs {pair[0]} and {pair[1]} have sizes "
            f"{self.sizes[pair[0]]} + {self.sizes[pair[1]]} > q = {self.q}; "
            "this pair can never meet at any reducer",
            offending_pair=pair,
        )


@dataclass(frozen=True)
class X2YInstance:
    """An X-to-Y (X2Y) mapping-schema instance.

    Two disjoint input sets ``X`` (sizes ``w_1..w_m``) and ``Y`` (sizes
    ``w'_1..w'_n``) with reducer capacity ``q``; every cross pair
    ``(x_i, y_j)`` must be assigned to at least one reducer in common.
    Skew join and outer/tensor product are the canonical applications.
    """

    x_sizes: tuple[int, ...]
    y_sizes: tuple[int, ...]
    q: int

    def __init__(self, x_sizes, y_sizes, q):
        object.__setattr__(self, "x_sizes", check_sizes(x_sizes, "x_sizes"))
        object.__setattr__(self, "y_sizes", check_sizes(y_sizes, "y_sizes"))
        object.__setattr__(
            self, "q", check_capacity(q, self.x_sizes + self.y_sizes)
        )

    @classmethod
    def equal_sized(cls, m: int, w: int, n: int, w_prime: int, q: int) -> "X2YInstance":
        """Instance with equal sizes on each side (w on X, w' on Y)."""
        if m <= 0 or n <= 0:
            raise InfeasibleInstanceError(f"m and n must be positive, got {m}, {n}")
        return cls([w] * m, [w_prime] * n, q)

    @property
    def m(self) -> int:
        """Number of X inputs."""
        return len(self.x_sizes)

    @property
    def n(self) -> int:
        """Number of Y inputs."""
        return len(self.y_sizes)

    @property
    def total_size(self) -> int:
        """Sum of all input sizes across both sets."""
        return sum(self.x_sizes) + sum(self.y_sizes)

    @property
    def num_pairs(self) -> int:
        """Number of required cross pairs: m * n."""
        return self.m * self.n

    def pairs(self) -> Iterator[tuple[int, int]]:
        """Iterate all required cross pairs ``(i, j)``: x-index, y-index."""
        return product(range(self.m), range(self.n))

    def is_feasible(self) -> bool:
        """Whether any schema exists: the largest X and largest Y must co-fit."""
        return max(self.x_sizes) + max(self.y_sizes) <= self.q

    def check_feasible(self) -> None:
        """Raise :class:`InfeasibleInstanceError` if no schema can exist."""
        if self.is_feasible():
            return
        i = max(range(self.m), key=lambda k: self.x_sizes[k])
        j = max(range(self.n), key=lambda k: self.y_sizes[k])
        raise InfeasibleInstanceError(
            f"x[{i}] (size {self.x_sizes[i]}) and y[{j}] (size {self.y_sizes[j]}) "
            f"sum to more than q = {self.q}; this cross pair can never meet",
            offending_pair=(i, j),
        )
