"""One-call facade: pick a mapping-schema algorithm from instance shape.

``solve_a2a`` and ``solve_x2y`` are the library's front doors.  With
``method="auto"`` they dispatch on the structure the paper's algorithms
key on — uniform sizes, presence of big inputs.  That structural
heuristic now lives in :mod:`repro.planner.fastpath` (it is the
cost-based planner's fast path); these functions are thin compatibility
wrappers over it, so the planner and the historical API cannot drift.
Named methods are looked up in the registries below, so experiments can
sweep algorithms uniformly.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.a2a import (
    big_small,
    equal_sized_grouping,
    ffd_pairing,
    greedy_cover,
    grouped_covering,
    solve_min_reducers,
)
from repro.core.instance import A2AInstance, X2YInstance
from repro.core.schema import A2ASchema, X2YSchema
from repro.exceptions import UnknownMethodError
from repro.core.x2y import (
    best_split_grid,
    big_small_x2y,
    equal_sized_grid,
    greedy_cover_x2y,
    half_split_grid,
    solve_min_reducers_x2y,
)

#: Name -> callable registries; the benches iterate these.
A2A_METHODS = {
    "equal_grouping": equal_sized_grouping,
    "grouped_covering": grouped_covering,
    "bin_pairing": ffd_pairing,
    "big_small": big_small,
    "greedy": greedy_cover,
    "exact": solve_min_reducers,
}

X2Y_METHODS = {
    "equal_grid": equal_sized_grid,
    "half_grid": half_split_grid,
    "best_split_grid": best_split_grid,
    "big_small": big_small_x2y,
    "greedy": greedy_cover_x2y,
    "exact": solve_min_reducers_x2y,
}


def require_method(kind: str, method: str, registry: Mapping[str, object]) -> None:
    """Raise :class:`UnknownMethodError` unless *method* is registered.

    The single place the "unknown method" message is built, so every
    front door (``solve_a2a``/``solve_x2y``, the planner, the CLI) lists
    the valid method names the same way instead of echoing the bad name
    with no hint.
    """
    if method not in registry:
        raise UnknownMethodError(
            f"unknown {kind} method {method!r}; choose from "
            f"{sorted(registry)} or 'auto'"
        )


def solve_a2a(instance: A2AInstance, method: str = "auto") -> A2ASchema:
    """Build a mapping schema for an A2A instance.

    ``method="auto"`` picks: for uniform sizes, the better of the plain
    grouping scheme and the covering-design scheme; the big/small scheme
    when some input exceeds ``q // 2``; the bin-pairing scheme otherwise
    (the planner's fast path — see
    :func:`repro.planner.fastpath.fast_path_a2a`).  Named methods come
    from :data:`A2A_METHODS`.
    """
    instance.check_feasible()
    if method == "auto":
        # Imported lazily: the planner package imports these registries.
        from repro.planner.fastpath import fast_path_a2a

        chosen, considered, _ = fast_path_a2a(instance)
        return considered[chosen]
    require_method("A2A", method, A2A_METHODS)
    return A2A_METHODS[method](instance)


def solve_x2y(instance: X2YInstance, method: str = "auto") -> X2YSchema:
    """Build a mapping schema for an X2Y instance.

    ``method="auto"`` picks: the equal-sized grid when both sides are
    uniform; otherwise the best-split grid, except that when big inputs
    (> q // 2) are present it builds both the best-split grid and the
    big/small scheme and keeps whichever uses fewer reducers.  (A feasible
    instance can only have big inputs on *one* side: two inputs above q/2
    that must meet would exceed the capacity.)  Named methods come from
    :data:`X2Y_METHODS`.
    """
    instance.check_feasible()
    if method == "auto":
        from repro.planner.fastpath import fast_path_x2y

        chosen, considered, _ = fast_path_x2y(instance)
        return considered[chosen]
    require_method("X2Y", method, X2Y_METHODS)
    return X2Y_METHODS[method](instance)
