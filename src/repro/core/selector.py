"""One-call facade: pick a mapping-schema algorithm from instance shape.

``solve_a2a`` and ``solve_x2y`` are the library's front doors.  With
``method="auto"`` they dispatch on the structure the paper's algorithms
key on — uniform sizes, presence of big inputs — and otherwise they look
the method up by name, so experiments can sweep algorithms uniformly.
"""

from __future__ import annotations

from repro.core.a2a import (
    big_small,
    equal_sized_grouping,
    ffd_pairing,
    greedy_cover,
    grouped_covering,
    solve_min_reducers,
)
from repro.core.instance import A2AInstance, X2YInstance
from repro.core.schema import A2ASchema, X2YSchema
from repro.exceptions import UnknownMethodError
from repro.core.x2y import (
    best_split_grid,
    big_small_x2y,
    equal_sized_grid,
    greedy_cover_x2y,
    half_split_grid,
    solve_min_reducers_x2y,
)

#: Name -> callable registries; the benches iterate these.
A2A_METHODS = {
    "equal_grouping": equal_sized_grouping,
    "grouped_covering": grouped_covering,
    "bin_pairing": ffd_pairing,
    "big_small": big_small,
    "greedy": greedy_cover,
    "exact": solve_min_reducers,
}

X2Y_METHODS = {
    "equal_grid": equal_sized_grid,
    "half_grid": half_split_grid,
    "best_split_grid": best_split_grid,
    "big_small": big_small_x2y,
    "greedy": greedy_cover_x2y,
    "exact": solve_min_reducers_x2y,
}


def solve_a2a(instance: A2AInstance, method: str = "auto") -> A2ASchema:
    """Build a mapping schema for an A2A instance.

    ``method="auto"`` picks: for uniform sizes, the better of the plain
    grouping scheme and the covering-design scheme; the big/small scheme
    when some input exceeds ``q // 2``; the bin-pairing scheme otherwise.
    Named methods come from :data:`A2A_METHODS`.
    """
    instance.check_feasible()
    if method == "auto":
        if len(set(instance.sizes)) == 1:
            candidates = [equal_sized_grouping(instance), grouped_covering(instance)]
            return min(candidates, key=lambda s: s.num_reducers)
        half = instance.q // 2
        if any(w > half for w in instance.sizes):
            return big_small(instance)
        return ffd_pairing(instance)
    if method not in A2A_METHODS:
        raise UnknownMethodError(
            f"unknown A2A method {method!r}; choose from "
            f"{sorted(A2A_METHODS)} or 'auto'"
        )
    return A2A_METHODS[method](instance)


def solve_x2y(instance: X2YInstance, method: str = "auto") -> X2YSchema:
    """Build a mapping schema for an X2Y instance.

    ``method="auto"`` picks: the equal-sized grid when both sides are
    uniform; otherwise the best-split grid, except that when big inputs
    (> q // 2) are present it builds both the best-split grid and the
    big/small scheme and keeps whichever uses fewer reducers.  (A feasible
    instance can only have big inputs on *one* side: two inputs above q/2
    that must meet would exceed the capacity.)  Named methods come from
    :data:`X2Y_METHODS`.
    """
    instance.check_feasible()
    if method == "auto":
        if len(set(instance.x_sizes)) == 1 and len(set(instance.y_sizes)) == 1:
            return equal_sized_grid(instance)
        half = instance.q // 2
        has_big = any(w > half for w in instance.x_sizes) or any(
            w > half for w in instance.y_sizes
        )
        if has_big:
            candidates = [big_small_x2y(instance), best_split_grid(instance)]
            return min(candidates, key=lambda s: s.num_reducers)
        return best_split_grid(instance)
    if method not in X2Y_METHODS:
        raise UnknownMethodError(
            f"unknown X2Y method {method!r}; choose from "
            f"{sorted(X2Y_METHODS)} or 'auto'"
        )
    return X2Y_METHODS[method](instance)
