"""Record sources for the execution stack: in-memory or streaming.

The engine, the apps, and the workload generators all pass records around;
until now that always meant a materialized ``list``, which caps every job
at what fits in one process.  :class:`Dataset` generalizes the record
source to three shapes with one interface:

* **list-backed** — :meth:`Dataset.from_list`; behaves exactly like the
  old path (``length`` known, cheap re-iteration, the engine keeps its
  materialized fast path).
* **factory-backed** — :meth:`Dataset.from_factory` wraps a zero-argument
  callable returning a fresh iterator; records are produced on demand and
  never held all at once.  Re-iterable, so cross-validation can run the
  same source through both executors.
* **iterator-backed** — :func:`as_dataset` over a bare generator; single
  use (a second iteration raises), for pipelines that truly stream.

``length`` is ``None`` when unknown; the engine then falls back to a fixed
streaming chunk size instead of sizing chunks from the record count.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.exceptions import InvalidInstanceError


class Dataset:
    """A source of records: materialized list or lazily produced stream."""

    def __init__(
        self,
        *,
        items: list[Any] | None = None,
        factory: Callable[[], Iterable[Any]] | None = None,
        iterator: Iterator[Any] | None = None,
        length: int | None = None,
    ):
        provided = [s for s in (items, factory, iterator) if s is not None]
        if len(provided) != 1:
            raise InvalidInstanceError(
                "Dataset takes exactly one of items/factory/iterator"
            )
        if length is not None and length < 0:
            raise InvalidInstanceError(
                f"Dataset length must be non-negative, got {length}"
            )
        self._items = items
        self._factory = factory
        self._iterator = iterator
        self._consumed = False
        self.length = len(items) if items is not None else length

    @classmethod
    def from_list(cls, items: Iterable[Any]) -> "Dataset":
        """A materialized dataset (length known, freely re-iterable)."""
        return cls(items=list(items))

    @classmethod
    def from_factory(
        cls, factory: Callable[[], Iterable[Any]], *, length: int | None = None
    ) -> "Dataset":
        """A streaming dataset built from a fresh-iterator factory.

        The factory is invoked once per iteration, so the dataset is
        re-iterable as long as the factory is (ranges, file readers,
        generator functions all qualify).  Pass *length* when the record
        count is known so the engine can size map chunks adaptively.
        """
        if not callable(factory):
            raise InvalidInstanceError("Dataset factory must be callable")
        return cls(factory=factory, length=length)

    @property
    def is_materialized(self) -> bool:
        """True when the records are already held in memory as a list."""
        return self._items is not None

    def __iter__(self) -> Iterator[Any]:
        if self._items is not None:
            return iter(self._items)
        if self._factory is not None:
            return iter(self._factory())
        if self._consumed:
            raise InvalidInstanceError(
                "iterator-backed Dataset is single-use and was already "
                "consumed; build it with Dataset.from_factory to re-iterate"
            )
        self._consumed = True
        return self._iterator

    def materialize(self) -> list[Any]:
        """The records as a list (the list itself for list-backed sources)."""
        if self._items is not None:
            return self._items
        return list(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = (
            "list"
            if self._items is not None
            else "factory"
            if self._factory is not None
            else "iterator"
        )
        return f"Dataset({kind}, length={self.length})"


def as_dataset(records: Any) -> Dataset:
    """Coerce any record source into a :class:`Dataset`.

    Datasets pass through; lists and tuples wrap without copying semantics
    changes; any other iterable becomes a single-use iterator-backed
    dataset (its length unknown).
    """
    if isinstance(records, Dataset):
        return records
    if isinstance(records, list):
        return Dataset(items=records)
    if isinstance(records, (tuple, range)):
        return Dataset.from_list(records)
    if hasattr(records, "__iter__"):
        return Dataset(iterator=iter(records))
    raise InvalidInstanceError(
        f"cannot build a Dataset from {type(records).__name__}"
    )


def iter_chunks(records: Iterable[Any], chunk_size: int) -> Iterator[list[Any]]:
    """Yield consecutive lists of at most *chunk_size* records.

    The chunks are built lazily from the underlying iterator, so at most
    one chunk of records is held by the producer at a time — this is what
    lets the engine feed map tasks from a stream without materializing the
    input.
    """
    if chunk_size <= 0:
        raise InvalidInstanceError(
            f"chunk_size must be positive, got {chunk_size}"
        )
    chunk: list[Any] = []
    for record in records:
        chunk.append(record)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk
