"""Exact bin packing via branch-and-bound.

Used as ground truth for small instances in tests and in the E9 optimality-
gap experiment.  The search branches on the placement of items in decreasing
size order, prunes with the L2 lower bound, and breaks bin symmetry by only
allowing an item to open the first empty bin.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.binpack.packing import PackingResult, validate_packing_inputs
from repro.binpack.ffd import first_fit_decreasing
from repro.binpack.lower_bounds import best_lower_bound
from repro.exceptions import SolverLimitError


def pack_exact(
    sizes: Sequence[int],
    capacity: int,
    *,
    max_nodes: int = 2_000_000,
) -> PackingResult:
    """Return a provably bin-minimal packing.

    Raises :class:`SolverLimitError` if the search exceeds *max_nodes*
    branch-and-bound nodes; at default settings instances of a few dozen
    items solve instantly, which is all the test-suite and E9 need.
    """
    validated, cap = validate_packing_inputs(tuple(sizes), capacity)
    order = sorted(range(len(validated)), key=lambda i: validated[i], reverse=True)

    incumbent = first_fit_decreasing(validated, cap)
    best_bins: list[list[int]] = [list(b) for b in incumbent.bins]
    best_count = incumbent.num_bins
    lower = best_lower_bound(validated, cap)
    if best_count == lower:
        return PackingResult(validated, cap, incumbent.bins, "exact")

    loads: list[int] = []
    assignment: list[list[int]] = []
    nodes = 0

    def search(pos: int) -> None:
        nonlocal best_count, best_bins, nodes
        nodes += 1
        if nodes > max_nodes:
            raise SolverLimitError(
                f"exact bin packing exceeded {max_nodes} nodes on {len(validated)} items"
            )
        if best_count == lower:
            return
        if pos == len(order):
            if len(assignment) < best_count:
                best_count = len(assignment)
                best_bins = [list(b) for b in assignment]
            return
        if len(assignment) >= best_count:
            # Even without opening new bins we cannot beat the incumbent.
            remaining = sum(validated[order[i]] for i in range(pos, len(order)))
            slack = sum(cap - load for load in loads)
            if remaining > slack:
                return
        index = order[pos]
        size = validated[index]
        tried_residuals: set[int] = set()
        for b, load in enumerate(loads):
            if load + size > cap:
                continue
            residual = cap - load
            if residual in tried_residuals:
                # Placing into any bin with the same residual is symmetric.
                continue
            tried_residuals.add(residual)
            loads[b] += size
            assignment[b].append(index)
            search(pos + 1)
            assignment[b].pop()
            loads[b] -= size
        if len(assignment) + 1 < best_count:
            loads.append(size)
            assignment.append([index])
            search(pos + 1)
            assignment.pop()
            loads.pop()

    search(0)
    result = PackingResult(
        sizes=validated,
        capacity=cap,
        bins=tuple(tuple(b) for b in best_bins),
        algorithm="exact",
    )
    result.validate()
    return result
