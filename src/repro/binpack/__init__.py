"""Bin-packing substrate.

The paper's different-sized-input schemes reduce reducer assignment to bin
packing (pack inputs into ``q/2``-capacity bins, then pair bins into
reducers).  This package provides the packing algorithms, exact solver and
lower bounds that those schemes — and the tests certifying them — build on.
"""

from repro.binpack.packing import Bin, PackingResult
from repro.binpack.ffd import first_fit, first_fit_decreasing
from repro.binpack.bfd import best_fit, best_fit_decreasing
from repro.binpack.nextfit import next_fit, worst_fit
from repro.binpack.exact import pack_exact
from repro.binpack.lower_bounds import (
    best_lower_bound,
    l1_bound,
    l2_bound,
    large_item_bound,
)

#: Registry of the heuristic packers by name, used by ablation benches.
HEURISTICS = {
    "first_fit": first_fit,
    "first_fit_decreasing": first_fit_decreasing,
    "best_fit": best_fit,
    "best_fit_decreasing": best_fit_decreasing,
    "next_fit": next_fit,
    "worst_fit": worst_fit,
}

__all__ = [
    "Bin",
    "PackingResult",
    "first_fit",
    "first_fit_decreasing",
    "best_fit",
    "best_fit_decreasing",
    "next_fit",
    "worst_fit",
    "pack_exact",
    "l1_bound",
    "l2_bound",
    "large_item_bound",
    "best_lower_bound",
    "HEURISTICS",
]
