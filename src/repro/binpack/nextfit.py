"""Next-Fit and Worst-Fit bin packing.

Next-fit is the simplest online heuristic (2-approximation, O(n)); worst-fit
spreads load across bins.  Both serve as cheap baselines in the packing
ablation: the paper's schemes only need *some* packing into ``q/2`` bins,
and these quantify how much the packing quality matters downstream.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.binpack.packing import Bin, PackingResult, validate_packing_inputs


def next_fit(sizes: Sequence[int], capacity: int) -> PackingResult:
    """Keep a single open bin; close it whenever the next item does not fit."""
    validated, cap = validate_packing_inputs(tuple(sizes), capacity)
    bins: list[Bin] = []
    current: Bin | None = None
    for index, size in enumerate(validated):
        if current is None or not current.fits(size):
            current = Bin(capacity=cap)
            bins.append(current)
        current.add(index, size)
    return PackingResult(
        sizes=validated,
        capacity=cap,
        bins=tuple(tuple(b.items) for b in bins),
        algorithm="next_fit",
    )


def worst_fit(sizes: Sequence[int], capacity: int) -> PackingResult:
    """Place each item into the feasible bin with the *most* residual capacity.

    Produces balanced bin loads, which translates into balanced reducer
    loads after pairing — useful when the downstream metric is parallelism
    rather than bin count.
    """
    validated, cap = validate_packing_inputs(tuple(sizes), capacity)
    bins: list[Bin] = []
    for index, size in enumerate(validated):
        best: Bin | None = None
        for bin_ in bins:
            if bin_.fits(size) and (best is None or bin_.residual > best.residual):
                best = bin_
        if best is None:
            best = Bin(capacity=cap)
            bins.append(best)
        best.add(index, size)
    return PackingResult(
        sizes=validated,
        capacity=cap,
        bins=tuple(tuple(b.items) for b in bins),
        algorithm="worst_fit",
    )
