"""Best-Fit and Best-Fit-Decreasing bin packing.

Best-fit places each item into the feasible bin with the *least* residual
capacity, keeping bins as full as possible.  It matches FFD's asymptotic
guarantee and often packs heterogeneous reducer inputs slightly tighter,
which the ablation bench (E8) compares.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.binpack.packing import Bin, PackingResult, validate_packing_inputs


def _best_fit_order(validated: tuple[int, ...], cap: int, order: Sequence[int], name: str) -> PackingResult:
    """Pack items following *order*, each into the tightest feasible bin."""
    bins: list[Bin] = []
    for index in order:
        size = validated[index]
        best: Bin | None = None
        for bin_ in bins:
            if bin_.fits(size) and (best is None or bin_.residual < best.residual):
                best = bin_
        if best is None:
            best = Bin(capacity=cap)
            bins.append(best)
        best.add(index, size)
    return PackingResult(
        sizes=validated,
        capacity=cap,
        bins=tuple(tuple(b.items) for b in bins),
        algorithm=name,
    )


def best_fit(sizes: Sequence[int], capacity: int) -> PackingResult:
    """Best-fit in the given item order."""
    validated, cap = validate_packing_inputs(tuple(sizes), capacity)
    return _best_fit_order(validated, cap, range(len(validated)), "best_fit")


def best_fit_decreasing(sizes: Sequence[int], capacity: int) -> PackingResult:
    """Best-fit after sorting items by size, largest first."""
    validated, cap = validate_packing_inputs(tuple(sizes), capacity)
    order = sorted(range(len(validated)), key=lambda i: validated[i], reverse=True)
    return _best_fit_order(validated, cap, order, "best_fit_decreasing")
