"""Core data model for the bin-packing substrate.

The different-sized-input schemes of the paper reduce reducer assignment to
bin packing: inputs are packed into *bins* of capacity ``q/2`` (A2A) or into
side-specific bins (X2Y), and bins are then paired into reducers.  This
module defines the bin and packing-result types shared by every packing
algorithm in :mod:`repro.binpack`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import InvalidInstanceError
from repro.utils.validation import check_positive_int


@dataclass
class Bin:
    """A single bin: a capacity plus the items (by index) placed in it.

    ``items`` stores the indices of the packed items in the *original* size
    list, so callers can always map a packing back to concrete inputs.
    """

    capacity: int
    items: list[int] = field(default_factory=list)
    load: int = 0

    def fits(self, size: int) -> bool:
        """Whether an item of *size* fits in the remaining capacity."""
        return self.load + size <= self.capacity

    def add(self, index: int, size: int) -> None:
        """Place item *index* of *size* into the bin.

        Raises :class:`ValueError` if the item does not fit; packing
        algorithms are expected to call :meth:`fits` first.
        """
        if not self.fits(size):
            raise ValueError(
                f"item {index} of size {size} does not fit: load {self.load}, "
                f"capacity {self.capacity}"
            )
        self.items.append(index)
        self.load += size

    @property
    def residual(self) -> int:
        """Remaining capacity."""
        return self.capacity - self.load


@dataclass(frozen=True)
class PackingResult:
    """Immutable outcome of a packing run.

    Attributes:
        sizes: the item sizes that were packed (validated copy).
        capacity: the bin capacity used.
        bins: tuple of item-index tuples, one per bin, in creation order.
        algorithm: name of the algorithm that produced the packing.
    """

    sizes: tuple[int, ...]
    capacity: int
    bins: tuple[tuple[int, ...], ...]
    algorithm: str

    @property
    def num_bins(self) -> int:
        """Number of bins used."""
        return len(self.bins)

    def bin_loads(self) -> list[int]:
        """Total size packed into each bin, in bin order."""
        return [sum(self.sizes[i] for i in bin_items) for bin_items in self.bins]

    def validate(self) -> None:
        """Check the packing is a partition of all items within capacity.

        Raises :class:`AssertionError` on violation; used by tests and by
        algorithms in their own self-checks.
        """
        seen: set[int] = set()
        for bin_items in self.bins:
            load = 0
            for index in bin_items:
                assert 0 <= index < len(self.sizes), f"item index {index} out of range"
                assert index not in seen, f"item {index} packed twice"
                seen.add(index)
                load += self.sizes[index]
            assert load <= self.capacity, (
                f"bin load {load} exceeds capacity {self.capacity}"
            )
        assert seen == set(range(len(self.sizes))), "packing is not a partition"


def validate_packing_inputs(sizes: list[int] | tuple[int, ...], capacity: object) -> tuple[tuple[int, ...], int]:
    """Shared argument validation for every packing algorithm.

    Returns the sizes as a tuple of positive ints and the capacity as an int,
    and rejects items larger than the capacity (they can never be packed).
    """
    validated = tuple(check_positive_int(s, f"sizes[{i}]") for i, s in enumerate(sizes))
    cap = check_positive_int(capacity, "capacity")
    for i, size in enumerate(validated):
        if size > cap:
            raise InvalidInstanceError(
                f"item {i} of size {size} exceeds bin capacity {cap}"
            )
    return validated, cap
