"""First-Fit and First-Fit-Decreasing bin packing.

FFD is the workhorse of the paper's different-sized-input schemes: packing
inputs into bins of capacity ``q/2`` with FFD and then pairing bins yields
the 2-approximation mapping schemas for A2A and X2Y.  FFD uses at most
``(11/9) OPT + 6/9`` bins, which is what makes the pairing schemes' reducer
count provably close to the lower bound.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.binpack.packing import Bin, PackingResult, validate_packing_inputs


def first_fit(sizes: Sequence[int], capacity: int) -> PackingResult:
    """Pack items in the given order, each into the first bin where it fits.

    Opens a new bin when no existing bin has room.  Runs in O(n * bins) —
    adequate for the instance sizes this library targets (tens of thousands
    of inputs).
    """
    validated, cap = validate_packing_inputs(tuple(sizes), capacity)
    bins: list[Bin] = []
    for index, size in enumerate(validated):
        placed = False
        for bin_ in bins:
            if bin_.fits(size):
                bin_.add(index, size)
                placed = True
                break
        if not placed:
            fresh = Bin(capacity=cap)
            fresh.add(index, size)
            bins.append(fresh)
    return PackingResult(
        sizes=validated,
        capacity=cap,
        bins=tuple(tuple(b.items) for b in bins),
        algorithm="first_fit",
    )


def first_fit_decreasing(sizes: Sequence[int], capacity: int) -> PackingResult:
    """First-Fit-Decreasing: sort by size descending, then first-fit.

    The classic 11/9-approximation.  The returned bins reference items by
    their indices in the *original* (unsorted) ``sizes`` sequence.
    """
    validated, cap = validate_packing_inputs(tuple(sizes), capacity)
    order = sorted(range(len(validated)), key=lambda i: validated[i], reverse=True)
    bins: list[Bin] = []
    for index in order:
        size = validated[index]
        placed = False
        for bin_ in bins:
            if bin_.fits(size):
                bin_.add(index, size)
                placed = True
                break
        if not placed:
            fresh = Bin(capacity=cap)
            fresh.add(index, size)
            bins.append(fresh)
    return PackingResult(
        sizes=validated,
        capacity=cap,
        bins=tuple(tuple(b.items) for b in bins),
        algorithm="first_fit_decreasing",
    )
