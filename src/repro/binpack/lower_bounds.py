"""Lower bounds on the number of bins needed.

These bounds serve two purposes: (1) they certify the quality of the packing
heuristics in tests, and (2) they feed the *reducer-count* lower bounds in
:mod:`repro.core.bounds`, because the paper's bin-pairing schemes inherit
their guarantees from the packing lower bounds.
"""

from __future__ import annotations

from collections.abc import Sequence
from math import ceil

from repro.binpack.packing import validate_packing_inputs


def l1_bound(sizes: Sequence[int], capacity: int) -> int:
    """The volume (L1) bound: ``ceil(sum(sizes) / capacity)``.

    Every bin holds at most ``capacity`` units, so at least this many bins
    are needed.  Always >= 1 for a non-empty instance.
    """
    validated, cap = validate_packing_inputs(tuple(sizes), capacity)
    if not validated:
        return 0
    return ceil(sum(validated) / cap)


def large_item_bound(sizes: Sequence[int], capacity: int) -> int:
    """Items larger than ``capacity/2`` are pairwise incompatible.

    No two of them share a bin, so the count of such items lower-bounds the
    bin count.
    """
    validated, cap = validate_packing_inputs(tuple(sizes), capacity)
    return sum(1 for s in validated if 2 * s > cap)


def l2_bound(sizes: Sequence[int], capacity: int) -> int:
    """Martello & Toth's L2 bound, maximized over all thresholds.

    For a threshold ``t`` in ``[0, capacity/2]``, partition items into
    big (> capacity - t), medium (in (capacity/2, capacity - t]) and small
    (in [t, capacity/2]).  Big items each need their own bin; medium items
    cannot share with each other; small volume that does not fit in the
    mediums' residual space forces extra bins.  L2 dominates L1 and the
    large-item bound.
    """
    validated, cap = validate_packing_inputs(tuple(sizes), capacity)
    if not validated:
        return 0
    best = l1_bound(validated, cap)
    thresholds = sorted({s for s in validated if 2 * s <= cap} | {0})
    for t in thresholds:
        big = [s for s in validated if s > cap - t]
        medium = [s for s in validated if cap - t >= s > cap // 2]
        small = [s for s in validated if cap // 2 >= s >= t]
        residual = sum(cap - s for s in medium)
        overflow = sum(small) - residual
        extra = ceil(overflow / cap) if overflow > 0 else 0
        best = max(best, len(big) + len(medium) + extra)
    return best


def best_lower_bound(sizes: Sequence[int], capacity: int) -> int:
    """The strongest of all implemented bounds."""
    return max(
        l1_bound(sizes, capacity),
        large_item_bound(sizes, capacity),
        l2_bound(sizes, capacity),
    )
