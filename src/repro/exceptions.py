"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidInstanceError(ReproError, ValueError):
    """An instance definition violates the model.

    Raised when input sizes are not positive integers, the reducer capacity
    is not a positive integer, or an instance is empty where the operation
    requires at least one input.
    """


class InfeasibleInstanceError(ReproError):
    """No mapping schema can exist for the instance.

    The canonical cause is a required pair of inputs whose combined size
    exceeds the reducer capacity ``q``: such a pair can never meet at any
    reducer, so condition (ii) of the mapping-schema definition is
    unsatisfiable.
    """

    def __init__(self, message: str, *, offending_pair: tuple[int, int] | None = None):
        super().__init__(message)
        #: The first pair of input indices found to be unsatisfiable, if any.
        self.offending_pair = offending_pair


class InvalidSchemaError(ReproError):
    """A mapping schema violates capacity or coverage constraints.

    Carries the structured :class:`repro.core.verify.VerificationReport`
    that describes every violation found, so callers can inspect exactly
    which reducers overflow and which pairs are uncovered.
    """

    def __init__(self, message: str, report: object | None = None):
        super().__init__(message)
        #: The verification report that triggered the error (may be ``None``).
        self.report = report


class CapacityExceededError(ReproError):
    """A simulated reducer received more input than its capacity ``q``.

    Raised by the MapReduce simulator when a reduce task's total value size
    exceeds the configured reducer capacity and strict enforcement is on.
    """

    def __init__(self, message: str, *, key: object = None, load: int = 0, capacity: int = 0):
        super().__init__(message)
        self.key = key
        self.load = load
        self.capacity = capacity


class SolverLimitError(ReproError):
    """An exact solver exceeded its configured node or size budget."""


class SpillError(ReproError):
    """The out-of-core shuffle could not spill or merge its data.

    Raised when a memory-budgeted run encounters keys that cannot be
    totally ordered (spill runs are merged in sorted-key order, so
    orderable keys are a hard requirement of the out-of-core path — the
    in-memory path tolerates unorderable keys by falling back to insertion
    order) or when a spill file is truncated or unreadable.
    """


class CodecError(ReproError):
    """A shuffle/spill block could not be encoded or decoded.

    Raised by :mod:`repro.engine.codec` for every failure mode — a buffer
    that is truncated, corrupt, or not a block at all; a typed key section
    whose contents contradict its header; an unpicklable value payload.
    Wrapping the underlying ``struct.error``/``EOFError``/pickle errors in
    one typed exception keeps the data plane's error surface stable: spill
    readers re-wrap it in :class:`SpillError`, and callers never see a
    bare low-level decoding exception.
    """


class AdmissionError(ReproError):
    """The job service refused to admit a job.

    Raised (or recorded on the rejected job) when a submission's resolved
    execution requirements oversubscribe the environment the service was
    admitted against — more workers than the machine's schedulable cores,
    or an estimated memory footprint beyond the available memory.  The
    human-readable reason is the exception message.
    """


class JobCancelledError(ReproError):
    """A job's result was requested but the job was cancelled.

    Raised by :meth:`repro.service.JobHandle.result` (and the service's
    ``result()``) when the job reached the ``cancelled`` terminal state,
    so callers waiting on a result see a typed error instead of a hang.
    """


class ResultEvictedError(ReproError, KeyError):
    """A finished job's result was evicted from the bounded result store.

    The job's status (state, timings, metrics summary) remains queryable;
    only the stored outputs are gone.  Subclasses ``KeyError`` because the
    lookup is by job id and callers may treat eviction as a missing key.
    """


class InjectedFaultError(ReproError):
    """A deterministic fault injector crashed this task attempt.

    Raised inside worker tasks by :class:`repro.faults.FaultInjector` when
    the seeded decision for ``(phase, task, attempt)`` says the attempt
    crashes.  Classified retryable by the default
    :class:`repro.faults.RetryPolicy` — an injected crash models a task
    failure whose rerun would succeed.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str = "crash",
        phase: str = "",
        task_index: int = -1,
        attempt: int = 0,
    ):
        super().__init__(message)
        self.kind = kind
        self.phase = phase
        self.task_index = task_index
        self.attempt = attempt


class TransientFaultError(InjectedFaultError, ConnectionError):
    """An injected *transient* fault (simulated flaky I/O).

    Subclasses :class:`ConnectionError` so it exercises the retry policy's
    generic transient-exception classification rather than the explicit
    injected-fault allowlist.
    """


class WorkerLostError(ReproError):
    """A pool worker died while tasks were in flight.

    Raised when the process backend detects a broken
    :class:`~concurrent.futures.ProcessPoolExecutor` (a worker was killed
    or segfaulted).  The backend rebuilds the pool before raising, so the
    next dispatch runs on fresh workers; under a retry policy the lost
    tasks — and only those — are replayed.
    """


class TaskTimeoutError(ReproError, TimeoutError):
    """A single task attempt exceeded the configured per-task timeout.

    The attempt is abandoned (its eventual result, if any, is discarded)
    and the task is retried under the run's retry policy.  Subclasses
    :class:`TimeoutError` so generic timeout handling also catches it.
    """


class DeadlineExceededError(ReproError, TimeoutError):
    """The whole run exceeded its per-job deadline.

    Unlike :class:`TaskTimeoutError` this is *not* retryable: the deadline
    bounds the run end to end, so the engine stops dispatching and raises
    as soon as the deadline passes between tasks or retry rounds.
    """


class TaskRetryExhaustedError(ReproError):
    """A task kept failing after every allowed retry attempt.

    Carries the attempt count and the last underlying error (also chained
    as ``__cause__``) so callers can distinguish "retries exhausted on
    worker loss" from "retries exhausted on injected crash".
    """

    def __init__(
        self, message: str, *, attempts: int = 0, last_error: BaseException | None = None
    ):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class UnknownMethodError(ReproError, ValueError):
    """A method name does not exist in the algorithm registry.

    Subclasses ``ValueError`` for backwards compatibility with callers that
    catch the historical exception type, while also being a
    :class:`ReproError` so front-ends (the CLI) can report it as user error
    without a blanket ``ValueError`` catch that would mask library bugs.
    """


class ServiceClosedError(ReproError, RuntimeError):
    """An operation was attempted on a closed service or scheduler.

    Raised by :class:`repro.service.JobService` and
    :class:`repro.service.JobScheduler` when work is submitted after
    ``close()``/``shutdown()``.  Subclasses ``RuntimeError`` for backwards
    compatibility with callers that catch the historical exception type.
    """


class UnknownJobError(ReproError, KeyError):
    """A job id is not known to the service or result store.

    Subclasses ``KeyError`` because lookups are by job id and existing
    callers treat a missing job as a missing key.
    """


class ResultWaitTimeoutError(ReproError, TimeoutError):
    """Waiting for a job result exceeded the caller's timeout.

    Raised by ``JobService.result(..., timeout=...)`` when the job has not
    reached a terminal state within the allotted time.  Distinct from
    :class:`TaskTimeoutError` (a single task attempt timed out) and
    :class:`DeadlineExceededError` (the run blew its deadline): here the
    job may still be running — only the caller stopped waiting.
    """
