"""Plain-text rendering of result tables and figure series.

The benchmark harness regenerates each paper table/figure as text: tables as
aligned ASCII grids, figures as labelled series (x, y per algorithm).  These
helpers keep that formatting in one place so every bench prints uniformly.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def _cell(value: object) -> str:
    """Format a single table cell."""
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render *rows* (a list of dicts) as an aligned ASCII table.

    Columns default to the keys of the first row, in insertion order.  Rows
    missing a column render an empty cell rather than raising, so sweeps with
    heterogeneous outputs still print.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [[_cell(row.get(c, "")) for c in cols] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(cols)]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(c.ljust(w) for c, w in zip(cols, widths))
    body = "\n".join(" | ".join(cell.ljust(w) for cell, w in zip(r, widths)) for r in rendered)
    parts = [title, header, sep, body] if title else [header, sep, body]
    return "\n".join(p for p in parts if p is not None)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a "figure" as a table with one x column and one column per series.

    This is the textual stand-in for the paper's plots: the x axis is the
    swept parameter and each series is one algorithm/metric.
    """
    rows = []
    for i, x in enumerate(x_values):
        row: dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = values[i] if i < len(values) else ""
        rows.append(row)
    return format_table(rows, columns=[x_label, *series.keys()], title=title)
