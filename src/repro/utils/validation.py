"""Input validation helpers shared across the library.

The model in the paper works with *sizes*: positive quantities attached to
inputs, bounded per reducer by the capacity ``q``.  We represent sizes as
positive integers (abstract size units) so capacity checks are exact; these
helpers centralize the coercion and error reporting.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.exceptions import InvalidInstanceError


def check_positive_int(value: object, name: str) -> int:
    """Coerce *value* to a positive ``int`` or raise :class:`InvalidInstanceError`.

    Accepts ints and integer-valued floats/numpy scalars; rejects bools,
    non-integral floats, zero and negatives.
    """
    if isinstance(value, bool):
        raise InvalidInstanceError(f"{name} must be a positive integer, got bool {value!r}")
    try:
        as_int = int(value)  # type: ignore[call-overload]
    except (TypeError, ValueError) as exc:
        raise InvalidInstanceError(f"{name} must be a positive integer, got {value!r}") from exc
    if as_int != value:
        raise InvalidInstanceError(f"{name} must be integral, got {value!r}")
    if as_int <= 0:
        raise InvalidInstanceError(f"{name} must be positive, got {as_int}")
    return as_int


def check_sizes(sizes: Iterable[object], name: str = "sizes") -> tuple[int, ...]:
    """Validate an iterable of input sizes and return it as a tuple of ints.

    Raises :class:`InvalidInstanceError` if the iterable is empty or any
    element is not a positive integer.
    """
    validated = tuple(check_positive_int(s, f"{name}[{i}]") for i, s in enumerate(sizes))
    if not validated:
        raise InvalidInstanceError(f"{name} must contain at least one input size")
    return validated


def check_capacity(q: object, sizes: Sequence[int] = ()) -> int:
    """Validate the reducer capacity ``q`` against the given input sizes.

    Every input must individually fit in a reducer (``w_i <= q``); otherwise
    no assignment at all is possible and the instance is malformed rather
    than merely infeasible.
    """
    capacity = check_positive_int(q, "q")
    for i, size in enumerate(sizes):
        if size > capacity:
            raise InvalidInstanceError(
                f"input {i} has size {size} > reducer capacity {capacity}; "
                "it cannot be assigned to any reducer"
            )
    return capacity
