"""Shared utilities: validation helpers, seeded RNG plumbing, ASCII tables."""

from repro.utils.validation import (
    check_capacity,
    check_positive_int,
    check_sizes,
)
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.tables import format_series, format_table

__all__ = [
    "check_capacity",
    "check_positive_int",
    "check_sizes",
    "make_rng",
    "spawn_rngs",
    "format_series",
    "format_table",
]
