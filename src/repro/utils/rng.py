"""Seeded random-number-generator plumbing.

Every stochastic component of the library accepts either an integer seed or
an already-constructed :class:`numpy.random.Generator`.  Routing everything
through :func:`make_rng` keeps experiments reproducible from a single stated
seed, which EXPERIMENTS.md relies on.
"""

from __future__ import annotations

import numpy as np

SeedLike = int | np.random.Generator | None


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    * ``None``   -> a fresh nondeterministic generator,
    * ``int``    -> ``np.random.default_rng(seed)``,
    * Generator  -> returned unchanged (so callers can thread one RNG).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive *count* independent child generators from *seed*.

    Uses the SeedSequence spawning protocol so the children are statistically
    independent regardless of how many are drawn, which makes parameter
    sweeps order-insensitive.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    root = np.random.SeedSequence(seed if isinstance(seed, int) else None)
    return [np.random.default_rng(child) for child in root.spawn(count)]
