"""The planner's output: an inspectable, serializable execution plan.

A :class:`Plan` records everything the planner decided and why: the spec
it planned for, every candidate method with its cost scores (or the
reason it was skipped or failed), the chosen method with a one-line
rationale, the lower bounds the choice was judged against, and the
:class:`~repro.engine.config.ExecutionConfig` resolved from the
environment probe.  Plans round-trip through JSON (``repro plan
--json-out`` → :meth:`Plan.from_json`), and :meth:`Plan.schema`
deterministically rebuilds the chosen mapping schema from the spec, so a
deserialized plan is as executable as a fresh one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any, Mapping

from repro.engine.config import ExecutionConfig
from repro.exceptions import InvalidInstanceError
from repro.planner.environment import Environment
from repro.planner.spec import SPEC_FORMAT_VERSION, JobSpec

#: Candidate states: scored (costed and eligible), skipped (not attempted,
#: e.g. exact above the size threshold), failed (attempted but raised).
CANDIDATE_STATUSES = ("scored", "skipped", "failed")


@dataclass(frozen=True)
class CandidateScore:
    """One method's scorecard inside a plan.

    ``objective_value`` is the candidate's value under the spec's
    objective (reducers, communication, or LPT makespan) — the number the
    planner minimized; the remaining cost fields are reported for every
    scored candidate regardless of objective so ``--explain`` can show
    the full tradeoff table.
    """

    method: str
    status: str
    reason: str = ""
    num_reducers: int | None = None
    communication_cost: int | None = None
    replication_rate: float | None = None
    max_load: int | None = None
    makespan: float | None = None
    objective_value: float | None = None

    def __post_init__(self) -> None:
        if self.status not in CANDIDATE_STATUSES:
            raise InvalidInstanceError(
                f"unknown candidate status {self.status!r}; choose from "
                f"{list(CANDIDATE_STATUSES)}"
            )

    def as_row(self) -> dict[str, Any]:
        """Dict form for table rendering and the JSON wire format."""
        return {
            "method": self.method,
            "status": self.status,
            "num_reducers": self.num_reducers,
            "communication_cost": self.communication_cost,
            "replication_rate": self.replication_rate,
            "max_load": self.max_load,
            "makespan": self.makespan,
            "objective_value": self.objective_value,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CandidateScore":
        """Rebuild from :meth:`as_row` form, ignoring unknown fields."""
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in payload.items() if k in known}
        kwargs.setdefault("method", "?")
        kwargs.setdefault("status", "failed")
        if kwargs.get("reason") is None:
            kwargs["reason"] = ""
        return cls(**kwargs)


@dataclass(frozen=True)
class Plan:
    """A fully resolved execution plan for one :class:`JobSpec`.

    Attributes:
        spec: the spec this plan answers.
        chosen: registry name of the winning method.
        rationale: one line explaining the choice (structural rule for
            the fast path, objective comparison for full planning).
        execution: the resolved engine configuration.
        candidates: every candidate considered, scored or annotated.
        environment: the environment snapshot the plan was resolved for.
        lower_bounds: problem lower bounds (``num_reducers``,
            ``communication_cost``) the chosen plan can be judged against.
        mode: ``"fast-path"``, ``"planned"``, or ``"pinned"``.
    """

    spec: JobSpec
    chosen: str
    rationale: str
    execution: ExecutionConfig
    candidates: tuple[CandidateScore, ...]
    environment: Environment
    lower_bounds: dict[str, int] = field(default_factory=dict)
    mode: str = "planned"

    def candidate(self, method: str) -> CandidateScore:
        """Look up one candidate's scorecard by method name."""
        for score in self.candidates:
            if score.method == method:
                return score
        raise KeyError(method)

    @property
    def chosen_score(self) -> CandidateScore:
        """The winning candidate's scorecard."""
        return self.candidate(self.chosen)

    def schema(self):
        """The chosen mapping schema, rebuilt deterministically from the spec.

        Cached on first call; a plan loaded from JSON rebuilds the schema
        by running the chosen method on the spec's instance, so
        serialization never has to carry reducer lists.
        """
        cached = getattr(self, "_schema_cache", None)
        if cached is None:
            from repro.planner.planner import build_schema

            cached = build_schema(self.spec, self.chosen)
            object.__setattr__(self, "_schema_cache", cached)
        return cached

    # -- rendering ------------------------------------------------------

    def candidate_rows(self, *, explain: bool = False) -> list[dict[str, Any]]:
        """Rows for :func:`repro.utils.tables.format_table`.

        The compact form (default) shows method, status, and the
        objective value; ``explain=True`` adds every cost column.
        """
        rows = []
        for score in self.candidates:
            row = score.as_row()
            if not explain:
                row = {
                    "method": row["method"],
                    "status": row["status"],
                    "objective_value": row["objective_value"],
                    "reason": row["reason"],
                }
            row["chosen"] = "*" if score.method == self.chosen else ""
            rows.append(row)
        return rows

    def describe(self, *, explain: bool = False) -> str:
        """Human-readable plan summary (what ``repro plan`` prints)."""
        from repro.utils.tables import format_table

        exec_bits = [f"backend={self.execution.backend}"]
        if self.execution.num_workers is not None:
            exec_bits.append(f"workers={self.execution.num_workers}")
        if self.execution.num_reduce_tasks is not None:
            exec_bits.append(f"reduce_tasks={self.execution.num_reduce_tasks}")
        if self.execution.map_chunk_size is not None:
            exec_bits.append(f"chunk={self.execution.map_chunk_size}")
        if self.execution.memory_budget is not None:
            exec_bits.append(f"memory_budget={self.execution.memory_budget}")
        bounds = ", ".join(
            f"{name} >= {value}" for name, value in sorted(self.lower_bounds.items())
        )
        lines = [
            f"kind      : {self.spec.kind} "
            f"({self.spec.num_inputs} inputs, q={self.spec.q})",
            f"objective : {self.spec.objective}",
            f"mode      : {self.mode}",
            f"chosen    : {self.chosen}",
            f"rationale : {self.rationale}",
            f"execution : {', '.join(exec_bits)}",
        ]
        if bounds:
            lines.append(f"bounds    : {bounds}")
        lines.append(
            format_table(self.candidate_rows(explain=explain), title="candidates")
        )
        return "\n".join(lines)

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict form (schema omitted — rebuilt from the spec)."""
        if not isinstance(self.execution.backend, str):
            raise InvalidInstanceError(
                "only plans with a named backend serialize; got a live "
                f"{type(self.execution.backend).__name__} instance"
            )
        return {
            "version": SPEC_FORMAT_VERSION,
            "spec": self.spec.to_dict(),
            "chosen": self.chosen,
            "rationale": self.rationale,
            "mode": self.mode,
            "execution": {
                "backend": self.execution.backend,
                "num_workers": self.execution.num_workers,
                "map_chunk_size": self.execution.map_chunk_size,
                "num_reduce_tasks": self.execution.num_reduce_tasks,
                "memory_budget": self.execution.memory_budget,
                "spill_dir": self.execution.spill_dir,
            },
            "environment": self.environment.to_dict(),
            "lower_bounds": dict(self.lower_bounds),
            "candidates": [score.as_row() for score in self.candidates],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Plan":
        """Rebuild a plan from its :meth:`to_dict` form (strict loading)."""
        if not isinstance(payload, Mapping):
            raise InvalidInstanceError(
                f"plan payload must be a JSON object, got {type(payload).__name__}"
            )
        version = payload.get("version", SPEC_FORMAT_VERSION)
        if version != SPEC_FORMAT_VERSION:
            raise InvalidInstanceError(
                f"unsupported plan format version {version!r} "
                f"(this library reads version {SPEC_FORMAT_VERSION})"
            )
        for required in ("spec", "chosen", "execution"):
            if required not in payload:
                raise InvalidInstanceError(
                    f"plan payload is missing {required!r}"
                )
        execution = payload["execution"]
        if not isinstance(execution, Mapping):
            raise InvalidInstanceError("plan 'execution' must be a JSON object")
        return cls(
            spec=JobSpec.from_dict(payload["spec"]),
            chosen=payload["chosen"],
            rationale=payload.get("rationale", ""),
            mode=payload.get("mode", "planned"),
            execution=ExecutionConfig(
                backend=execution.get("backend", "serial"),
                num_workers=execution.get("num_workers"),
                map_chunk_size=execution.get("map_chunk_size"),
                num_reduce_tasks=execution.get("num_reduce_tasks"),
                memory_budget=execution.get("memory_budget"),
                spill_dir=execution.get("spill_dir"),
            ),
            environment=Environment.from_dict(payload.get("environment", {})),
            lower_bounds={
                str(k): int(v)
                for k, v in (payload.get("lower_bounds") or {}).items()
            },
            candidates=tuple(
                CandidateScore.from_dict(row)
                for row in payload.get("candidates", [])
            ),
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        """The plan as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Plan":
        """Parse a plan from :meth:`to_json` output (bad JSON is wrapped)."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise InvalidInstanceError(f"plan is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)
