"""Execution-environment probe: what the planner knows about the machine.

The planner's execution-configuration rules key on two facts: how many
workers can actually run at once, and how much memory is available for
the shuffle.  :meth:`Environment.detect` measures both (worker count via
the scheduling affinity, memory via ``/proc/meminfo`` where it exists);
tests and benchmarks construct :class:`Environment` explicitly so plans
are reproducible on any machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.engine.backends import available_workers
from repro.exceptions import InvalidInstanceError


def _probe_available_memory() -> int | None:
    """Available memory in bytes from ``/proc/meminfo``; ``None`` when unknown."""
    try:
        with open("/proc/meminfo") as handle:
            for line in handle:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-Linux
        return None
    return None  # pragma: no cover - MemAvailable missing


@dataclass(frozen=True)
class Environment:
    """A snapshot of the execution environment the planner plans for.

    Attributes:
        num_workers: workers the machine can run at once (>= 1).
        memory_bytes: available memory in bytes, or ``None`` when the
            probe could not measure it (the planner then never sets a
            memory budget on its own).
    """

    num_workers: int
    memory_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise InvalidInstanceError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.memory_bytes is not None and self.memory_bytes <= 0:
            raise InvalidInstanceError(
                f"memory_bytes must be positive, got {self.memory_bytes}"
            )

    @classmethod
    def detect(cls) -> "Environment":
        """Probe the current machine (affinity-aware cores, MemAvailable)."""
        return cls(
            num_workers=available_workers(),
            memory_bytes=_probe_available_memory(),
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict form."""
        return {
            "num_workers": self.num_workers,
            "memory_bytes": self.memory_bytes,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Environment":
        """Rebuild from :meth:`to_dict` form."""
        return cls(
            num_workers=payload.get("num_workers", 1),
            memory_bytes=payload.get("memory_bytes"),
        )
