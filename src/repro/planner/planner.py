"""Cost-based planning: enumerate, score, choose, resolve execution.

:func:`plan` is the pipeline's middle stage: it takes a declarative
:class:`~repro.planner.spec.JobSpec` plus an
:class:`~repro.planner.environment.Environment` and produces an
inspectable :class:`~repro.planner.plan.Plan`.  Three modes, selected by
``spec.method``:

* ``"auto"`` — the **fast path**: the structural dispatch heuristic from
  :mod:`repro.planner.fastpath` (identical choice to the historical
  ``solve_*(..., method="auto")``), scoring only the candidates the rule
  compares.
* ``None`` — **full planning**: every method in the registries
  (:data:`~repro.core.selector.A2A_METHODS` /
  :data:`~repro.core.selector.X2Y_METHODS` /
  :data:`MULTIWAY_METHODS`) is built and scored with
  :func:`repro.core.costs.summarize`-style metrics plus an LPT makespan
  estimate on the environment's worker pool; the winner minimizes the
  spec's objective.  The exponential ``exact`` solvers are skipped above
  a size threshold, and a method that raises is recorded as failed, not
  fatal.
* a method name — **pinned**: that method, still scored, so the plan
  remains inspectable.

Every plan also resolves an :class:`~repro.engine.config.ExecutionConfig`
from the environment via :func:`resolve_execution_config` — the rules are
deterministic and documented on that function (and in the README's knob
table), so a plan is reproducible given the same spec and environment.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping, Protocol

from repro.core.bounds import (
    a2a_communication_lower_bound,
    a2a_reducer_lower_bound,
    x2y_communication_lower_bound,
    x2y_reducer_lower_bound,
)
from repro.core.instance import A2AInstance, X2YInstance
from repro.core.multiway import (
    MultiwayInstance,
    multiway_bin_combining,
    multiway_reducer_lower_bound,
)
from repro.core.selector import A2A_METHODS, X2Y_METHODS, require_method
from repro.engine.config import ExecutionConfig
from repro.exceptions import InvalidInstanceError, ReproError
from repro.mapreduce.cluster import schedule_loads
from repro.obs.trace import NULL_TRACER, Tracer, as_tracer
from repro.planner.environment import Environment
from repro.planner.fastpath import fast_path
from repro.planner.plan import CandidateScore, Plan
from repro.planner.spec import SPEC_FORMAT_VERSION, JobSpec

#: Multiway methods (the pairwise kinds use the selector registries).
MULTIWAY_METHODS = {"bin_combining": multiway_bin_combining}

#: The exact A2A solver's branch-and-bound is exponential in the input
#: count; above this many inputs the planner skips it instead of burning
#: the node budget (matches the solver's documented m <= ~10-12 range).
EXACT_A2A_INPUT_LIMIT = 10

#: The exact X2Y solver is tractable for roughly m * n <= 30 cross pairs.
EXACT_X2Y_PAIR_LIMIT = 30

#: The greedy set-cover heuristics re-scan all uncovered pairs per
#: reducer (quadratic-and-worse in the input count); above this many
#: inputs the planner skips them — on instances that large they are
#: never competitive on planning latency, which full planning pays even
#: for candidates it does not choose.
GREEDY_INPUT_LIMIT = 64

#: Assumed bytes shipped per size unit when translating a schema's
#: communication cost into an estimated shuffle footprint.
BYTES_PER_SIZE_UNIT = 256

#: The planner lets the shuffle use at most this fraction of available
#: memory before it imposes a spill budget.
MEMORY_FRACTION = 0.25

#: Smallest memory budget (in buffered pairs) the planner will impose.
MIN_MEMORY_BUDGET = 1024


def method_registry(kind: str) -> Mapping[str, Any]:
    """The method registry for a problem kind."""
    if kind == "a2a":
        return A2A_METHODS
    if kind == "x2y":
        return X2Y_METHODS
    if kind == "multiway":
        return MULTIWAY_METHODS
    raise InvalidInstanceError(f"unknown problem kind {kind!r}")


def build_schema(spec: JobSpec, method: str):
    """Build the schema *method* produces for *spec*'s instance.

    The single rebuild point used by :meth:`Plan.schema`, so a plan
    loaded from JSON reconstructs exactly the schema the planner chose.
    """
    registry = method_registry(spec.kind)
    require_method(spec.kind.upper() if spec.kind != "multiway" else "multiway",
                   method, registry)
    return registry[method](spec.instance())


def _skip_reason(
    name: str, instance: A2AInstance | X2YInstance | MultiwayInstance
) -> str | None:
    """Why *name* should not be attempted on this instance, or ``None``.

    Gates the methods whose construction cost explodes with instance
    size: full planning builds every candidate schema, so an expensive
    candidate taxes planning latency even when it loses the comparison.
    """
    if name == "exact":
        if isinstance(instance, A2AInstance) and instance.m > EXACT_A2A_INPUT_LIMIT:
            return (
                f"m={instance.m} exceeds the exact-search limit "
                f"{EXACT_A2A_INPUT_LIMIT} (branch-and-bound is exponential)"
            )
        if (
            isinstance(instance, X2YInstance)
            and instance.num_pairs > EXACT_X2Y_PAIR_LIMIT
        ):
            return (
                f"m*n={instance.num_pairs} exceeds the exact-search limit "
                f"{EXACT_X2Y_PAIR_LIMIT} cross pairs"
            )
        return None
    if name == "greedy":
        num_inputs = (
            instance.m + instance.n
            if isinstance(instance, X2YInstance)
            else instance.m
        )
        if num_inputs > GREEDY_INPUT_LIMIT:
            return (
                f"{num_inputs} inputs exceed the greedy-cover limit "
                f"{GREEDY_INPUT_LIMIT} (pair re-scans dominate planning time)"
            )
        return None
    return None


def score_schema(
    method: str, schema: Any, env: Environment, objective: str
) -> CandidateScore:
    """Score one built schema under *objective* for *env*.

    Works for all three schema kinds (only ``loads`` / ``num_reducers`` /
    ``communication_cost`` / the instance totals are touched).  The
    makespan is the LPT schedule of the reducer loads on the
    environment's worker pool — the same model the cluster simulator
    uses — so ``min-makespan`` plans reflect finite parallelism, not
    just reducer counts.
    """
    loads = schema.loads
    num_reducers = schema.num_reducers
    comm = schema.communication_cost
    total = schema.instance.total_size
    makespan = float(
        schedule_loads(loads, env.num_workers).makespan if loads else 0.0
    )
    if objective == "min-reducers":
        objective_value = float(num_reducers)
    elif objective == "min-communication":
        objective_value = float(comm)
    else:  # min-makespan
        objective_value = makespan
    return CandidateScore(
        method=method,
        status="scored",
        num_reducers=num_reducers,
        communication_cost=comm,
        replication_rate=(comm / total) if total else 0.0,
        max_load=max(loads, default=0),
        makespan=makespan,
        objective_value=objective_value,
    )


def _lower_bounds(
    instance: A2AInstance | X2YInstance | MultiwayInstance,
) -> dict[str, int]:
    """Problem lower bounds the plan reports next to its choice."""
    if isinstance(instance, A2AInstance):
        return {
            "num_reducers": a2a_reducer_lower_bound(instance),
            "communication_cost": a2a_communication_lower_bound(instance),
        }
    if isinstance(instance, X2YInstance):
        return {
            "num_reducers": x2y_reducer_lower_bound(instance),
            "communication_cost": x2y_communication_lower_bound(instance),
        }
    return {"num_reducers": multiway_reducer_lower_bound(instance)}


def resolve_execution_config(
    env: Environment,
    *,
    num_reducers: int,
    communication_cost: int,
) -> ExecutionConfig:
    """Resolve engine knobs from the environment and the chosen schema.

    The rules (also documented in the README's knob table):

    * ``backend`` — ``serial`` on a single-worker machine or for a
      single-reducer schema (nothing to parallelize); ``threads``
      otherwise (shared memory, no pickling constraints on user code).
    * ``num_workers`` — ``min(env workers, reducer count)``; ``None``
      (machine default) when serial.
    * ``map_chunk_size`` — always ``None``: the engine's adaptive
      chunking (≈4 tasks per worker) is the right default everywhere.
    * ``num_reduce_tasks`` — ``min(reducer count, 4 × workers)``;
      ``None`` (adaptive) when serial.
    * ``memory_budget`` — set only when the estimated shuffle footprint
      (``communication_cost ×`` :data:`BYTES_PER_SIZE_UNIT`) exceeds
      :data:`MEMORY_FRACTION` of available memory; the budget divides
      that memory share among the workers, floored at
      :data:`MIN_MEMORY_BUDGET` pairs.  Never set when the environment
      could not measure memory.
    * ``spill_dir`` — always ``None`` (system temporary directory).
    """
    if env.num_workers <= 1 or num_reducers <= 1:
        backend = "serial"
        workers: int | None = None
        reduce_tasks: int | None = None
    else:
        backend = "threads"
        workers = min(env.num_workers, num_reducers)
        reduce_tasks = min(num_reducers, workers * 4)
    memory_budget: int | None = None
    if env.memory_bytes is not None:
        estimated_bytes = communication_cost * BYTES_PER_SIZE_UNIT
        shuffle_share = int(env.memory_bytes * MEMORY_FRACTION)
        if estimated_bytes > shuffle_share:
            per_worker = shuffle_share // BYTES_PER_SIZE_UNIT // (workers or 1)
            memory_budget = max(MIN_MEMORY_BUDGET, per_worker)
    return ExecutionConfig(
        backend=backend,
        num_workers=workers,
        num_reduce_tasks=reduce_tasks,
        memory_budget=memory_budget,
    )


class PlanCacheProtocol(Protocol):
    """What :func:`plan` needs from a plan cache.

    Deliberately minimal (``get``/``put`` keyed by fingerprint string) so
    the planner stays independent of any particular cache implementation;
    :class:`repro.service.plan_cache.PlanCache` is the bounded LRU the job
    service plugs in here.
    """

    def get(self, key: str) -> Plan | None:
        ...  # pragma: no cover - protocol

    def put(self, key: str, plan: Plan) -> None:
        ...  # pragma: no cover - protocol


def plan_fingerprint(spec: JobSpec, env: Environment) -> str:
    """Content fingerprint of a planning request (hex SHA-256).

    Planning is deterministic given the spec and the environment snapshot
    (method enumeration order is sorted, scoring is pure arithmetic, and
    the resolved execution config depends only on ``env``), so this
    fingerprint is a sound cache key: equal fingerprints imply
    byte-identical :meth:`Plan.to_json` output.
    """
    payload = {
        "version": SPEC_FORMAT_VERSION,
        "spec": spec.to_dict(),
        "environment": env.to_dict(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def plan_cached(
    spec: JobSpec,
    env: Environment | None = None,
    *,
    cache: PlanCacheProtocol,
    tracer: Tracer | None = None,
) -> tuple[Plan, str, bool]:
    """Plan through *cache*; returns ``(plan, fingerprint, cache_hit)``.

    The single get-or-plan-and-put implementation: :func:`plan` and the
    job service both funnel through here, so cache keying can never
    diverge between them.  A hit skips enumeration and scoring entirely
    and returns the cached plan (plans are immutable, so sharing one
    object across callers is safe).  With a *tracer*, the whole lookup
    (or lookup-plus-planning) is one ``plan`` span carrying the
    ``cache_hit`` outcome.
    """
    tracer = as_tracer(tracer)
    if env is None:
        env = Environment.detect()
    with tracer.span("plan", category="planner", kind=spec.kind) as span:
        key = plan_fingerprint(spec, env)
        cached = cache.get(key)
        if cached is not None:
            span.set("cache_hit", True)
            return cached, key, True
        span.set("cache_hit", False)
        result = _plan_uncached(spec, env, tracer)
        cache.put(key, result)
        return result, key, False


def plan(
    spec: JobSpec,
    env: Environment | None = None,
    *,
    cache: PlanCacheProtocol | None = None,
    tracer: Tracer | None = None,
) -> Plan:
    """Turn a declarative spec into an inspectable, executable plan.

    With a *cache*, planning goes through :func:`plan_cached` (misses
    are planned normally and stored back).  A *tracer* records the
    planning work as a ``plan`` span with per-candidate child spans.
    """
    if cache is not None:
        return plan_cached(spec, env, cache=cache, tracer=tracer)[0]
    if env is None:
        env = Environment.detect()
    tracer = as_tracer(tracer)
    with tracer.span("plan", category="planner", kind=spec.kind) as span:
        span.set("cache_hit", False)
        return _plan_uncached(spec, env, tracer)


def _plan_uncached(
    spec: JobSpec, env: Environment, tracer: Tracer = NULL_TRACER
) -> Plan:
    """The actual planning pipeline (enumerate, score, choose, resolve)."""
    instance = spec.instance()
    instance.check_feasible()
    registry = method_registry(spec.kind)
    lower_bounds = _lower_bounds(instance)

    schemas: dict[str, Any] = {}
    candidates: list[CandidateScore] = []

    if spec.method == "auto":
        chosen, considered, rule = fast_path(instance)
        for name, schema in considered.items():
            with tracer.span(f"score:{name}", category="planner"):
                schemas[name] = schema
                candidates.append(
                    score_schema(name, schema, env, spec.objective)
                )
        rationale = f"fast path: {rule}"
        mode = "fast-path"
    elif spec.method is not None:
        kind_label = spec.kind.upper() if spec.kind != "multiway" else "multiway"
        require_method(kind_label, spec.method, registry)
        schema = registry[spec.method](instance)
        schemas[spec.method] = schema
        candidates.append(
            score_schema(spec.method, schema, env, spec.objective)
        )
        chosen = spec.method
        rationale = f"method pinned to {spec.method!r} by the spec"
        mode = "pinned"
    else:
        for name in sorted(registry):
            skip = _skip_reason(name, instance)
            if skip is not None:
                candidates.append(
                    CandidateScore(method=name, status="skipped", reason=skip)
                )
                continue
            with tracer.span(f"score:{name}", category="planner") as cspan:
                try:
                    schema = registry[name](instance)
                except ReproError as error:
                    cspan.set("status", "failed")
                    candidates.append(
                        CandidateScore(
                            method=name, status="failed", reason=str(error)
                        )
                    )
                    continue
                schemas[name] = schema
                candidates.append(
                    score_schema(name, schema, env, spec.objective)
                )
        scored = [c for c in candidates if c.status == "scored"]
        if not scored:
            reasons = "; ".join(
                f"{c.method}: {c.reason}" for c in candidates
            )
            raise InvalidInstanceError(
                f"no candidate method produced a schema ({reasons})"
            )
        best = min(
            scored,
            key=lambda c: (
                c.objective_value,
                c.num_reducers,
                c.communication_cost,
                c.method,
            ),
        )
        chosen = best.method
        bound_name = {
            "min-reducers": "num_reducers",
            "min-communication": "communication_cost",
        }.get(spec.objective)
        bound_note = (
            f", lower bound {lower_bounds[bound_name]}"
            if bound_name and bound_name in lower_bounds
            else ""
        )
        rationale = (
            f"{spec.objective}: {chosen} scores "
            f"{best.objective_value:g}{bound_note}; "
            f"best of {len(scored)} scored candidates"
        )
        mode = "planned"

    chosen_score = next(c for c in candidates if c.method == chosen)
    execution = resolve_execution_config(
        env,
        num_reducers=chosen_score.num_reducers or 0,
        communication_cost=chosen_score.communication_cost or 0,
    )
    result = Plan(
        spec=spec,
        chosen=chosen,
        rationale=rationale,
        execution=execution,
        candidates=tuple(candidates),
        environment=env,
        lower_bounds=lower_bounds,
        mode=mode,
    )
    if chosen in schemas:
        object.__setattr__(result, "_schema_cache", schemas[chosen])
    return result


def plan_schema(spec: JobSpec, env: Environment | None = None):
    """Convenience: plan a spec and return just the chosen schema."""
    return plan(spec, env).schema()
