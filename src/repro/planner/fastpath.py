"""The planner's fast path: structural method choice without cost sweeps.

This is the paper's dispatch heuristic — previously the body of
``solve_a2a(..., method="auto")`` / ``solve_x2y(..., method="auto")`` in
:mod:`repro.core.selector` — reimplemented as a planner stage that also
reports *which* candidates it compared and *why* it chose, so a fast-path
:class:`~repro.planner.plan.Plan` is as inspectable as a fully enumerated
one.  The selector keeps ``method="auto"`` as a thin compatibility
wrapper over these functions, so the historical choice is pinned in one
place.

The rules, keyed on instance structure exactly as the paper presents the
algorithms:

* **A2A** — uniform sizes: the better of the plain grouping scheme and
  the covering-design scheme; any input above ``q // 2``: the big/small
  scheme; otherwise bin-pairing.
* **X2Y** — uniform on both sides: the equal-sized grid; big inputs
  present: the better of the big/small scheme and the best-split grid;
  otherwise the best-split grid.
* **Multiway** — the bin-combining scheme (the only registered method).

Ties between compared candidates keep the first listed method, matching
the historical ``min()`` behavior.
"""

from __future__ import annotations

from typing import Any

from repro.core.a2a import (
    big_small,
    equal_sized_grouping,
    ffd_pairing,
    grouped_covering,
)
from repro.core.instance import A2AInstance, X2YInstance
from repro.core.multiway import MultiwayInstance, multiway_bin_combining
from repro.core.x2y import best_split_grid, big_small_x2y, equal_sized_grid


#: A fast-path decision: chosen registry method name, the schemas of every
#: candidate the rule compared (name -> schema, in comparison order), and a
#: one-line statement of the structural rule that fired.
FastPathChoice = tuple[str, dict[str, Any], str]


def fast_path_a2a(instance: A2AInstance) -> FastPathChoice:
    """Structural A2A dispatch (the historical ``method="auto"`` choice)."""
    if len(set(instance.sizes)) == 1:
        considered = {
            "equal_grouping": equal_sized_grouping(instance),
            "grouped_covering": grouped_covering(instance),
        }
        chosen = min(considered, key=lambda name: considered[name].num_reducers)
        return (
            chosen,
            considered,
            "uniform sizes: better of plain grouping and covering design",
        )
    half = instance.q // 2
    if any(w > half for w in instance.sizes):
        return (
            "big_small",
            {"big_small": big_small(instance)},
            f"big inputs present (> q//2 = {half}): big/small scheme",
        )
    return (
        "bin_pairing",
        {"bin_pairing": ffd_pairing(instance)},
        "mixed sizes, no big inputs: bin-pairing scheme",
    )


def fast_path_x2y(instance: X2YInstance) -> FastPathChoice:
    """Structural X2Y dispatch (the historical ``method="auto"`` choice)."""
    if len(set(instance.x_sizes)) == 1 and len(set(instance.y_sizes)) == 1:
        return (
            "equal_grid",
            {"equal_grid": equal_sized_grid(instance)},
            "uniform sizes on both sides: equal-sized grid",
        )
    half = instance.q // 2
    has_big = any(w > half for w in instance.x_sizes) or any(
        w > half for w in instance.y_sizes
    )
    if has_big:
        considered = {
            "big_small": big_small_x2y(instance),
            "best_split_grid": best_split_grid(instance),
        }
        chosen = min(considered, key=lambda name: considered[name].num_reducers)
        return (
            chosen,
            considered,
            f"big inputs present (> q//2 = {half}): better of big/small "
            "and best-split grid",
        )
    return (
        "best_split_grid",
        {"best_split_grid": best_split_grid(instance)},
        "mixed sizes, no big inputs: best-split grid",
    )


def fast_path_multiway(instance: MultiwayInstance) -> FastPathChoice:
    """Multiway dispatch: the bin-combining scheme is the only method."""
    return (
        "bin_combining",
        {"bin_combining": multiway_bin_combining(instance)},
        "multiway: generalized bin-combining scheme",
    )


def fast_path(instance: A2AInstance | X2YInstance | MultiwayInstance) -> FastPathChoice:
    """Dispatch on instance type; see the per-kind functions."""
    if isinstance(instance, A2AInstance):
        return fast_path_a2a(instance)
    if isinstance(instance, X2YInstance):
        return fast_path_x2y(instance)
    return fast_path_multiway(instance)
