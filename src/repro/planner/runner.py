"""The pipeline's last stage: run a plan on the execution engine.

:func:`run` funnels a :class:`~repro.planner.plan.Plan` into
:func:`repro.engine.engine.execute_schema`: the plan's chosen schema
routes the records, and the plan's resolved
:class:`~repro.engine.config.ExecutionConfig` configures the engine
unless the caller overrides it.  Applications therefore reduce to spec
building plus result formatting — schema choice and execution tuning
both live in the plan.

Multiway plans describe schemas the engine's schema router does not
execute (reducers are r-way input sets, not pairwise memberships);
applications run those on the reference simulator and say so here.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.dataset import Dataset
from repro.engine.config import ExecutionConfig
from repro.engine.engine import EngineResult, execute_schema
from repro.exceptions import InvalidInstanceError
from repro.mapreduce.types import ReduceFn
from repro.obs.profiler import PhaseProfiler
from repro.obs.trace import Tracer
from repro.planner.plan import Plan


def run(
    plan: Plan,
    records: Sequence[Any] | Dataset | tuple[Sequence[Any], Sequence[Any]],
    reduce_fn: ReduceFn,
    *,
    combiner_fn: ReduceFn | None = None,
    strict_capacity: bool = True,
    config: ExecutionConfig | None = None,
    tracer: Tracer | None = None,
    profiler: PhaseProfiler | None = None,
) -> EngineResult:
    """Execute a plan's chosen schema over *records* on the engine.

    *records* follows :func:`~repro.engine.engine.execute_schema`'s
    contract: a sequence or streaming dataset aligned with the instance's
    inputs for A2A plans, an ``(x_records, y_records)`` pair for X2Y
    plans.  *config* overrides the plan's resolved execution
    configuration (e.g. to pin a backend in a benchmark sweep); by
    default the plan runs exactly as planned.  *tracer* (optional)
    collects the engine's phase and task spans for this run; *profiler*
    (optional) additionally attributes CPU/RSS and function time to the
    engine phases.
    """
    if plan.spec.kind == "multiway":
        raise InvalidInstanceError(
            "multiway plans run on the reference simulator (the engine's "
            "schema router executes pairwise A2A/X2Y schemas); build the "
            "job from plan.schema() instead"
        )
    return execute_schema(
        plan.schema(),
        records,
        reduce_fn,
        combiner_fn=combiner_fn,
        strict_capacity=strict_capacity,
        config=config if config is not None else plan.execution,
        tracer=tracer,
        profiler=profiler,
    )
