"""Declarative job specifications: what to solve, not how.

A :class:`JobSpec` captures a mapping-schema problem the way a caller
thinks about it — the problem kind (all-to-all, X-to-Y, or multiway), the
input sizes, the reducer capacity ``q``, and *what to optimize for* — and
nothing about algorithms or execution.  The planner
(:func:`repro.planner.plan`) turns a spec into an executable
:class:`~repro.planner.plan.Plan`; the applications are thin spec
builders on top of this type.

Sizes may be given as plain integers, as objects exposing a ``.size``
attribute (documents, users, tuples, vector blocks — every workload type
in :mod:`repro.workloads` qualifies), or as a
:class:`~repro.dataset.Dataset` of either, so an application can hand its
records straight to the spec constructor.
"""

from __future__ import annotations

import hashlib
import json
import operator
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.core.instance import A2AInstance, X2YInstance
from repro.core.multiway import MultiwayInstance
from repro.dataset import Dataset
from repro.exceptions import InvalidInstanceError

#: Problem kinds the planner understands.
KINDS = ("a2a", "x2y", "multiway")

#: Planning objectives.  ``min-reducers`` minimizes the reducer count (the
#: paper's primary target), ``min-communication`` minimizes total map →
#: reduce traffic, and ``min-makespan`` minimizes the LPT-scheduled
#: completion time of the reducer loads on the environment's worker pool.
OBJECTIVES = ("min-reducers", "min-communication", "min-makespan")

#: Spec/plan wire-format version.
SPEC_FORMAT_VERSION = 1


def coerce_sizes(source: Iterable[Any] | Dataset, label: str = "sizes") -> tuple[int, ...]:
    """Normalize a size source into a tuple of integers.

    Accepts integers, objects with a ``.size`` attribute, or a
    :class:`~repro.dataset.Dataset` of either (materialized once — the
    planner needs every size before any record is routed).
    """
    if isinstance(source, Dataset):
        source = source.materialize()
    sizes: list[int] = []
    for item in source:
        if isinstance(item, bool):
            raise InvalidInstanceError(f"{label} entries must be integers, got {item!r}")
        # Integer-likes (including numpy integer scalars, which are not
        # Python ints but do define __index__) must be tried before the
        # .size attribute: a numpy scalar's .size is its element count —
        # always 1 — not the value.
        try:
            sizes.append(operator.index(item))
            continue
        except TypeError:
            pass
        if hasattr(item, "size"):
            sizes.append(item.size)
        else:
            raise InvalidInstanceError(
                f"{label} entries must be integers or objects with a .size "
                f"attribute, got {type(item).__name__}"
            )
    return tuple(sizes)


@dataclass(frozen=True)
class JobSpec:
    """A declarative mapping-schema job.

    Attributes:
        kind: problem kind — ``"a2a"``, ``"x2y"``, or ``"multiway"``.
        q: reducer capacity.
        sizes: input sizes (``a2a`` and ``multiway`` kinds).
        x_sizes: X-side sizes (``x2y`` kind).
        y_sizes: Y-side sizes (``x2y`` kind).
        r: meeting arity for the ``multiway`` kind (every r-subset of
            inputs must meet); ``None`` for the pairwise kinds.
        objective: what the planner optimizes — one of
            :data:`OBJECTIVES`.
        method: ``None`` asks for full cost-based planning over every
            registered method; ``"auto"`` asks for the structural fast
            path (the historical ``method="auto"`` heuristic); a method
            name pins that algorithm.
    """

    kind: str
    q: int
    sizes: tuple[int, ...] | None = None
    x_sizes: tuple[int, ...] | None = None
    y_sizes: tuple[int, ...] | None = None
    r: int | None = None
    objective: str = "min-reducers"
    method: str | None = field(default="auto")

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise InvalidInstanceError(
                f"unknown problem kind {self.kind!r}; choose from {list(KINDS)}"
            )
        if self.objective not in OBJECTIVES:
            raise InvalidInstanceError(
                f"unknown objective {self.objective!r}; choose from "
                f"{list(OBJECTIVES)}"
            )
        if self.kind == "x2y":
            if self.x_sizes is None or self.y_sizes is None:
                raise InvalidInstanceError("x2y specs need x_sizes and y_sizes")
            if self.sizes is not None:
                raise InvalidInstanceError("x2y specs take x_sizes/y_sizes, not sizes")
        else:
            if self.sizes is None:
                raise InvalidInstanceError(f"{self.kind} specs need sizes")
            if self.x_sizes is not None or self.y_sizes is not None:
                raise InvalidInstanceError(
                    f"{self.kind} specs take sizes, not x_sizes/y_sizes"
                )
        if self.kind == "multiway":
            if self.r is None or self.r < 2:
                raise InvalidInstanceError(
                    f"multiway specs need an arity r >= 2, got {self.r}"
                )
        elif self.r is not None:
            raise InvalidInstanceError(f"{self.kind} specs do not take an arity r")

    # -- constructors ---------------------------------------------------

    @classmethod
    def a2a(
        cls,
        sizes: Iterable[Any] | Dataset,
        q: int,
        *,
        objective: str = "min-reducers",
        method: str | None = "auto",
    ) -> "JobSpec":
        """An all-to-all spec; *sizes* may be ints, sized objects, or a Dataset."""
        return cls(
            kind="a2a",
            q=q,
            sizes=coerce_sizes(sizes),
            objective=objective,
            method=method,
        )

    @classmethod
    def x2y(
        cls,
        x_sizes: Iterable[Any] | Dataset,
        y_sizes: Iterable[Any] | Dataset,
        q: int,
        *,
        objective: str = "min-reducers",
        method: str | None = "auto",
    ) -> "JobSpec":
        """An X-to-Y spec; each side may be ints, sized objects, or a Dataset."""
        return cls(
            kind="x2y",
            q=q,
            x_sizes=coerce_sizes(x_sizes, "x_sizes"),
            y_sizes=coerce_sizes(y_sizes, "y_sizes"),
            objective=objective,
            method=method,
        )

    @classmethod
    def multiway(
        cls,
        sizes: Iterable[Any] | Dataset,
        q: int,
        r: int,
        *,
        objective: str = "min-reducers",
        method: str | None = "auto",
    ) -> "JobSpec":
        """A multiway spec: every *r*-subset of inputs must meet."""
        return cls(
            kind="multiway",
            q=q,
            sizes=coerce_sizes(sizes),
            r=r,
            objective=objective,
            method=method,
        )

    # -- derived views --------------------------------------------------

    def instance(self) -> A2AInstance | X2YInstance | MultiwayInstance:
        """The validated problem instance this spec describes."""
        if self.kind == "a2a":
            return A2AInstance(self.sizes, self.q)
        if self.kind == "x2y":
            return X2YInstance(self.x_sizes, self.y_sizes, self.q)
        return MultiwayInstance(self.sizes, self.q, self.r)

    @property
    def num_inputs(self) -> int:
        """Total number of inputs across all sides."""
        if self.kind == "x2y":
            return len(self.x_sizes) + len(self.y_sizes)
        return len(self.sizes)

    @property
    def total_size(self) -> int:
        """Total input size across all sides."""
        if self.kind == "x2y":
            return sum(self.x_sizes) + sum(self.y_sizes)
        return sum(self.sizes)

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict form (the spec part of the Plan wire format)."""
        payload: dict[str, Any] = {
            "kind": self.kind,
            "q": self.q,
            "objective": self.objective,
            "method": self.method,
        }
        if self.kind == "x2y":
            payload["x_sizes"] = list(self.x_sizes)
            payload["y_sizes"] = list(self.y_sizes)
        else:
            payload["sizes"] = list(self.sizes)
        if self.r is not None:
            payload["r"] = self.r
        return payload

    def fingerprint(self) -> str:
        """Content fingerprint of this spec (hex SHA-256).

        Computed over the canonical (sorted-key, whitespace-free) JSON of
        :meth:`to_dict` plus the wire-format version, so two specs
        fingerprint equal exactly when they describe the same problem,
        objective, and method request — the key ingredient of plan-cache
        keys (see :func:`repro.planner.planner.plan_fingerprint`, which
        additionally mixes in the environment).
        """
        payload = {"version": SPEC_FORMAT_VERSION, "spec": self.to_dict()}
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JobSpec":
        """Rebuild a spec from its :meth:`to_dict` form."""
        if not isinstance(payload, Mapping):
            raise InvalidInstanceError(
                f"spec payload must be a JSON object, got {type(payload).__name__}"
            )
        try:
            kind = payload["kind"]
            q = payload["q"]
        except KeyError as exc:
            raise InvalidInstanceError(
                f"spec payload is missing {exc.args[0]!r}"
            ) from exc
        return cls(
            kind=kind,
            q=q,
            sizes=(
                tuple(payload["sizes"]) if payload.get("sizes") is not None else None
            ),
            x_sizes=(
                tuple(payload["x_sizes"])
                if payload.get("x_sizes") is not None
                else None
            ),
            y_sizes=(
                tuple(payload["y_sizes"])
                if payload.get("y_sizes") is not None
                else None
            ),
            r=payload.get("r"),
            objective=payload.get("objective", "min-reducers"),
            method=payload.get("method"),
        )
