"""Cost-based planner: one declarative JobSpec → Plan → run pipeline.

The paper's central question — which mapping schema minimizes reducers or
communication under a capacity ``q`` — is answered by :mod:`repro.core`;
this package makes that answer *drive execution*.  The pipeline has three
stages:

1. **Spec** (:class:`JobSpec`) — a declarative statement of the problem:
   kind (``a2a``/``x2y``/``multiway``), sizes, ``q``, and an objective
   (``min-reducers`` | ``min-communication`` | ``min-makespan``).  All
   applications build specs instead of calling solvers directly.
2. **Plan** (:func:`plan`) — enumerate candidate methods from the
   registries, score them (costs, bounds, LPT makespan), pick the winner
   per objective, and resolve an
   :class:`~repro.engine.config.ExecutionConfig` from an
   :class:`Environment` probe.  The result is an inspectable,
   JSON-serializable :class:`Plan` with per-candidate scores and the
   chosen rationale.
3. **Run** (:func:`run`) — funnel the plan into
   :func:`repro.engine.engine.execute_schema`.

Quickstart::

    from repro.planner import JobSpec, plan, run

    spec = JobSpec.a2a([3, 5, 2, 7, 4], q=12, method=None)  # full planning
    planned = plan(spec)
    print(planned.describe(explain=True))

    def reduce_fn(reducer, values):      # values are (input_index, record)
        yield reducer, sorted(i for i, _ in values)

    result = run(planned, ["r%d" % i for i in range(5)], reduce_fn)

The CLI surfaces the same pipeline as ``repro plan`` (candidate table,
``--explain``, ``--json-out``) and ``repro run --plan auto``.
"""

from repro.planner.environment import Environment
from repro.planner.fastpath import fast_path, fast_path_a2a, fast_path_x2y
from repro.planner.plan import CandidateScore, Plan
from repro.planner.planner import (
    MULTIWAY_METHODS,
    build_schema,
    method_registry,
    plan,
    plan_cached,
    plan_fingerprint,
    plan_schema,
    resolve_execution_config,
    score_schema,
)
from repro.planner.runner import run
from repro.planner.spec import KINDS, OBJECTIVES, JobSpec, coerce_sizes

__all__ = [
    "JobSpec",
    "Plan",
    "CandidateScore",
    "Environment",
    "plan",
    "plan_cached",
    "plan_fingerprint",
    "plan_schema",
    "run",
    "build_schema",
    "method_registry",
    "score_schema",
    "resolve_execution_config",
    "fast_path",
    "fast_path_a2a",
    "fast_path_x2y",
    "coerce_sizes",
    "KINDS",
    "OBJECTIVES",
    "MULTIWAY_METHODS",
]
