"""The job service: many concurrent jobs over one shared planner/engine stack.

:class:`JobService` is the multiplexing layer the one-shot pipeline was
missing: callers *submit* declarative :class:`~repro.planner.spec.JobSpec`
jobs and get back a :class:`JobHandle`; a fair priority-FIFO scheduler
(:class:`~repro.service.scheduler.JobScheduler`) runs up to K jobs
concurrently; planning goes through a shared
:class:`~repro.service.plan_cache.PlanCache` (a hit skips method
enumeration entirely); execution runs on **shared, long-lived backend
pools** owned by the service — one pool per ``(backend, workers)`` shape,
opened persistently and reused by every job instead of being built and
torn down per run; finished outputs land in a bounded LRU
:class:`~repro.service.results.ResultStore`.

Admission control happens at submit time against the service's
:class:`~repro.planner.environment.Environment` snapshot: a job whose
requested execution config oversubscribes the schedulable cores, or whose
estimated memory footprint cannot fit the machine, is *rejected* (state
``rejected``, reason recorded) rather than queued to fail later.

Lifecycle is fully observable: ``status``/``list`` work in every state,
``cancel`` removes queued jobs exactly and cancels running jobs
cooperatively (their results are discarded), and every transition is an
event on the service's :class:`~repro.service.events.EventLog`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

from repro import planner as planner_pkg
from repro.dataset import Dataset
from repro.engine.backends import BACKENDS, Backend
from repro.engine.config import ExecutionConfig
from repro.exceptions import (
    AdmissionError,
    InvalidInstanceError,
    JobCancelledError,
    ReproError,
    ResultEvictedError,
    ResultWaitTimeoutError,
    ServiceClosedError,
    UnknownJobError,
    WorkerLostError,
)
from repro.faults import RetryPolicy
from repro.mapreduce.types import ReduceFn
from repro.obs.history import current_commit, hardware_class
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import (
    PhaseProfiler,
    ResourceSampler,
    read_cpu_seconds,
)
from repro.obs.store import ObservationRecord, ObservationStore
from repro.obs.trace import Span, Tracer, as_tracer
from repro.planner.environment import Environment
from repro.planner.planner import BYTES_PER_SIZE_UNIT, plan_cached
from repro.planner.spec import JobSpec
from repro.service.events import (
    CANCELLED,
    CANCELLING,
    DONE,
    FAILED,
    QUEUED,
    REJECTED,
    RUNNING,
    TERMINAL_STATES,
    EventLog,
    JobEvent,
)
from repro.service.plan_cache import PlanCache
from repro.service.results import JobResult, ResultStore
from repro.service.scheduler import JobScheduler


def spec_records(
    spec: JobSpec,
) -> list[str] | tuple[list[str], list[str]]:
    """Synthetic per-input records for executing a bare spec.

    The engine routes records by *position* (record ``i`` carries size
    ``sizes[i]`` from the spec), so any placeholder payload exercises the
    full shuffle; these tokens are what ``repro serve``/``repro submit``
    run when a request asks for execution without shipping data.
    """
    if spec.kind == "a2a":
        return [f"input-{i}" for i in range(len(spec.sizes))]
    if spec.kind == "x2y":
        return (
            [f"x-{i}" for i in range(len(spec.x_sizes))],
            [f"y-{j}" for j in range(len(spec.y_sizes))],
        )
    raise InvalidInstanceError(
        "multiway specs run on the reference simulator, not the engine; "
        "submit them as plan-only jobs"
    )


def _involves_worker_loss(error: BaseException | None) -> bool:
    """Whether *error*'s chain records a worker death.

    Walks ``__cause__``/``__context__`` plus the ``last_error`` carried
    by :class:`~repro.exceptions.TaskRetryExhaustedError`, so a pool
    breakage is recognized whether it propagated raw, wrapped by the
    retry loop, or re-raised by the fallback chain.
    """
    seen: set[int] = set()
    exc = error
    while exc is not None and id(exc) not in seen:
        seen.add(id(exc))
        if isinstance(exc, WorkerLostError):
            return True
        last = getattr(exc, "last_error", None)
        if isinstance(last, BaseException) and _involves_worker_loss(last):
            return True
        exc = exc.__cause__ or exc.__context__
    return False


def collect_reduce(key, values):
    """Reducer for spec-driven jobs: emit each reducer's sorted input ids.

    Values arrive as ``(input_index, record)`` (A2A) or ``(side,
    input_index, record)`` (X2Y); the payload is stripped so outputs are
    small, deterministic, and comparable across backends.  Module-level,
    hence picklable for the ``processes`` backend.
    """
    yield key, tuple(
        sorted(value[0] if len(value) == 2 else value[:-1] for value in values)
    )


@dataclass(frozen=True)
class JobStatus:
    """An immutable snapshot of one job's lifecycle state.

    ``wall_seconds`` covers the running phase only; ``queue_seconds`` is
    the time between submission and dispatch.  ``cache_hit`` is ``None``
    until the job has planned.
    """

    job_id: str
    state: str
    priority: int
    submitted_at: float
    started_at: float | None = None
    finished_at: float | None = None
    cache_hit: bool | None = None
    executed: bool | None = None
    error: str = ""
    detail: str = ""

    @property
    def queue_seconds(self) -> float | None:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def wall_seconds(self) -> float | None:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (used by ``repro serve`` result lines)."""
        return {
            "id": self.job_id,
            "state": self.state,
            "priority": self.priority,
            "cache_hit": self.cache_hit,
            "queue_seconds": self.queue_seconds,
            "wall_seconds": self.wall_seconds,
            "error": self.error or None,
            "detail": self.detail or None,
        }


@dataclass
class _JobRecord:
    """Internal mutable job state (service-lock protected)."""

    job_id: str
    spec: JobSpec
    priority: int
    records: Any
    reduce_fn: ReduceFn | None
    combiner_fn: ReduceFn | None
    config: ExecutionConfig | None
    strict_capacity: bool
    retry: RetryPolicy | None = None
    deadline: float | None = None
    state: str = QUEUED
    # repro-lint: disable=determinism -- display-only wall time; latency metrics use submitted_mono
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    cache_hit: bool | None = None
    error: str = ""
    detail: str = ""
    exception: BaseException | None = None
    cancel_requested: bool = False
    done: threading.Event = field(default_factory=threading.Event)
    # Observability: the job's own tracer (same sink as the service's,
    # trace id = job id), its root span (open from submit to terminal),
    # and the monotonic submit instant queue wait is measured from.
    tracer: Tracer | None = None
    root_span: Span | Any = None
    submitted_mono: float = field(default_factory=time.perf_counter)

    def snapshot(self) -> JobStatus:
        return JobStatus(
            job_id=self.job_id,
            state=self.state,
            priority=self.priority,
            submitted_at=self.submitted_at,
            started_at=self.started_at,
            finished_at=self.finished_at,
            cache_hit=self.cache_hit,
            executed=(self.records is not None) if self.state == DONE else None,
            error=self.error,
            detail=self.detail,
        )


@dataclass(frozen=True)
class JobHandle:
    """The caller's view of one submitted job."""

    job_id: str
    service: "JobService"

    def status(self) -> JobStatus:
        return self.service.status(self.job_id)

    def wait(self, timeout: float | None = None) -> JobStatus:
        return self.service.wait(self.job_id, timeout)

    def result(self, timeout: float | None = None) -> JobResult:
        return self.service.result(self.job_id, timeout)

    def cancel(self) -> bool:
        return self.service.cancel(self.job_id)


class JobService:
    """Submit/status/result/cancel/list over shared planner+engine resources.

    Args:
        slots: concurrent job slots (scheduler worker threads).
        env: environment snapshot used for admission control and
            cache-keyed planning; probed once at construction by default
            so every job in a service session plans against the same
            snapshot (a requirement for plan-cache hits).
        plan_cache_size: retained plans (LRU).
        result_capacity: retained job results (LRU).
        default_priority: priority for submissions that do not set one.
        tracer: optional :class:`~repro.obs.trace.Tracer`.  When given,
            every job runs under its own trace id (the job id, a
            :meth:`~repro.obs.trace.Tracer.child` over the service
            tracer's shared sink) with submit/queue/plan/store spans from
            the service, planner spans from planning, and phase/task
            spans from the engine; lifecycle events become instant spans
            via the :class:`EventLog`.  ``None`` disables tracing at
            zero cost.
        obs_log: optional NDJSON path; every finished job appends one
            :class:`~repro.obs.store.ObservationRecord` (plan
            fingerprint + measured timings) there via the service's
            :class:`~repro.obs.store.ObservationStore`.
        profiler: optional
            :class:`~repro.obs.profiler.PhaseProfiler` shared by every
            executed job (engine phases accumulate across the service's
            lifetime); its resource sampler doubles as the service's.
            ``None`` disables phase profiling — the service still runs
            its own :class:`~repro.obs.profiler.ResourceSampler`
            (started lazily with the first executed job, stopped by
            :meth:`close`) for the per-job peak-RSS/CPU observation
            fields and the ``health`` snapshot.
    """

    def __init__(
        self,
        slots: int = 2,
        *,
        env: Environment | None = None,
        plan_cache_size: int = 128,
        result_capacity: int = 256,
        default_priority: int = 0,
        tracer: Tracer | None = None,
        obs_log: str | None = None,
        profiler: PhaseProfiler | None = None,
    ):
        self.env = env if env is not None else Environment.detect()
        self.plan_cache = PlanCache(plan_cache_size)
        self.results = ResultStore(result_capacity)
        self.tracer = as_tracer(tracer)
        self.metrics = MetricsRegistry()
        self.observations = ObservationStore(path=obs_log)
        self.profiler = profiler
        self._sampler = (
            profiler.sampler
            if profiler is not None and profiler.enabled
            else ResourceSampler()
        )
        self._started_mono = time.perf_counter()
        self.events = EventLog(tracer=self.tracer)
        self.default_priority = default_priority
        self._records: dict[str, _JobRecord] = {}
        self._order: list[str] = []
        # Reentrant: events are emitted while holding the lock (so the
        # event stream can never reorder against state commits), and
        # subscribers may call back into status()/list() on that thread.
        self._lock = threading.RLock()
        self._counter = 0
        self._closed = False
        self._backends: dict[tuple[str, int | None], Backend] = {}
        self._backend_lock = threading.Lock()
        self.scheduler = JobScheduler(slots)

    # -- submission ------------------------------------------------------

    def submit(
        self,
        spec: JobSpec,
        *,
        records: Sequence[Any] | Dataset | tuple | None = None,
        reduce_fn: ReduceFn | None = None,
        combiner_fn: ReduceFn | None = None,
        config: ExecutionConfig | None = None,
        priority: int | None = None,
        job_id: str | None = None,
        strict_capacity: bool = True,
        retry: RetryPolicy | None = None,
        deadline: float | None = None,
    ) -> JobHandle:
        """Submit one job; returns immediately with a :class:`JobHandle`.

        Without *records* the job is *plan-only*: it produces a plan (via
        the shared plan cache) and no engine run.  With *records* (and a
        *reduce_fn*) the job executes the planned schema on the service's
        shared backend pools; *config* overrides the plan's resolved
        execution configuration.  *retry* and *deadline* are per-job
        fault-tolerance policy layered on top of whichever config the job
        executes with (an explicit *config* or the plan's): the retry
        policy bounds per-task replay, the deadline bounds the whole run
        in seconds from dispatch.  Jobs that fail admission control are
        returned in the ``rejected`` state rather than raised, so batch
        submitters observe rejections uniformly via status/result.
        """
        if records is not None and reduce_fn is None:
            raise InvalidInstanceError(
                "submitting records requires a reduce_fn"
            )
        if deadline is not None and deadline <= 0:
            raise InvalidInstanceError(
                f"deadline must be positive, got {deadline}"
            )
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is closed")
            if job_id is None:
                self._counter += 1
                job_id = f"job-{self._counter:04d}"
            elif job_id in self._records:
                raise InvalidInstanceError(
                    f"duplicate job id {job_id!r}"
                )
            record = _JobRecord(
                job_id=job_id,
                spec=spec,
                priority=(
                    priority if priority is not None else self.default_priority
                ),
                records=records,
                reduce_fn=reduce_fn,
                combiner_fn=combiner_fn,
                config=config,
                strict_capacity=strict_capacity,
                retry=retry,
                deadline=deadline,
            )
            # The job's whole lifetime is one trace (trace id = job id)
            # sharing the service tracer's sink; the root span stays open
            # until the terminal transition closes it.
            record.tracer = self.tracer.child(job_id)
            record.root_span = record.tracer.begin(
                "job", category="service", kind=spec.kind
            )
            self._records[job_id] = record
            self._order.append(job_id)
        self.metrics.counter("jobs.submitted").inc()
        rejection = self._admission_reason(spec, config)
        if rejection is not None:
            self._transition(record, REJECTED, detail=rejection)
            return JobHandle(job_id, self)
        self._emit(record, QUEUED)
        self.scheduler.submit(
            job_id,
            lambda: self._execute_job(record),
            priority=record.priority,
        )
        record.tracer.record(
            "submit",
            start=record.submitted_mono,
            duration=time.perf_counter() - record.submitted_mono,
            category="service",
            parent=record.root_span.span_id,
        )
        self._update_scheduler_gauges()
        return JobHandle(job_id, self)

    def submit_spec(
        self,
        spec: JobSpec,
        *,
        execute: bool = True,
        priority: int | None = None,
        job_id: str | None = None,
        config: ExecutionConfig | None = None,
        retry: RetryPolicy | None = None,
        deadline: float | None = None,
    ) -> JobHandle:
        """Submit a bare spec, synthesizing records for pairwise kinds.

        This is the submission path of the NDJSON protocol (``repro
        serve`` / ``repro submit``): *execute* runs the planned schema
        over :func:`spec_records` placeholders with the
        :func:`collect_reduce` reducer; multiway specs are always
        plan-only (the engine's schema router is pairwise).  *retry* and
        *deadline* pass through to :meth:`submit`.
        """
        if not execute or spec.kind == "multiway":
            return self.submit(
                spec,
                priority=priority,
                job_id=job_id,
                config=config,
                retry=retry,
                deadline=deadline,
            )
        return self.submit(
            spec,
            records=spec_records(spec),
            reduce_fn=collect_reduce,
            priority=priority,
            job_id=job_id,
            config=config,
            retry=retry,
            deadline=deadline,
        )

    # -- lifecycle queries ----------------------------------------------

    def _record(self, job_id: str) -> _JobRecord:
        with self._lock:
            try:
                return self._records[job_id]
            except KeyError:
                raise UnknownJobError(f"unknown job id {job_id!r}") from None

    def status(self, job_id: str) -> JobStatus:
        """The job's current lifecycle snapshot (works in every state)."""
        record = self._record(job_id)
        with self._lock:
            return record.snapshot()

    def list(self) -> list[JobStatus]:
        """Every known job's status, in submission order."""
        with self._lock:
            return [self._records[job_id].snapshot() for job_id in self._order]

    def wait(self, job_id: str, timeout: float | None = None) -> JobStatus:
        """Block until the job reaches a terminal state (or *timeout*)."""
        record = self._record(job_id)
        record.done.wait(timeout)
        return self.status(job_id)

    def result(self, job_id: str, timeout: float | None = None) -> JobResult:
        """The job's stored result, blocking until it finishes.

        Raises the job's own exception for failed jobs,
        :class:`JobCancelledError` for cancelled ones,
        :class:`AdmissionError` for rejected ones, and
        :class:`~repro.exceptions.ResultEvictedError` when the result was
        evicted from the bounded store.
        """
        record = self._record(job_id)
        if not record.done.wait(timeout):
            raise ResultWaitTimeoutError(
                f"job {job_id!r} still {record.state!r} after {timeout}s"
            )
        if record.state == FAILED:
            if record.exception is not None:
                raise record.exception
            raise ReproError(record.error)
        if record.state == CANCELLED:
            raise JobCancelledError(f"job {job_id!r} was cancelled")
        if record.state == REJECTED:
            raise AdmissionError(
                f"job {job_id!r} was rejected: {record.detail}"
            )
        try:
            return self.results.fetch(job_id)
        except KeyError:
            # The record says done, so the result existed: it was evicted
            # by the bounded store (the state that distinguishes eviction
            # from an unknown id lives here, not in the store).
            raise ResultEvictedError(
                f"result of job {job_id!r} was evicted from the result "
                f"store (capacity {self.results.capacity}); the job's "
                "status remains queryable"
            ) from None

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; exact for queued jobs, cooperative for running.

        Returns ``True`` when the job will not deliver a result: a queued
        job is removed from the scheduler and terminally ``cancelled``
        immediately; a running job enters ``cancelling`` — the worker
        discards its output and marks it ``cancelled`` at the next
        checkpoint.  Returns ``False`` for jobs already terminal.
        """
        record = self._record(job_id)
        with self._lock:
            if record.state in TERMINAL_STATES:
                return False
        if self.scheduler.cancel_queued(job_id):
            self._transition(record, CANCELLED, detail="cancelled while queued")
            return True
        with self._lock:
            if record.state in TERMINAL_STATES:
                return False
            record.cancel_requested = True
            already_running = record.state in (RUNNING, CANCELLING)
        if already_running:
            self._transition(record, CANCELLING, detail="cancel requested")
        return True

    # -- service-wide introspection and lifecycle ------------------------

    def stats(self) -> dict[str, Any]:
        """Aggregate service counters (plan cache, results, pools, jobs)."""
        with self._lock:
            states: dict[str, int] = {}
            for record in self._records.values():
                states[record.state] = states.get(record.state, 0) + 1
        with self._backend_lock:
            pools = {
                f"{name}@{workers or 'auto'}": backend.pools_created
                for (name, workers), backend in self._backends.items()
            }
        return {
            "jobs": states,
            "queued": self.scheduler.queued_count,
            "running": self.scheduler.running_count,
            "plan_cache": self.plan_cache.stats(),
            "results": self.results.stats(),
            "backend_pools": pools,
        }

    def drain(self, timeout: float | None = None) -> bool:
        """Wait for every queued/running job to finish."""
        return self.scheduler.drain(timeout)

    def close(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Finish (or abandon) outstanding work and release shared pools.

        Jobs that never ran (``drain=False``, an expired drain timeout,
        or a submit racing the close) are moved to ``cancelled`` so
        ``wait()``/``result()`` callers unblock instead of hanging on a
        job no worker will ever pick up.
        """
        with self._lock:
            self._closed = True
        self.scheduler.close(drain=drain, timeout=timeout)
        with self._lock:
            abandoned = [
                record
                for record in self._records.values()
                if record.state not in TERMINAL_STATES
            ]
            for record in abandoned:
                record.cancel_requested = True
        for record in abandoned:
            self._transition(
                record, CANCELLED, detail="service closed before completion"
            )
        with self._backend_lock:
            backends = list(self._backends.values())
            self._backends.clear()
        for backend in backends:
            backend.close()
        # The sampler thread must not outlive the service: chaos-smoke
        # asserts no repro-* threads remain after a serve shutdown.
        self._sampler.stop()

    def __enter__(self) -> "JobService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals -------------------------------------------------------

    def _admission_reason(
        self, spec: JobSpec, config: ExecutionConfig | None
    ) -> str | None:
        """Why this submission oversubscribes the environment, or ``None``.

        Two rules, both judged against the service's environment probe:
        requesting more workers than the machine's schedulable cores, and
        an estimated resident footprint (input bytes, or the requested
        per-worker memory budget times the worker count) beyond the
        measured available memory.
        """
        if config is not None and config.num_workers is not None:
            if config.num_workers > self.env.num_workers:
                return (
                    f"requested num_workers={config.num_workers} exceeds "
                    f"the {self.env.num_workers} schedulable core(s)"
                )
        if self.env.memory_bytes is not None:
            input_bytes = spec.total_size * BYTES_PER_SIZE_UNIT
            if input_bytes > self.env.memory_bytes:
                return (
                    f"estimated input footprint {input_bytes} bytes exceeds "
                    f"available memory {self.env.memory_bytes} bytes"
                )
            if config is not None and config.memory_budget is not None:
                workers = config.num_workers or self.env.num_workers
                budget_bytes = (
                    config.memory_budget * BYTES_PER_SIZE_UNIT * workers
                )
                if budget_bytes > self.env.memory_bytes:
                    return (
                        f"memory_budget={config.memory_budget} pairs x "
                        f"{workers} worker(s) (~{budget_bytes} bytes) "
                        f"exceeds available memory "
                        f"{self.env.memory_bytes} bytes"
                    )
        return None

    def _transition(
        self, record: _JobRecord, state: str, *, detail: str = ""
    ) -> None:
        """Move *record* to *state* (never out of a terminal state).

        The cancel contract is enforced here, under the lock: a ``done``
        commit for a job whose cancellation was requested becomes
        ``cancelled`` and its stored result is discarded, so ``cancel()
        -> True`` can never be followed by a delivered result — even
        when the cancel lands between the worker's last checkpoint and
        its completion.  A worker finishing a job some other path
        already terminalized (cancel, close) likewise has its stored
        result dropped.
        """
        with self._lock:
            if record.state in TERMINAL_STATES:
                if state == DONE:
                    # Late completion after cancel/close: drop the result
                    # the worker stored just before this transition.
                    self.results.discard(record.job_id)
                return
            if state == DONE and record.cancel_requested:
                state = CANCELLED
                detail = detail or "cancelled while running"
                self.results.discard(record.job_id)
            record.state = state
            if detail:
                record.detail = detail
            if state == RUNNING and record.started_at is None:
                # repro-lint: disable=determinism -- display-only wall time; durations use perf_counter
                record.started_at = time.time()
            if state in TERMINAL_STATES:
                # repro-lint: disable=determinism -- display-only wall time; durations use perf_counter
                record.finished_at = time.time()
                self.metrics.counter(f"jobs.{state}").inc()
                self.metrics.histogram("job.latency_seconds").observe(
                    time.perf_counter() - record.submitted_mono
                )
                if state in (DONE, FAILED):
                    # 0/1 outcomes into a bounded-reservoir histogram:
                    # its windowed mean IS the rolling failure rate the
                    # health snapshot reports.
                    self.metrics.histogram("job.failures").observe(
                        1.0 if state == FAILED else 0.0
                    )
            # Emit inside the lock: the commit and its event are atomic,
            # so observers can never see e.g. a 'cancelling' event arrive
            # after the job's terminal event (the lock is reentrant, so
            # subscribers may query the service from the callback).
            self._emit(record, state, detail=detail)
            if state in TERMINAL_STATES:
                # Close the job's root span with its final state; the
                # trace is complete once the lifecycle is.
                if record.tracer is not None and record.root_span is not None:
                    record.root_span.set("state", state)
                    record.tracer.finish(record.root_span)
                record.done.set()

    def _emit(self, record: _JobRecord, state: str, *, detail: str = "") -> None:
        self.events.emit(
            JobEvent(job_id=record.job_id, state=state, detail=detail)
        )

    def _shared_config(self, config: ExecutionConfig) -> ExecutionConfig:
        """Swap a named backend for the service's shared, long-lived pool.

        Pools are keyed by ``(backend name, worker count)`` and opened
        persistently on first use; every job with the same shape reuses
        the same pool, which is the whole point of the service layer —
        the engine no longer pays pool startup per run.  Caller-provided
        live :class:`Backend` instances pass through untouched (the
        caller owns those).
        """
        if isinstance(config.backend, Backend):
            return config
        if config.backend not in BACKENDS:
            raise InvalidInstanceError(
                f"unknown backend {config.backend!r}; "
                f"choose from {sorted(BACKENDS)}"
            )
        key = (config.backend, config.num_workers)
        with self._backend_lock:
            backend = self._backends.get(key)
            if backend is None:
                backend = BACKENDS[config.backend](
                    max_workers=config.num_workers
                )
                backend.open()
                self._backends[key] = backend
        return replace(config, backend=backend)

    def _job_config(self, record: _JobRecord, planned: Any) -> ExecutionConfig:
        """The config this job executes with, per-job policy applied.

        Starts from the submission's explicit config (or the plan's
        resolved one) and layers the per-job ``retry``/``deadline`` from
        :meth:`submit` on top — an explicit per-job policy wins over
        whatever the base config carries.
        """
        base = (
            record.config
            if record.config is not None
            else planned.execution
        )
        if record.retry is not None or record.deadline is not None:
            base = replace(
                base,
                retry=record.retry if record.retry is not None else base.retry,
                deadline=(
                    record.deadline
                    if record.deadline is not None
                    else base.deadline
                ),
            )
        return base

    def _evict_backend(self, key: tuple[str, int | None]) -> bool:
        """Drop and close the shared pool entry for *key*, if present.

        Called when a job fails with a worker loss in its error chain:
        the entry is removed under the backend lock (so a concurrent
        :meth:`_shared_config` builds a fresh backend) and the old
        backend closed outside it.  A job currently running on the old
        backend is unaffected beyond losing pool reuse — its remaining
        ``run_tasks`` calls fall back to throwaway pools.
        """
        with self._backend_lock:
            backend = self._backends.pop(key, None)
        if backend is None:
            return False
        self.metrics.counter("pools.evicted").inc()
        backend.close()
        return True

    def _plan(
        self, spec: JobSpec, *, tracer: Tracer | None = None
    ) -> tuple[Any, str, bool]:
        """Plan via the shared cache; returns ``(plan, fingerprint, hit)``."""
        return plan_cached(
            spec, self.env, cache=self.plan_cache, tracer=tracer
        )

    def _update_scheduler_gauges(self) -> None:
        """Refresh the queue/slot gauges from the scheduler's counters."""
        queued = self.scheduler.queued_count
        running = self.scheduler.running_count
        gauge = self.metrics.gauge
        gauge("scheduler.queue_depth").set(queued)
        gauge("scheduler.running").set(running)
        gauge("scheduler.slot_utilization").set(running / self.scheduler.slots)
        gauge("scheduler.peak_queued").set(self.scheduler.peak_queued)

    def metrics_snapshot(self) -> dict[str, Any]:
        """Point-in-time metrics registry snapshot, gauges refreshed.

        Scheduler gauges and per-pool dispatch counters are re-read at
        snapshot time (they live on the scheduler/backends, not in the
        registry), then the registry's full
        :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` is returned
        with the plan cache's counter block attached.  This is the
        payload of the ``metrics`` request on ``repro serve``.
        """
        self._update_scheduler_gauges()
        with self._backend_lock:
            for (name, workers), backend in self._backends.items():
                label = f"{name}@{workers or 'auto'}"
                self.metrics.gauge(f"pool.{label}.tasks_dispatched").set(
                    backend.tasks_dispatched
                )
                self.metrics.gauge(f"pool.{label}.rebuilds").set(
                    backend.pool_rebuilds
                )
        snapshot = self.metrics.snapshot()
        snapshot["plan_cache"] = self.plan_cache.stats()
        return snapshot

    def health_snapshot(self) -> dict[str, Any]:
        """Rolling-window service-level health (SLO view of the metrics).

        Where :meth:`metrics_snapshot` dumps everything, this distills
        the numbers an operator pages on: queue-latency p50/p95 and the
        failure rate over the histograms' bounded reservoirs (so both
        are *rolling* windows, not lifetime aggregates), current slot
        utilization and queue depth, pool rebuild totals, and the
        resource sampler's process-wide peak RSS / CPU.  This is the
        payload of the ``{"health": true}`` request on ``repro serve``.
        """
        self._update_scheduler_gauges()
        snapshot = self.metrics.snapshot()
        queue = snapshot["histograms"].get("job.queue_seconds", {})
        outcomes = snapshot["histograms"].get("job.failures", {})
        counters = snapshot["counters"]
        with self._backend_lock:
            pool_rebuilds = sum(
                backend.pool_rebuilds for backend in self._backends.values()
            )
        with self._lock:
            closed = self._closed
        return {
            "status": "closing" if closed else "ok",
            "uptime_seconds": round(
                time.perf_counter() - self._started_mono, 3
            ),
            "slots": self.scheduler.slots,
            "queued": self.scheduler.queued_count,
            "running": self.scheduler.running_count,
            "slot_utilization": snapshot["gauges"].get(
                "scheduler.slot_utilization", 0.0
            ),
            "queue_p50_s": round(queue.get("p50", 0.0), 6),
            "queue_p95_s": round(queue.get("p95", 0.0), 6),
            "window_jobs": outcomes.get("count", 0),
            "failure_rate": round(outcomes.get("mean", 0.0), 4),
            "jobs_done": int(counters.get("jobs.done", 0)),
            "jobs_failed": int(counters.get("jobs.failed", 0)),
            "pool_rebuilds": pool_rebuilds,
            "sampler_running": self._sampler.running,
            "peak_rss_bytes": self._sampler.peak_rss_bytes(),
            "cpu_seconds": round(self._sampler.cpu_seconds(), 3),
        }

    def _execute_job(self, record: _JobRecord) -> None:
        """One job's worker-side pipeline: plan, execute, store, account."""
        if record.cancel_requested:
            self._transition(
                record, CANCELLED, detail="cancelled before dispatch"
            )
            return
        tracer = as_tracer(record.tracer)
        # Queue wait is measured on the monotonic clock from the submit
        # instant and recorded from this (dispatching) thread — the span
        # could not exist while the job sat in the queue.
        queue_seconds = time.perf_counter() - record.submitted_mono
        tracer.record(
            "queue",
            start=record.submitted_mono,
            duration=queue_seconds,
            category="service",
            parent=record.root_span.span_id,
        )
        self.metrics.histogram("job.queue_seconds").observe(queue_seconds)
        self._update_scheduler_gauges()
        self._transition(record, RUNNING)
        # Lazy sampler start: services that only plan never pay for the
        # thread; per-job peak RSS is a window query from the job's start
        # (peak_rss_bytes always takes a fresh reading, so plan-only jobs
        # still report a real figure without the thread).
        if record.records is not None:
            self._sampler.start()
        job_mono = time.monotonic()
        job_cpu0 = read_cpu_seconds()
        started = time.perf_counter()
        fingerprint = ""
        pool_key: tuple[str, int | None] | None = None
        try:
            # Everything below nests under the job's root span: the
            # planner's "plan" span, the engine's phase/task spans, and
            # the final "store" span all parent through this activation.
            with tracer.activate(record.root_span):
                planned, fingerprint, cache_hit = self._plan(
                    record.spec, tracer=tracer
                )
                self.metrics.counter(
                    "plan_cache.hits" if cache_hit else "plan_cache.misses"
                ).inc()
                with self._lock:
                    record.cache_hit = cache_hit
                if record.cancel_requested:
                    self._transition(
                        record, CANCELLED, detail="cancelled during planning"
                    )
                    return
                if record.records is None:
                    result = JobResult(
                        job_id=record.job_id,
                        plan=planned,
                        fingerprint=fingerprint,
                        cache_hit=cache_hit,
                        wall_seconds=time.perf_counter() - started,
                    )
                else:
                    base_config = self._job_config(record, planned)
                    if isinstance(base_config.backend, str):
                        pool_key = (
                            base_config.backend,
                            base_config.num_workers,
                        )
                    config = self._shared_config(base_config)
                    engine_result = planner_pkg.run(
                        planned,
                        record.records,
                        record.reduce_fn,
                        combiner_fn=record.combiner_fn,
                        strict_capacity=record.strict_capacity,
                        config=config,
                        tracer=tracer,
                        profiler=self.profiler,
                    )
                    result = JobResult(
                        job_id=record.job_id,
                        plan=planned,
                        fingerprint=fingerprint,
                        cache_hit=cache_hit,
                        outputs=engine_result.outputs,
                        metrics=engine_result.metrics,
                        engine=engine_result.engine,
                        wall_seconds=time.perf_counter() - started,
                    )
                    self._account_engine_metrics(engine_result)
                if record.cancel_requested:
                    self._transition(
                        record, CANCELLED, detail="cancelled while running"
                    )
                    return
                with tracer.span("store", category="service"):
                    self.results.put(result)
            # Build the observation *before* the terminal transition:
            # ``wait()`` unblocks on DONE, and ``current_commit()`` can
            # shell out to git on first use — doing that work after the
            # transition opens a window where a waiter reads the
            # observation snapshot before the record lands.
            observation = ObservationRecord.from_result(
                result,
                queue_seconds=queue_seconds,
                commit=current_commit(),
                hardware_class=hardware_class(self.env.num_workers),
                peak_rss_bytes=self._sampler.peak_rss_bytes(since=job_mono),
                cpu_seconds=max(0.0, read_cpu_seconds() - job_cpu0),
            )
            self._transition(
                record,
                DONE,
                detail="plan cache hit" if cache_hit else "",
            )
            with self._lock:
                committed = record.state == DONE
            if committed:
                self.metrics.histogram("job.wall_seconds").observe(
                    result.wall_seconds
                )
                self.observations.record(observation)
        except Exception as error:  # noqa: BLE001 - recorded, not raised
            with self._lock:
                record.exception = error
                record.error = f"{type(error).__name__}: {error}"
            self.metrics.counter(f"jobs.failed.{type(error).__name__}").inc()
            if pool_key is not None and _involves_worker_loss(error):
                # A worker died and the run still failed: the shared pool
                # for this shape may be poisoned (dead workers, broken
                # pipes).  Evict it so the next job with this shape gets a
                # freshly built backend instead of inheriting the damage.
                evicted = self._evict_backend(pool_key)
                if evicted:
                    tracer.instant(
                        "pool_evicted",
                        category="faults",
                        backend=pool_key[0],
                        workers=pool_key[1] or 0,
                        error=type(error).__name__,
                    )
            # As on the success path, measure before the terminal
            # transition so waiters unblocked by FAILED find the record.
            observation = ObservationRecord(
                job_id=record.job_id,
                fingerprint=fingerprint,
                cache_hit=bool(record.cache_hit),
                wall_seconds=time.perf_counter() - started,
                queue_seconds=queue_seconds,
                status=FAILED,
                error=record.error,
                task_retries=max(getattr(error, "attempts", 1) - 1, 0),
                commit=current_commit(),
                hardware_class=hardware_class(self.env.num_workers),
                peak_rss_bytes=self._sampler.peak_rss_bytes(since=job_mono),
                cpu_seconds=max(0.0, read_cpu_seconds() - job_cpu0),
            )
            self._transition(record, FAILED, detail=record.error)
            self.observations.record(observation)
        finally:
            self._update_scheduler_gauges()

    def _account_engine_metrics(self, engine_result: Any) -> None:
        """Fold one engine run's totals into the service metrics."""
        metrics = engine_result.metrics
        timings = engine_result.engine.timings
        counter = self.metrics.counter
        counter("engine.shuffle_pairs").inc(metrics.map_output_pairs)
        counter("engine.spilled_bytes").inc(metrics.spilled_bytes)
        counter("engine.spill_runs").inc(metrics.spill_runs)
        counter("engine.output_records").inc(metrics.output_records)
        engine = engine_result.engine
        if engine.task_retries:
            counter("engine.task_retries").inc(engine.task_retries)
        if engine.pool_rebuilds:
            counter("engine.pool_rebuilds").inc(engine.pool_rebuilds)
        if engine.fallback_backend is not None:
            counter(f"engine.fallbacks.{engine.fallback_backend}").inc()
        if engine.encoded_bytes:
            counter("engine.encoded_bytes").inc(engine.encoded_bytes)
        if engine.shm_segments:
            counter("engine.shm_segments").inc(engine.shm_segments)
        histogram = self.metrics.histogram
        histogram("phase.map_seconds").observe(timings.map_seconds)
        histogram("phase.shuffle_seconds").observe(timings.shuffle_seconds)
        histogram("phase.reduce_seconds").observe(timings.reduce_seconds)
