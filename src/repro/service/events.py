"""Job lifecycle states, events, and the service's event log.

A job moves through a small, strictly observable state machine::

    submit ──> queued ──> running ──> done
                  │           │  └──> failed
                  │           └─(cancel)─> cancelling ──> cancelled
                  └─(cancel)─> cancelled
    submit ─(admission refused)─> rejected

Every transition is recorded as a :class:`JobEvent` — in the job's own
history and in the service-wide :class:`EventLog` — and optionally pushed
to a subscriber callback, which is how ``repro serve`` streams NDJSON
status lines while jobs run.

Event ordering is defined by the log's ``seq`` counter (with the
``monotonic`` timestamp for durations), never by the wall-clock ``at``
field: ``at`` exists purely so humans reading a status line see a real
date, and the wall clock can step backwards under NTP adjustment.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.exceptions import InvalidInstanceError
from repro.obs.trace import Tracer, as_tracer

#: Lifecycle states, in rough forward order.
QUEUED = "queued"
RUNNING = "running"
CANCELLING = "cancelling"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
REJECTED = "rejected"

#: Every state a job can be observed in.
JOB_STATES = (QUEUED, RUNNING, CANCELLING, DONE, FAILED, CANCELLED, REJECTED)

#: States a job never leaves; the handle's ``wait()`` unblocks on these.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED, REJECTED})


@dataclass(frozen=True)
class JobEvent:
    """One lifecycle transition of one job.

    Attributes:
        job_id: the job the event belongs to.
        state: the state entered (one of :data:`JOB_STATES`).
        at: wall-clock timestamp (``time.time()``) — human-readable, but
            not safe for ordering or durations (the wall clock can step
            backwards under NTP adjustment).
        detail: optional human-readable context — the rejection reason,
            the failure message, the plan-cache outcome, and so on.
        monotonic: :func:`time.perf_counter` timestamp; durations between
            events are computed on this clock, never on ``at``.
        seq: the emitting log's per-log sequence number (1-based, set by
            :meth:`EventLog.emit`); the authoritative total order of
            events — two events with equal timestamps still compare.
    """

    job_id: str
    state: str
    # repro-lint: disable=determinism -- `at` is display-only wall time; ordering uses monotonic+seq
    at: float = field(default_factory=time.time)
    detail: str = ""
    monotonic: float = field(default_factory=time.perf_counter)
    seq: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (one NDJSON status line in the serve protocol)."""
        payload: dict[str, Any] = {
            "event": "status",
            "id": self.job_id,
            "state": self.state,
            "at": self.at,
            "monotonic": self.monotonic,
            "seq": self.seq,
        }
        if self.detail:
            payload["detail"] = self.detail
        return payload


class EventLog:
    """Thread-safe, bounded, append-only log of job events.

    The service appends every transition here; subscribers (the serve
    loop's line printer, tests) receive each event synchronously on the
    emitting thread.  The log keeps the most recent *capacity* events —
    enough for observability without growing forever under sustained
    traffic; per-job histories live on the job records themselves.

    Every emitted event is stamped with this log's next sequence number
    (under the log lock, so the numbering is gapless and strictly
    increasing even with concurrent emitters) — consumers order by
    ``seq``, not by the wall-clock ``at``.  With a *tracer*, each event
    additionally becomes a ``job:<state>`` instant span on the event's
    own job trace, so lifecycle transitions appear on the job timeline
    next to the phase spans.
    """

    def __init__(self, capacity: int = 4096, *, tracer: Tracer | None = None):
        if capacity <= 0:
            raise InvalidInstanceError(
                f"capacity must be positive, got {capacity}"
            )
        self._capacity = capacity
        self._events: list[JobEvent] = []
        self._lock = threading.Lock()
        self._subscribers: list[Callable[[JobEvent], None]] = []
        self._tracer = as_tracer(tracer)
        self._seq = 0

    def subscribe(self, callback: Callable[[JobEvent], None]) -> None:
        """Register *callback* to receive every future event."""
        with self._lock:
            self._subscribers.append(callback)

    def emit(self, event: JobEvent) -> JobEvent:
        """Stamp, record, and deliver *event*; returns the stamped event.

        The sequence number is assigned under the log lock, so the
        ``seq`` order is exactly the append order.  Subscriber exceptions
        are swallowed: an observer must never be able to wedge the
        scheduler's worker threads.
        """
        with self._lock:
            self._seq += 1
            event = replace(event, seq=self._seq)
            self._events.append(event)
            if len(self._events) > self._capacity:
                del self._events[: len(self._events) - self._capacity]
            subscribers = list(self._subscribers)
        self._tracer.instant(
            f"job:{event.state}",
            category="event",
            trace_id=event.job_id,
            seq=event.seq,
        )
        for callback in subscribers:
            try:
                callback(event)
            except Exception:  # noqa: BLE001 - observer isolation
                pass
        return event

    def snapshot(self, job_id: str | None = None) -> list[JobEvent]:
        """The retained events, oldest first (optionally one job's)."""
        with self._lock:
            events = list(self._events)
        if job_id is None:
            return events
        return [event for event in events if event.job_id == job_id]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)
