"""Job lifecycle states, events, and the service's event log.

A job moves through a small, strictly observable state machine::

    submit ──> queued ──> running ──> done
                  │           │  └──> failed
                  │           └─(cancel)─> cancelling ──> cancelled
                  └─(cancel)─> cancelled
    submit ─(admission refused)─> rejected

Every transition is recorded as a :class:`JobEvent` — in the job's own
history and in the service-wide :class:`EventLog` — and optionally pushed
to a subscriber callback, which is how ``repro serve`` streams NDJSON
status lines while jobs run.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

#: Lifecycle states, in rough forward order.
QUEUED = "queued"
RUNNING = "running"
CANCELLING = "cancelling"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
REJECTED = "rejected"

#: Every state a job can be observed in.
JOB_STATES = (QUEUED, RUNNING, CANCELLING, DONE, FAILED, CANCELLED, REJECTED)

#: States a job never leaves; the handle's ``wait()`` unblocks on these.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED, REJECTED})


@dataclass(frozen=True)
class JobEvent:
    """One lifecycle transition of one job.

    Attributes:
        job_id: the job the event belongs to.
        state: the state entered (one of :data:`JOB_STATES`).
        at: wall-clock timestamp (``time.time()``).
        detail: optional human-readable context — the rejection reason,
            the failure message, the plan-cache outcome, and so on.
    """

    job_id: str
    state: str
    at: float = field(default_factory=time.time)
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (one NDJSON status line in the serve protocol)."""
        payload: dict[str, Any] = {
            "event": "status",
            "id": self.job_id,
            "state": self.state,
            "at": self.at,
        }
        if self.detail:
            payload["detail"] = self.detail
        return payload


class EventLog:
    """Thread-safe, bounded, append-only log of job events.

    The service appends every transition here; subscribers (the serve
    loop's line printer, tests) receive each event synchronously on the
    emitting thread.  The log keeps the most recent *capacity* events —
    enough for observability without growing forever under sustained
    traffic; per-job histories live on the job records themselves.
    """

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._events: list[JobEvent] = []
        self._lock = threading.Lock()
        self._subscribers: list[Callable[[JobEvent], None]] = []

    def subscribe(self, callback: Callable[[JobEvent], None]) -> None:
        """Register *callback* to receive every future event."""
        with self._lock:
            self._subscribers.append(callback)

    def emit(self, event: JobEvent) -> None:
        """Record *event* and deliver it to every subscriber.

        Subscriber exceptions are swallowed: an observer must never be
        able to wedge the scheduler's worker threads.
        """
        with self._lock:
            self._events.append(event)
            if len(self._events) > self._capacity:
                del self._events[: len(self._events) - self._capacity]
            subscribers = list(self._subscribers)
        for callback in subscribers:
            try:
                callback(event)
            except Exception:  # noqa: BLE001 - observer isolation
                pass

    def snapshot(self, job_id: str | None = None) -> list[JobEvent]:
        """The retained events, oldest first (optionally one job's)."""
        with self._lock:
            events = list(self._events)
        if job_id is None:
            return events
        return [event for event in events if event.job_id == job_id]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)
