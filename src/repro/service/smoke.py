"""Service smoke scenario: N concurrent jobs vs N one-shot runs.

Shared by ``repro bench --service-jobs`` (the CI perf-smoke hook) and the
E21 benchmark.  The scenario cycles a fixed set of spec shapes so the
same planning request recurs — in service mode those recurrences are
plan-cache hits — and runs every job twice: once through a K-slot
:class:`~repro.service.JobService` (shared pools, shared plan cache) and
once through the direct one-shot pipeline (fresh plan, per-run pool).
Output identity between the two paths is always asserted; wall-clock
rows (throughput, p50/p95 latency) are advisory on shared hardware, like
every engine bench.
"""

from __future__ import annotations

import time
from typing import Any

from repro import planner as planner_pkg
from repro.planner.spec import JobSpec
from repro.service.service import JobService, collect_reduce, spec_records

#: Spec shapes the scenario cycles through.  All use full planning
#: (``method=None``) so a cache miss pays real enumeration work; sizes
#: stay small enough that the exact solvers participate.
def scenario_specs(jobs: int, *, objective: str = "min-reducers") -> list[JobSpec]:
    """*jobs* specs cycling over the scenario's shapes (duplicates on
    purpose: the repeats are the plan-cache hits)."""
    shapes = [
        JobSpec.a2a([3, 5, 2, 7, 4, 6], q=13, method=None, objective=objective),
        JobSpec.x2y([4, 2, 3], [5, 3], q=9, method=None, objective=objective),
        JobSpec.a2a([4] * 8, q=12, method=None, objective=objective),
    ]
    return [shapes[index % len(shapes)] for index in range(jobs)]


def _percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of *values* (0.0 for an empty list)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def run_sequential(specs: list[JobSpec]) -> tuple[list[Any], float, list[float]]:
    """The one-shot baseline: fresh plan and per-run pool for every job.

    Returns ``(per-job sorted outputs, total wall seconds, per-job
    latencies)``.
    """
    outputs: list[Any] = []
    latencies: list[float] = []
    started = time.perf_counter()
    for spec in specs:
        job_started = time.perf_counter()
        planned = planner_pkg.plan(spec)
        result = planner_pkg.run(
            planned, spec_records(spec), collect_reduce,
            config=planned.execution,
        )
        latencies.append(time.perf_counter() - job_started)
        outputs.append(sorted(result.outputs))
    return outputs, time.perf_counter() - started, latencies


def run_service(
    specs: list[JobSpec], *, slots: int = 2
) -> tuple[list[Any], float, list[float], dict[str, Any]]:
    """The service path: all jobs submitted up front, K slots, shared pools.

    Returns ``(per-job sorted outputs, total wall seconds, per-job
    submit-to-done latencies, service stats)``.
    """
    outputs: list[Any] = []
    latencies: list[float] = []
    started = time.perf_counter()
    with JobService(slots=slots) as service:
        handles = [service.submit_spec(spec) for spec in specs]
        for handle in handles:
            result = handle.result(timeout=120.0)
            outputs.append(sorted(result.outputs))
        wall = time.perf_counter() - started
        for handle in handles:
            status = handle.status()
            latencies.append(status.finished_at - status.submitted_at)
        stats = service.stats()
    return outputs, wall, latencies, stats


def run_service_smoke(
    jobs: int = 8, *, slots: int = 2
) -> tuple[list[dict[str, Any]], list[str]]:
    """Run the scenario both ways; returns ``(table rows, check failures)``.

    Failures cover correctness only (every job done, service outputs
    identical to the one-shot path, the expected plan-cache hits
    happened) — never wall clock, which is hardware-dependent.
    """
    specs = scenario_specs(jobs)
    distinct = len({spec.fingerprint() for spec in specs})
    seq_outputs, seq_wall, seq_latencies = run_sequential(specs)
    svc_outputs, svc_wall, svc_latencies, stats = run_service(
        specs, slots=slots
    )

    failures: list[str] = []
    for index, (seq, svc) in enumerate(zip(seq_outputs, svc_outputs)):
        if seq != svc:
            failures.append(
                f"service job {index} outputs diverge from the one-shot "
                f"path ({len(svc)} vs {len(seq)} records)"
            )
    expected_hits = jobs - distinct
    cache = stats["plan_cache"]
    if cache["hits"] < expected_hits:
        failures.append(
            f"plan cache hit {cache['hits']} time(s), expected at least "
            f"{expected_hits} (jobs={jobs}, distinct specs={distinct})"
        )
    done = stats["jobs"].get("done", 0)
    if done != jobs:
        failures.append(
            f"only {done}/{jobs} service jobs reached the done state: "
            f"{stats['jobs']}"
        )

    def row(mode: str, wall: float, latencies: list[float], hit_rate: float | None):
        return {
            "mode": mode,
            "jobs": jobs,
            "slots": slots if mode == "service" else 1,
            "wall_s": round(wall, 4),
            "jobs_per_s": round(jobs / wall, 2) if wall else 0.0,
            "p50_s": round(_percentile(latencies, 0.50), 4),
            "p95_s": round(_percentile(latencies, 0.95), 4),
            "cache_hit_rate": (
                round(hit_rate, 3) if hit_rate is not None else ""
            ),
        }

    rows = [
        row("sequential", seq_wall, seq_latencies, None),
        row("service", svc_wall, svc_latencies, cache["hit_rate"]),
    ]
    return rows, failures
