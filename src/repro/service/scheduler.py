"""Fair FIFO-with-priorities scheduler with K concurrent slots.

The scheduler owns a fixed pool of worker threads (the service's
*slots*).  Submitted jobs wait in a priority queue ordered by
``(priority, submission sequence)`` — lower priority numbers run first,
and jobs of equal priority run in strict submission order, so the queue
is fair: no job can be starved by later submissions at its own priority.
Each worker pops one job at a time under the queue lock, records it in
:attr:`JobScheduler.dispatch_order` (the deterministic dispatch sequence
the fairness tests pin), and runs the job's thunk to completion.

Cancellation of a *queued* job is exact: the entry is marked dead and
dropped when popped, and the job never runs.  Cancellation of a
*running* job is the service's concern (cooperative checkpoints in the
job thunk) — the scheduler only reports whether the job was still
queued.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Callable

from repro.exceptions import InvalidInstanceError, ServiceClosedError

#: Default concurrent job slots.
DEFAULT_SLOTS = 2

#: Most recent dispatches retained in :attr:`JobScheduler.dispatch_order`
#: (bounded like the service's event log so a long-lived service does not
#: grow a list forever; the fairness tests look at far fewer).
DISPATCH_ORDER_LIMIT = 4096


class JobScheduler:
    """Runs submitted thunks on *slots* worker threads in priority-FIFO order."""

    def __init__(self, slots: int = DEFAULT_SLOTS, *, name: str = "repro-job"):
        if slots <= 0:
            raise InvalidInstanceError(f"slots must be positive, got {slots}")
        self.slots = slots
        self._heap: list[tuple[int, int, str, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._cancelled: set[str] = set()
        self._running: set[str] = set()
        self._queued = 0
        self._shutdown = False
        #: Total jobs handed to a worker slot over the scheduler's lifetime.
        self.dispatched = 0
        #: High-water mark of the queue depth (both under the queue lock).
        self.peak_queued = 0
        #: Job ids in the order workers picked them up (queued-cancelled
        #: jobs never appear), capped at the most recent
        #: :data:`DISPATCH_ORDER_LIMIT`.  Appended under the queue lock,
        #: so the sequence is exact even with concurrent workers.
        self.dispatch_order: list[str] = []
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"{name}-{index}", daemon=True
            )
            for index in range(slots)
        ]
        for worker in self._workers:
            worker.start()

    # -- submission and cancellation ------------------------------------

    def submit(
        self, job_id: str, thunk: Callable[[], None], *, priority: int = 0
    ) -> None:
        """Queue *thunk* under *job_id*; lower *priority* runs earlier."""
        with self._lock:
            if self._shutdown:
                raise ServiceClosedError("scheduler is shut down")
            heapq.heappush(
                self._heap, (priority, next(self._seq), job_id, thunk)
            )
            self._queued += 1
            if self._queued > self.peak_queued:
                self.peak_queued = self._queued
            self._wake.notify()

    def cancel_queued(self, job_id: str) -> bool:
        """Prevent a still-queued job from ever running.

        Returns ``True`` when the job was waiting in the queue (it will
        be silently dropped), ``False`` when it was already dispatched
        (running or finished) — the caller then handles cooperative
        cancellation itself.
        """
        with self._lock:
            queued = any(entry[2] == job_id for entry in self._heap)
            if queued and job_id not in self._cancelled:
                self._cancelled.add(job_id)
                self._queued -= 1
                self._idle.notify_all()
            return queued

    # -- introspection ---------------------------------------------------

    @property
    def queued_count(self) -> int:
        """Jobs waiting to be dispatched (cancelled entries excluded)."""
        with self._lock:
            return self._queued

    @property
    def running_count(self) -> int:
        """Jobs currently executing on a worker slot."""
        with self._lock:
            return len(self._running)

    # -- lifecycle -------------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        """Block until the queue is empty and no job is running.

        Returns ``False`` when *timeout* (seconds) elapsed first.
        """
        with self._lock:
            return self._idle.wait_for(
                lambda: self._queued == 0 and not self._running, timeout
            )

    def close(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop accepting work and shut the worker threads down.

        With ``drain=True`` (default), queued and running jobs finish
        first (bounded by *timeout*); otherwise still-queued jobs are
        abandoned where they sit.
        """
        if drain:
            self.drain(timeout)
        with self._lock:
            self._shutdown = True
            self._wake.notify_all()
        for worker in self._workers:
            worker.join(timeout)

    def __enter__(self) -> "JobScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- worker loop -----------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while not self._heap and not self._shutdown:
                    self._wake.wait()
                if self._shutdown:
                    # A drained close reaches here with an empty heap; a
                    # drain=False close abandons whatever is still queued.
                    return
                _, _, job_id, thunk = heapq.heappop(self._heap)
                if job_id in self._cancelled:
                    # Queued-cancelled: drop without dispatching (the
                    # queued counter was already decremented by cancel).
                    self._cancelled.discard(job_id)
                    continue
                self._queued -= 1
                self.dispatched += 1
                self.dispatch_order.append(job_id)
                if len(self.dispatch_order) > DISPATCH_ORDER_LIMIT:
                    del self.dispatch_order[
                        : len(self.dispatch_order) - DISPATCH_ORDER_LIMIT
                    ]
                self._running.add(job_id)
            try:
                thunk()
            except Exception:  # noqa: BLE001 - thunks report their own errors
                # Job thunks (the service's _execute_job) record failures
                # on the job record; a raise here would kill the slot.
                pass
            finally:
                with self._lock:
                    self._running.discard(job_id)
                    self._idle.notify_all()
