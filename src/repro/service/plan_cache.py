"""Bounded LRU plan cache keyed by content fingerprints.

Plans are deterministic functions of ``(JobSpec, Environment)`` — method
enumeration is sorted, scoring is pure arithmetic, and the execution
config resolution depends only on the environment snapshot — so a cache
hit can skip candidate enumeration entirely and return a byte-identical
plan (``Plan.to_json()`` equality is pinned by the tests).  Keys come
from :func:`repro.planner.planner.plan_fingerprint`; this class is the
:class:`~repro.planner.planner.PlanCacheProtocol` implementation the
:class:`~repro.service.service.JobService` plugs into ``plan(...,
cache=...)``.

The cache is thread-safe: the service plans from several scheduler
worker threads at once.  Two concurrent misses on the same key both plan
and both store — the second ``put`` overwrites the first with an equal
plan, which is harmless and cheaper than holding a lock across planning.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from repro.exceptions import InvalidInstanceError
from repro.planner.environment import Environment
from repro.planner.plan import Plan
from repro.planner.planner import plan_fingerprint
from repro.planner.spec import JobSpec

#: Default number of cached plans; at ~1-10 KB of scorecards per plan this
#: is well under a megabyte.
DEFAULT_CAPACITY = 128


class PlanCache:
    """LRU cache from plan fingerprint to :class:`Plan`.

    Attributes:
        capacity: maximum retained plans; the least recently used entry
            is evicted when a ``put`` would exceed it.
        hits / misses / evictions: monotonic counters, reported by the
            service's ``stats()`` and the E21 bench's hit-rate column.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise InvalidInstanceError(
                f"capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self._entries: OrderedDict[str, Plan] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key_for(spec: JobSpec, env: Environment) -> str:
        """The cache key for a planning request (delegates to the planner)."""
        return plan_fingerprint(spec, env)

    def get(self, key: str) -> Plan | None:
        """The cached plan for *key*, refreshing its recency; ``None`` on miss."""
        with self._lock:
            cached = self._entries.get(key)
            if cached is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return cached

    def put(self, key: str, plan: Plan) -> None:
        """Store *plan* under *key*, evicting the LRU entry beyond capacity."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = plan
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every cached plan (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, Any]:
        """Counters plus current size, for service stats and bench rows."""
        with self._lock:
            size = len(self._entries)
        total = self.hits + self.misses
        return {
            "size": size,
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": (self.hits / total) if total else 0.0,
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries
