"""Job service layer: concurrent jobs over the planner/engine stack.

Everything below this package is one-shot: one spec, one plan, one engine
run, one worker pool built and torn down.  The service layer multiplexes
*many* jobs over *shared* resources:

* :class:`JobService` — submit/status/result/cancel/list lifecycle over a
  fair priority-FIFO :class:`JobScheduler` with K concurrent slots.
* Shared, long-lived backend pools — one pool per ``(backend, workers)``
  shape, opened persistently and reused by every job.
* A :class:`PlanCache` — plans are deterministic in ``(spec,
  environment)``, so repeated submissions skip enumeration entirely.
* A bounded :class:`ResultStore` with LRU eviction and per-job metrics.
* Admission control against the :class:`~repro.planner.Environment`
  probe: jobs that oversubscribe cores or memory are rejected at submit.

Quickstart::

    from repro.planner import JobSpec
    from repro.service import JobService

    with JobService(slots=2) as service:
        spec = JobSpec.a2a([3, 5, 2, 7, 4], q=12, method=None)
        handle = service.submit_spec(spec)        # plan + engine run
        result = handle.result(timeout=30.0)
        print(result.plan.chosen, len(result.outputs), result.cache_hit)

The CLI surfaces the same layer as ``repro serve`` (newline-delimited
JSON job specs in, status/result lines out) and ``repro submit`` (one
spec per invocation); see the README's "Serving jobs" section.
"""

from repro.service.events import (
    CANCELLED,
    CANCELLING,
    DONE,
    FAILED,
    JOB_STATES,
    QUEUED,
    REJECTED,
    RUNNING,
    TERMINAL_STATES,
    EventLog,
    JobEvent,
)
from repro.service.plan_cache import PlanCache
from repro.service.results import JobResult, ResultStore
from repro.service.scheduler import JobScheduler
from repro.service.service import (
    JobHandle,
    JobService,
    JobStatus,
    collect_reduce,
    spec_records,
)

__all__ = [
    "JobService",
    "JobHandle",
    "JobStatus",
    "JobScheduler",
    "JobResult",
    "ResultStore",
    "PlanCache",
    "EventLog",
    "JobEvent",
    "JOB_STATES",
    "TERMINAL_STATES",
    "QUEUED",
    "RUNNING",
    "CANCELLING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "REJECTED",
    "collect_reduce",
    "spec_records",
]
