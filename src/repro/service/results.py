"""Per-job results and the bounded LRU result store.

A finished job leaves two artifacts: its *status* (state, timings, error
— kept on the service's job records, cheap and unbounded for a session)
and its *result* (outputs plus the full :class:`JobMetrics` /
:class:`EngineMetrics`), which can be arbitrarily large and therefore
lives in this bounded store.  When the store evicts a result, the job's
status stays queryable; the *service* distinguishes "evicted" (the job
record says ``done`` but the store misses) from "never existed" and
raises :class:`~repro.exceptions.ResultEvictedError` for the former —
the store itself keeps no per-job tombstones, so its memory stays
bounded by *capacity* no matter how many jobs pass through.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.engine.metrics import EngineMetrics
from repro.exceptions import InvalidInstanceError, UnknownJobError
from repro.mapreduce.metrics import JobMetrics
from repro.planner.plan import Plan

#: Default number of retained job results.
DEFAULT_CAPACITY = 256


@dataclass(frozen=True)
class JobResult:
    """Everything a completed job produced.

    Attributes:
        job_id: the job this result belongs to.
        plan: the (possibly cache-shared) plan the job ran under.
        fingerprint: the plan-cache key of the planning request.
        cache_hit: whether the plan came from the plan cache.
        outputs: the engine outputs, or ``None`` for plan-only jobs.
        metrics: the run's :class:`JobMetrics` (``None`` for plan-only).
        engine: the run's :class:`EngineMetrics` (``None`` for plan-only).
        wall_seconds: running-state wall time (excludes queueing).
    """

    job_id: str
    plan: Plan
    fingerprint: str
    cache_hit: bool
    outputs: list[Any] | None = None
    metrics: JobMetrics | None = None
    engine: EngineMetrics | None = None
    wall_seconds: float = 0.0

    @property
    def executed(self) -> bool:
        """Whether the job ran records through the engine (vs plan-only)."""
        return self.outputs is not None

    def summary(self) -> dict[str, Any]:
        """Flat dict for NDJSON result lines and table rendering."""
        row: dict[str, Any] = {
            "id": self.job_id,
            "chosen": self.plan.chosen,
            "mode": self.plan.mode,
            "cache_hit": self.cache_hit,
            "wall_seconds": self.wall_seconds,
        }
        score = self.plan.chosen_score
        row["num_reducers"] = score.num_reducers
        row["communication_cost"] = score.communication_cost
        if self.executed:
            row["outputs"] = len(self.outputs)
            if self.metrics is not None:
                row["reducers_used"] = self.metrics.num_reducers
                row["max_load"] = self.metrics.max_reducer_load
            if self.engine is not None:
                row["backend"] = self.engine.backend
                row["workers"] = self.engine.num_workers
        return row


class ResultStore:
    """Thread-safe LRU store from job id to :class:`JobResult`.

    ``get`` refreshes recency; ``put`` evicts the least recently used
    result beyond *capacity* and counts the eviction.  Missing ids raise
    ``KeyError`` from :meth:`fetch` (the service layers the
    evicted-vs-unknown distinction on top); :meth:`get` returns ``None``
    instead for probing.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise InvalidInstanceError(
                f"capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self._entries: OrderedDict[str, JobResult] = OrderedDict()
        self._lock = threading.Lock()
        self.evictions = 0

    def put(self, result: JobResult) -> None:
        """Store *result*, evicting the LRU entry beyond capacity."""
        with self._lock:
            if result.job_id in self._entries:
                self._entries.move_to_end(result.job_id)
            self._entries[result.job_id] = result
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def get(self, job_id: str) -> JobResult | None:
        """The stored result, refreshing recency; ``None`` when absent."""
        with self._lock:
            result = self._entries.get(job_id)
            if result is not None:
                self._entries.move_to_end(job_id)
            return result

    def fetch(self, job_id: str) -> JobResult:
        """The stored result; ``KeyError`` when absent (evicted or unknown)."""
        with self._lock:
            result = self._entries.get(job_id)
            if result is None:
                raise UnknownJobError(job_id)
            self._entries.move_to_end(job_id)
            return result

    def discard(self, job_id: str) -> None:
        """Forget *job_id* entirely (no eviction accounting)."""
        with self._lock:
            self._entries.pop(job_id, None)

    def stats(self) -> dict[str, Any]:
        """Size/capacity/evictions, for service stats and bench rows."""
        with self._lock:
            size = len(self._entries)
        return {
            "size": size,
            "capacity": self.capacity,
            "evictions": self.evictions,
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._entries
