"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``solve-a2a --sizes 3,5,2,7 --q 12 [--method auto]`` — build, verify and
  print a mapping schema (add ``--json`` for the wire format).
* ``solve-x2y --x-sizes 4,5 --y-sizes 3,3 --q 10`` — the X2Y counterpart.
* ``sweep --sizes ... --q-values 10,20,40`` — the reducer-count tradeoff
  table for an A2A input set.
* ``verify --file schema.json`` — re-verify a persisted schema.
* ``plan --sizes 3,5,2,7 --q 12 [--objective min-communication]`` — run
  the cost-based planner: print the candidate table and the chosen
  method plus resolved execution configuration.  ``--explain`` shows the
  per-candidate cost rows, ``--json-out plan.json`` serializes the plan
  (``repro.planner.Plan.from_json`` loads it back), ``--x-sizes`` /
  ``--y-sizes`` plan an X2Y instance, ``--r`` a multiway one.
* ``run --app skew-join --q 80 --backend processes`` — execute a
  schema-driven application on an engine backend and print job plus
  phase-timing metrics.  ``--memory-budget N`` bounds each map task to
  ``N`` buffered pairs and spills the rest to disk (out-of-core mode);
  the spill counters are printed after the metrics tables.  ``--plan
  auto`` lets the planner choose the schema method *and* the execution
  configuration (``--objective`` sets what it optimizes).
* ``bench [--scale 1.0] [--repeat 1] [--check]`` — a fast subset of the
  E17/E18 engine benchmarks: the skew join plus the map/reduce/shuffle-heavy
  scenarios across all backends, printed as a speedup table.  ``--check``
  exits 1 when the threads backend is grossly slower than serial (the CI
  perf smoke).  ``--service-jobs N`` additionally runs the job-service
  scenario (N concurrent jobs on a 2-slot service vs N sequential
  one-shot runs; ``--check`` then also asserts output identity and the
  expected plan-cache hits).
* ``serve [--slots 2] [--input jobs.ndjson]`` — the job-service loop:
  read newline-delimited JSON job requests (``{"id": ..., "spec":
  {"kind": "a2a", "q": 12, "sizes": [...]}, "priority": 0, "execute":
  true}``), stream NDJSON status events and result lines to stdout.
* ``submit --sizes 3,5,2,7 --q 12 [--execute/--plan-only]`` — one-shot
  convenience wrapper over the same service stack: build the spec from
  flags, run it through an in-process service, print the result (NDJSON
  with ``--json``).
* ``metrics --log obs.ndjson`` — summarize a service observation log
  (written by ``serve --obs-log``) as a per-backend table: job counts,
  cache hit rate, wall-clock percentiles, phase means.
* ``history record|report|compare|check|gc --file history.ndjson`` —
  the per-commit perf history: append records (from ``bench
  --json-out`` rows, a ``--profile`` export, or explicit flags), print
  per-series trend tables, compare two commits, trend-gate the latest
  run against the rolling median (``check`` exits 1 on a regression),
  and bound the file's growth.

``run`` and ``bench`` accept ``--inject-faults SPEC`` (e.g.
``crash=0.2,kill=0.05,delay=0.1:0.02,transient=0.1,seed=7``) for
deterministic chaos testing: ``run`` additionally takes
``--max-attempts``, ``--task-timeout``, ``--deadline``, and
``--fallback`` to shape the recovery policy, and ``bench`` adds the E23
fault-injection comparison (fault-free vs injected, outputs asserted
identical).  ``serve`` shuts down gracefully on SIGINT/SIGTERM —
draining jobs, closing pools, and flushing ``--obs-log``/``--trace``
before exiting 0.

``run``, ``bench``, and ``submit`` accept ``--trace out.json`` to export
the run's spans as Chrome trace-event JSON (openable in Perfetto or
``chrome://tracing``) and ``--profile out.json`` to attach the
continuous profiler (background RSS/CPU sampler plus per-phase function
capture; the export includes flamegraph-ready collapsed stacks);
``serve --trace`` additionally streams every finished span as an NDJSON
``{"event": "span", ...}`` line, a ``{"metrics": true}`` request line
answers with a metrics snapshot, and a ``{"health": true}`` request
line answers with the live-service SLO snapshot (queue-latency
percentiles, slot utilization, rolling failure rate, pool rebuilds,
peak RSS).

``repro --version`` prints the package version.  Exit status is 0 on
success, 1 on infeasible/invalid input, mirroring what a scheduler
wrapping this tool would need.  Every ``--json-out`` write is atomic
(temp file + rename), so interrupted runs never leave truncated JSON.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__
from repro import io as repro_io
from repro.analysis.tradeoffs import sweep_a2a_reducers
from repro.core.costs import summarize
from repro.core.instance import A2AInstance, X2YInstance
from repro.core.selector import A2A_METHODS, X2Y_METHODS, solve_a2a, solve_x2y
from repro.engine.backends import BACKENDS
from repro.exceptions import InvalidInstanceError, ReproError, UnknownMethodError
from repro.planner import OBJECTIVES
from repro.utils.tables import format_table


def _positive_int(text: str) -> int:
    """Parse a strictly positive integer argument."""
    try:
        value = int(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}") from exc
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _positive_float(text: str) -> float:
    """Parse a strictly positive float argument (timeouts, deadlines)."""
    try:
        value = float(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}") from exc
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _fault_spec(text: str):
    """Parse an ``--inject-faults`` spec into a validated FaultSpec."""
    from repro.faults import FaultSpec

    try:
        return FaultSpec.parse(text)
    except ReproError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _parse_sizes(text: str) -> list[int]:
    """Parse and validate a comma-separated size list, e.g. ``3,5,2``.

    Sizes (and ``--q-values`` entries) must be strictly positive integers
    and the list must be non-empty, so bad input fails here with a clear
    message instead of surfacing as a confusing error deeper in the
    solver.
    """
    try:
        values = [int(part) for part in text.split(",") if part.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad size list {text!r}") from exc
    if not values:
        raise argparse.ArgumentTypeError(
            f"size list must contain at least one integer, got {text!r}"
        )
    for value in values:
        if value <= 0:
            raise argparse.ArgumentTypeError(
                f"sizes must be positive, got {value}"
            )
    return values


#: Options whose value is a comma-separated integer list and may therefore
#: legitimately start with ``-`` (a negative entry the validator should
#: report).  ``main`` glues such values onto their flag with ``=`` so
#: argparse does not mistake them for options and die with the opaque
#: "expected one argument".
_SIZE_LIST_FLAGS = frozenset({"--sizes", "--x-sizes", "--y-sizes", "--q-values"})


def _absorb_size_values(argv: list[str]) -> list[str]:
    """Rewrite ``--sizes -3,5`` into ``--sizes=-3,5`` so validation runs.

    Only values that look like an integer list (a ``-`` followed by a
    digit) are absorbed; anything else is left for argparse to treat as
    the option-missing-its-argument error it is.
    """
    rewritten: list[str] = []
    index = 0
    while index < len(argv):
        token = argv[index]
        if (
            token in _SIZE_LIST_FLAGS
            and index + 1 < len(argv)
            and len(argv[index + 1]) >= 2
            and argv[index + 1][0] == "-"
            and argv[index + 1][1].isdigit()
        ):
            rewritten.append(f"{token}={argv[index + 1]}")
            index += 2
            continue
        rewritten.append(token)
        index += 1
    return rewritten


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mapping schemas for different-sized MapReduce inputs "
        "(Afrati et al., EDBT 2015)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    a2a = commands.add_parser("solve-a2a", help="solve an all-to-all instance")
    a2a.add_argument("--sizes", type=_parse_sizes, required=True)
    a2a.add_argument("--q", type=int, required=True)
    a2a.add_argument(
        "--method", default="auto", choices=["auto", *sorted(A2A_METHODS)]
    )
    a2a.add_argument("--json", action="store_true", help="print the JSON schema")

    x2y = commands.add_parser("solve-x2y", help="solve an X-to-Y instance")
    x2y.add_argument("--x-sizes", type=_parse_sizes, required=True)
    x2y.add_argument("--y-sizes", type=_parse_sizes, required=True)
    x2y.add_argument("--q", type=int, required=True)
    x2y.add_argument(
        "--method", default="auto", choices=["auto", *sorted(X2Y_METHODS)]
    )
    x2y.add_argument("--json", action="store_true", help="print the JSON schema")

    sweep = commands.add_parser("sweep", help="A2A reducer-count sweep over q")
    sweep.add_argument("--sizes", type=_parse_sizes, required=True)
    sweep.add_argument("--q-values", type=_parse_sizes, required=True)

    verify = commands.add_parser("verify", help="verify a persisted schema")
    verify.add_argument("--file", required=True)

    plan_cmd = commands.add_parser(
        "plan", help="cost-based plan: candidate table + chosen method/config"
    )
    plan_cmd.add_argument(
        "--sizes", type=_parse_sizes, help="input sizes (A2A, or multiway with --r)"
    )
    plan_cmd.add_argument("--x-sizes", type=_parse_sizes, help="X-side sizes (X2Y)")
    plan_cmd.add_argument("--y-sizes", type=_parse_sizes, help="Y-side sizes (X2Y)")
    plan_cmd.add_argument("--q", type=int, required=True)
    plan_cmd.add_argument(
        "--r",
        type=_positive_int,
        default=None,
        help="multiway meeting arity (with --sizes)",
    )
    plan_cmd.add_argument(
        "--objective", default="min-reducers", choices=list(OBJECTIVES)
    )
    plan_cmd.add_argument(
        "--method",
        default=None,
        help="pin a method, or 'auto' for the structural fast path "
        "(default: full cost-based planning)",
    )
    plan_cmd.add_argument(
        "--explain",
        action="store_true",
        help="show every cost column per candidate",
    )
    plan_cmd.add_argument(
        "--json-out", default=None, help="write the serialized plan to this file"
    )

    run = commands.add_parser(
        "run", help="execute a schema-driven app on an engine backend"
    )
    run.add_argument(
        "--app", required=True, choices=["similarity", "skew-join"]
    )
    run.add_argument("--q", type=int, required=True)
    run.add_argument(
        "--backend",
        default=None,
        choices=sorted(BACKENDS),
        help="engine backend (default: serial, or planner-chosen with "
        "--plan auto)",
    )
    run.add_argument(
        "--plan",
        default=None,
        choices=["auto"],
        help="let the planner choose the schema method and the execution "
        "configuration (explicit engine knobs like --backend or "
        "--memory-budget take precedence over the planner's)",
    )
    run.add_argument(
        "--objective",
        default="min-reducers",
        choices=list(OBJECTIVES),
        help="what --plan auto optimizes",
    )
    run.add_argument("--num-workers", type=_positive_int, default=None)
    run.add_argument(
        "--memory-budget",
        type=_positive_int,
        default=None,
        help="max buffered pairs per map task before spilling to disk "
        "(default: unbounded, fully in-memory shuffle)",
    )
    run.add_argument(
        "--spill-dir",
        default=None,
        help="base directory for spill files (default: system temp dir)",
    )
    run.add_argument("--method", default="auto")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--m", type=int, default=40, help="similarity: number of documents"
    )
    run.add_argument(
        "--threshold", type=float, default=0.3, help="similarity: threshold"
    )
    run.add_argument(
        "--dist", default="zipf", help="similarity: size distribution"
    )
    run.add_argument(
        "--tuples", type=int, default=400, help="skew-join: tuples per relation"
    )
    run.add_argument(
        "--keys", type=int, default=12, help="skew-join: join-key count"
    )
    run.add_argument(
        "--skew", type=float, default=1.2, help="skew-join: Zipf exponent"
    )
    run.add_argument(
        "--trace",
        default=None,
        help="write the run's spans to this file as Chrome trace-event JSON",
    )
    run.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="profile the run (resource sampler + per-phase function "
        "capture) and write the profile JSON here",
    )
    run.add_argument(
        "--inject-faults",
        type=_fault_spec,
        default=None,
        metavar="SPEC",
        help="deterministic fault injection, e.g. "
        "'crash=0.2,kill=0.05,delay=0.1:0.02,transient=0.1,seed=7' "
        "(rates in [0,1]; kill only takes effect on processes)",
    )
    run.add_argument(
        "--max-attempts",
        type=_positive_int,
        default=None,
        help="per-task retry budget (enables the retry policy; implied "
        "default 4 whenever --inject-faults/--task-timeout/--deadline "
        "is given)",
    )
    run.add_argument(
        "--task-timeout",
        type=_positive_float,
        default=None,
        help="seconds one task attempt may run before it is retried",
    )
    run.add_argument(
        "--deadline",
        type=_positive_float,
        default=None,
        help="seconds the whole run may take (DeadlineExceededError after)",
    )
    run.add_argument(
        "--fallback",
        action="store_true",
        help="graceful degradation: retry the run down the chain "
        "processes -> threads -> serial when a backend cannot run",
    )

    bench = commands.add_parser(
        "bench", help="quick engine benchmark: backends x scenarios"
    )
    bench.add_argument(
        "--backends",
        default=None,
        help="comma-separated backend names (default: all)",
    )
    bench.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="scenario workload multiplier",
    )
    bench.add_argument(
        "--tuples",
        type=_positive_int,
        default=500,
        help="skew-join tuples per relation",
    )
    bench.add_argument(
        "--repeat",
        type=_positive_int,
        default=1,
        help="runs per cell; best wall time is reported",
    )
    bench.add_argument(
        "--num-workers", type=_positive_int, default=None
    )
    bench.add_argument(
        "--plan",
        default=None,
        choices=["auto"],
        help="add a planner-driven row (method and execution both "
        "planner-chosen) to the join bench",
    )
    bench.add_argument(
        "--objective",
        default="min-reducers",
        choices=list(OBJECTIVES),
        help="what the planner-driven row optimizes",
    )
    bench.add_argument(
        "--memory-budget",
        type=_positive_int,
        default=None,
        help="also run the E19 memory-bounded comparison (unbounded vs "
        "this budget) and include its spill rows",
    )
    bench.add_argument(
        "--json-out",
        default=None,
        help="write the raw bench rows to this JSON file",
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if threads is >1.3x slower than serial, or (with "
        "--memory-budget) if the budgeted run failed to spill (perf smoke)",
    )
    bench.add_argument(
        "--service-jobs",
        type=_positive_int,
        default=None,
        help="also run the job-service scenario: this many concurrent "
        "jobs on a 2-slot service vs the same jobs sequentially "
        "(--check asserts output identity and plan-cache hits)",
    )
    bench.add_argument(
        "--service-slots",
        type=_positive_int,
        default=2,
        help="concurrent slots for the --service-jobs scenario",
    )
    bench.add_argument(
        "--baseline",
        default=None,
        help="committed bench --json-out file to gate against: with "
        "--check, exit 1 when a scenario runs >1.3x slower than the "
        "baseline (same worker count and bench params only)",
    )
    bench.add_argument(
        "--trace",
        default=None,
        help="write the scenario runs' spans to this file as Chrome "
        "trace-event JSON",
    )
    bench.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="profile the scenario runs and write the profile JSON here",
    )
    bench.add_argument(
        "--inject-faults",
        type=_fault_spec,
        default=None,
        metavar="SPEC",
        help="also run the fault-injection comparison (E23): each backend "
        "runs the shuffle scenario fault-free and under this spec; "
        "outputs are asserted identical and --check gates bounded "
        "retries",
    )
    bench.add_argument(
        "--codec",
        action="store_true",
        help="also run the block-codec bench (E24): encode/decode "
        "throughput per key kind, a block-size sweep, and the processes "
        "backend with the shared-memory transport on vs off (--check "
        "gates round-trip identity and codec selection)",
    )

    serve = commands.add_parser(
        "serve",
        help="job service: NDJSON job specs in, status/result lines out",
    )
    serve.add_argument(
        "--input",
        default="-",
        help="NDJSON request file ('-' = stdin, the default)",
    )
    serve.add_argument(
        "--slots", type=_positive_int, default=2, help="concurrent job slots"
    )
    serve.add_argument(
        "--plan-cache-size", type=_positive_int, default=128,
        help="retained plans (LRU)",
    )
    serve.add_argument(
        "--result-capacity", type=_positive_int, default=256,
        help="retained job results (LRU)",
    )
    serve.add_argument(
        "--quiet",
        action="store_true",
        help="suppress status and span event lines (result lines still "
        "stream)",
    )
    serve.add_argument(
        "--trace",
        default=None,
        help="collect job spans: stream them as NDJSON span lines and "
        "write the full Chrome trace-event JSON here on exit",
    )
    serve.add_argument(
        "--obs-log",
        default=None,
        help="append one observation record (plan fingerprint + phase "
        "timings) per completed job to this NDJSON file",
    )

    submit = commands.add_parser(
        "submit",
        help="one-shot convenience wrapper over the job service",
    )
    submit.add_argument(
        "--sizes", type=_parse_sizes,
        help="input sizes (A2A, or multiway with --r)",
    )
    submit.add_argument("--x-sizes", type=_parse_sizes, help="X-side sizes (X2Y)")
    submit.add_argument("--y-sizes", type=_parse_sizes, help="Y-side sizes (X2Y)")
    submit.add_argument("--q", type=int, required=True)
    submit.add_argument(
        "--r", type=_positive_int, default=None,
        help="multiway meeting arity (with --sizes)",
    )
    submit.add_argument(
        "--objective", default="min-reducers", choices=list(OBJECTIVES)
    )
    submit.add_argument(
        "--method",
        default=None,
        help="pin a method, or 'auto' for the structural fast path "
        "(default: full cost-based planning)",
    )
    submit.add_argument(
        "--plan-only",
        action="store_true",
        help="plan without executing (multiway specs are always plan-only)",
    )
    submit.add_argument(
        "--priority", type=int, default=0,
        help="job priority (lower runs earlier)",
    )
    submit.add_argument(
        "--json", action="store_true", help="print the NDJSON result line"
    )
    submit.add_argument(
        "--trace",
        default=None,
        help="write the job's spans to this file as Chrome trace-event JSON",
    )
    submit.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="profile the job and write the profile JSON here",
    )

    metrics = commands.add_parser(
        "metrics",
        help="summarize a service observation log (serve --obs-log)",
    )
    metrics.add_argument(
        "--log", required=True, help="observation NDJSON file to summarize"
    )
    metrics.add_argument(
        "--json", action="store_true", help="print the summary as JSON"
    )

    history = commands.add_parser(
        "history",
        help="per-commit perf history: record, report, and trend-gate "
        "profile records",
    )
    history_actions = history.add_subparsers(dest="history_command")
    history_actions.required = True
    h_record = history_actions.add_parser(
        "record", help="append one or more records to a history file"
    )
    h_record.add_argument(
        "--file", required=True, help="history NDJSON file to append to"
    )
    h_record.add_argument(
        "--from-bench",
        default=None,
        metavar="ROWS_JSON",
        help="bench --json-out file: record one entry per scenario row",
    )
    h_record.add_argument(
        "--from-profile",
        default=None,
        metavar="PROFILE_JSON",
        help="--profile output file: record one entry per phase",
    )
    h_record.add_argument(
        "--bench",
        default=None,
        help="bench name for the records (required with explicit "
        "--scenario/--wall; defaults to 'bench'/'profile' for file "
        "sources)",
    )
    h_record.add_argument(
        "--scenario", default=None, help="explicit single-record scenario"
    )
    h_record.add_argument(
        "--wall",
        type=_positive_float,
        default=None,
        help="explicit single-record wall seconds",
    )
    h_record.add_argument(
        "--commit",
        default=None,
        help="commit id (default: REPRO_COMMIT, GITHUB_SHA, or git HEAD)",
    )
    h_record.add_argument(
        "--hardware",
        default=None,
        help="hardware class label (default: '<available workers>w')",
    )
    h_report = history_actions.add_parser(
        "report", help="per-series trend table from a history file"
    )
    h_report.add_argument("--file", required=True)
    h_report.add_argument("--bench", default=None, help="filter by bench")
    h_report.add_argument(
        "--window",
        type=_positive_int,
        default=None,
        help="trend window (median of this many previous runs)",
    )
    h_report.add_argument(
        "--json", action="store_true", help="print the rows as JSON"
    )
    h_compare = history_actions.add_parser(
        "compare", help="wall-clock ratios between two commits"
    )
    h_compare.add_argument("--file", required=True)
    h_compare.add_argument("--base", required=True, help="baseline commit id")
    h_compare.add_argument("--to", required=True, help="candidate commit id")
    h_compare.add_argument(
        "--json", action="store_true", help="print the rows as JSON"
    )
    h_check = history_actions.add_parser(
        "check",
        help="trend gate: exit 1 when the latest run of any series is "
        "slower than tolerance x the rolling median",
    )
    h_check.add_argument("--file", required=True)
    h_check.add_argument("--bench", default=None, help="filter by bench")
    h_check.add_argument(
        "--window", type=_positive_int, default=None,
        help="median window (default 5)",
    )
    h_check.add_argument(
        "--tolerance",
        type=_positive_float,
        default=None,
        help="allowed latest/median ratio (default 1.5)",
    )
    h_check.add_argument(
        "--min-wall",
        type=_positive_float,
        default=None,
        help="ignore series whose median wall is below this (default 0.02)",
    )
    h_gc = history_actions.add_parser(
        "gc", help="drop the oldest records beyond --keep per series"
    )
    h_gc.add_argument("--file", required=True)
    h_gc.add_argument(
        "--keep",
        type=_positive_int,
        default=50,
        help="records retained per series (newest kept)",
    )

    lint = commands.add_parser(
        "lint",
        help="static analysis: determinism, pickle-safety, exception"
        " taxonomy, and lock discipline",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed repro"
        " package)",
    )
    lint.add_argument(
        "--baseline",
        default="lint-baseline.json",
        help="baseline file of grandfathered findings (missing file ="
        " empty baseline)",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    lint.add_argument(
        "--json-out", default=None, help="write the findings report as JSON"
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )

    return parser


def _print_schema(schema, as_json: bool) -> None:
    if as_json:
        print(repro_io.dumps(schema, indent=2))
        return
    print(f"algorithm : {schema.algorithm}")
    print(f"reducers  : {schema.num_reducers}")
    print(format_table([summarize(schema).as_row()]))
    for index, reducer in enumerate(schema.reducers):
        print(f"  reducer {index}: {reducer}")


def _spec_from_args(args: argparse.Namespace, command: str):
    """Build a :class:`JobSpec` from ``plan``/``submit``-style size flags."""
    from repro.planner import JobSpec

    if args.x_sizes is not None or args.y_sizes is not None:
        if args.sizes is not None or args.r is not None:
            raise InvalidInstanceError(
                "--x-sizes/--y-sizes (X2Y) cannot be combined with "
                "--sizes or --r"
            )
        if args.x_sizes is None or args.y_sizes is None:
            raise InvalidInstanceError(
                "X2Y planning needs both --x-sizes and --y-sizes"
            )
        return JobSpec.x2y(
            args.x_sizes,
            args.y_sizes,
            args.q,
            objective=args.objective,
            method=args.method,
        )
    if args.sizes is not None:
        if args.r is not None:
            return JobSpec.multiway(
                args.sizes,
                args.q,
                args.r,
                objective=args.objective,
                method=args.method,
            )
        return JobSpec.a2a(
            args.sizes, args.q, objective=args.objective, method=args.method
        )
    raise InvalidInstanceError(
        f"{command} needs --sizes (A2A/multiway) or --x-sizes/--y-sizes (X2Y)"
    )


def _run_plan(args: argparse.Namespace) -> int:
    """Handle ``repro plan``: plan a spec, print the table, serialize."""
    from repro.planner import Environment
    from repro.planner import plan as plan_spec

    spec = _spec_from_args(args, "plan")
    planned = plan_spec(spec, Environment.detect())
    print(planned.describe(explain=args.explain))
    if args.json_out:
        repro_io.atomic_write_text(args.json_out, planned.to_json() + "\n")
        print(f"plan written to {args.json_out}")
    return 0


def _tracer_for(path: str | None):
    """A live tracer when a ``--trace`` path was given, else ``None``."""
    if not path:
        return None
    from repro.obs.trace import Tracer

    return Tracer()


def _write_trace(tracer, path: str | None) -> None:
    """Export a tracer's spans to *path*; summary goes to stderr so the
    trace line never corrupts ``--json`` stdout output."""
    if tracer is None or not path:
        return
    from repro.obs.trace import write_chrome_trace

    count = write_chrome_trace(path, tracer.spans())
    print(f"trace: {count} events written to {path}", file=sys.stderr)


def _profiler_for(path: str | None):
    """A live PhaseProfiler when ``--profile PATH`` was given, else None."""
    if not path:
        return None
    from repro.obs.profiler import PhaseProfiler

    return PhaseProfiler()


def _write_profile(profiler, path: str | None) -> None:
    """Export a profiler to *path*; summary goes to stderr so the profile
    line never corrupts ``--json`` stdout output."""
    if profiler is None or not path:
        return
    payload = profiler.write(path)
    phases = payload.get("phases", {})
    functions = sum(
        len(entry.get("functions", {})) for entry in phases.values()
    )
    print(
        f"profile: {len(phases)} phases, {functions} functions, "
        f"peak_rss={payload.get('peak_rss_bytes', 0)} written to {path}",
        file=sys.stderr,
    )


def _run_app(args: argparse.Namespace) -> int:
    """Handle ``repro run``: generate a workload, execute it, print metrics."""
    from repro.engine.config import ExecutionConfig

    plan_mode = args.plan == "auto"
    method = "planned" if plan_mode else args.method
    tracer = _tracer_for(args.trace)
    profiler = _profiler_for(args.profile)
    retry = None
    if args.max_attempts is not None:
        from repro.faults import RetryPolicy

        retry = RetryPolicy(max_attempts=args.max_attempts)
    fault_plane = (
        args.inject_faults is not None
        or retry is not None
        or args.task_timeout is not None
        or args.deadline is not None
        or args.fallback
    )
    engine_knobs_given = fault_plane or any(
        value is not None
        for value in (
            args.backend,
            args.num_workers,
            args.memory_budget,
            args.spill_dir,
        )
    )
    if plan_mode and not engine_knobs_given:
        # No explicit knobs: the applications run on the plan's resolved
        # ExecutionConfig.
        config = None
    else:
        config = ExecutionConfig(
            backend=args.backend or "serial",
            num_workers=args.num_workers,
            memory_budget=args.memory_budget,
            spill_dir=args.spill_dir,
            retry=retry,
            faults=args.inject_faults,
            task_timeout=args.task_timeout,
            deadline=args.deadline,
            fallback=args.fallback,
        )
    if args.app == "similarity":
        from repro.apps.similarity_join import run_similarity_join
        from repro.workloads.documents import document_dataset

        documents = document_dataset(
            args.m, args.q, profile=args.dist, seed=args.seed
        )
        run = run_similarity_join(
            documents,
            args.q,
            args.threshold,
            method=method,
            objective=args.objective,
            config=config,
            tracer=tracer,
            profiler=profiler,
        )
        print(f"app       : similarity join ({args.m} documents, q={args.q})")
        print(f"schema    : {run.schema.algorithm}, {run.schema.num_reducers} reducers")
        if plan_mode and run.plan is not None:
            print(f"plan      : {run.plan.chosen} — {run.plan.rationale}")
        print(f"outputs   : {len(run.pairs)} pairs >= {args.threshold}")
    else:
        from repro.apps.skew_join import schema_skew_join
        from repro.workloads.relations import generate_join_workload

        x, y = generate_join_workload(
            args.tuples, args.tuples, args.keys, args.skew, seed=args.seed
        )
        run = schema_skew_join(
            x,
            y,
            args.q,
            method=method,
            objective=args.objective,
            config=config,
            tracer=tracer,
            profiler=profiler,
        )
        print(
            f"app       : skew join ({args.tuples}x{args.tuples} tuples, "
            f"{args.keys} keys, skew={args.skew}, q={args.q})"
        )
        print(f"heavy keys: {list(run.heavy_keys)}")
        if plan_mode and run.plans:
            chosen = {key: planned.chosen for key, planned in run.plans.items()}
            print(f"plan      : per-heavy-key methods {chosen}")
        print(f"outputs   : {len(run.triples)} triples")
    if plan_mode and run.engine is not None:
        source = (
            "explicit knobs override the planner"
            if engine_knobs_given
            else "planner-resolved"
        )
        print(
            f"execution : {source} backend={run.engine.backend}, "
            f"workers={run.engine.num_workers}"
        )
    print(format_table([run.metrics.as_row()], title="job metrics"))
    print(format_table([run.engine.as_row()], title="engine metrics"))
    if fault_plane and run.engine is not None:
        engine = run.engine
        parts = [
            f"retries={engine.task_retries}",
            f"pool_rebuilds={engine.pool_rebuilds}",
        ]
        if args.inject_faults is not None:
            parts.append(f"spec={args.inject_faults.format()}")
        if engine.fallback_backend is not None:
            parts.append(f"fell back to {engine.fallback_backend}")
        print(f"faults    : {', '.join(parts)}")
    if args.memory_budget is not None:
        metrics = run.metrics
        print(
            f"spill     : {metrics.spilled_bytes} bytes in "
            f"{metrics.spill_runs} runs (budget {args.memory_budget} pairs, "
            f"peak buffered {metrics.peak_buffered_pairs})"
        )
    _write_trace(tracer, args.trace)
    _write_profile(profiler, args.profile)
    return 0


def _result_line(service, job_id: str) -> dict:
    """One NDJSON result line for a terminal job (status + result summary)."""
    status = service.status(job_id)
    line: dict = {"event": "result"}
    line.update(status.to_dict())
    result = service.results.get(job_id)
    if result is not None:
        summary = result.summary()
        summary.pop("id", None)
        line.update(summary)
    return line


def _run_serve(args: argparse.Namespace) -> int:
    """Handle ``repro serve``: the NDJSON job-service loop.

    Requests are newline-delimited JSON objects::

        {"id": "j1", "spec": {"kind": "a2a", "q": 12, "sizes": [3, 5, 2]},
         "priority": 0, "execute": true}

    ``spec`` follows the :meth:`JobSpec.from_dict` wire format.  For each
    job the loop streams ``{"event": "status", ...}`` lines on every
    lifecycle transition (suppressed by ``--quiet``) and exactly one
    ``{"event": "result", ...}`` line when the job reaches a terminal
    state.  Malformed requests produce ``{"event": "error", ...}`` lines
    and do not abort the loop.

    With ``--trace`` every finished span additionally streams as a
    ``{"event": "span", ...}`` line (suppressed by ``--quiet``) and the
    collected trace is written as Chrome trace-event JSON on exit; a
    ``{"metrics": true}`` request line answers with one
    ``{"event": "metrics", ...}`` snapshot of the service's counters,
    gauges, histograms, and plan-cache stats; a ``{"health": true}``
    request line answers with one ``{"event": "health", ...}`` SLO
    snapshot (queue-latency p50/p95, slot utilization, rolling failure
    rate, pool rebuilds, sampler state, peak RSS).

    SIGINT/SIGTERM shut the loop down gracefully: input reading stops, a
    ``{"event": "shutdown", ...}`` line is emitted, in-flight jobs drain
    (bounded wait), backend pools close, and the ``--obs-log`` /
    ``--trace`` outputs are flushed before the process exits 0 — no
    half-written trace files or silently dropped observations.
    """
    import json
    import signal
    import threading

    from repro.planner import JobSpec
    from repro.service import TERMINAL_STATES, JobService

    # Reentrant: a signal can interrupt the main thread while it holds
    # the lock inside an emit, and the shutdown path emits its own line.
    print_lock = threading.RLock()

    def emit_line(payload: dict) -> None:
        with print_lock:
            print(json.dumps(payload, default=str), flush=True)

    tracer = None
    if args.trace:
        from repro.obs.trace import Tracer

        def on_span(span) -> None:
            if not args.quiet:
                emit_line({"event": "span", **span.to_dict()})

        tracer = Tracer(on_finish=on_span)

    service = JobService(
        slots=args.slots,
        plan_cache_size=args.plan_cache_size,
        result_capacity=args.result_capacity,
        tracer=tracer,
        obs_log=args.obs_log,
    )

    def on_event(event) -> None:
        if not args.quiet:
            emit_line(event.to_dict())
        if event.state in TERMINAL_STATES:
            emit_line(_result_line(service, event.job_id))

    service.events.subscribe(on_event)

    def handle_line(number: int, line: str) -> None:
        line = line.strip()
        if not line:
            return
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            emit_line({"event": "error", "line": number, "error": str(exc)})
            return
        if isinstance(request, dict) and request.get("metrics"):
            emit_line({"event": "metrics", **service.metrics_snapshot()})
            return
        if isinstance(request, dict) and request.get("health"):
            emit_line({"event": "health", **service.health_snapshot()})
            return
        if not isinstance(request, dict) or "spec" not in request:
            emit_line(
                {
                    "event": "error",
                    "line": number,
                    "error": "request must be an object with a 'spec' field",
                }
            )
            return
        try:
            spec = JobSpec.from_dict(request["spec"])
            service.submit_spec(
                spec,
                execute=bool(request.get("execute", True)),
                priority=int(request.get("priority", 0)),
                job_id=request.get("id"),
            )
        # TypeError/ValueError cover mistyped request fields (a string
        # priority, a scalar where the spec wants a list): one bad line
        # must never abort the loop.
        except (ReproError, TypeError, ValueError) as exc:
            emit_line(
                {
                    "event": "error",
                    "line": number,
                    "id": request.get("id"),
                    "error": str(exc),
                }
            )

    class _ShutdownRequested(Exception):
        def __init__(self, signum: int):
            super().__init__(signum)
            self.signum = signum

    def _on_signal(signum: int, _frame: object) -> None:
        raise _ShutdownRequested(signum)

    installed: list[tuple[int, object]] = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            installed.append((signum, signal.signal(signum, _on_signal)))
        except ValueError:
            # Not the main thread (embedded use): the loop still works,
            # it just cannot intercept signals.
            pass
    closed = False
    try:
        if args.input == "-":
            for number, line in enumerate(sys.stdin, start=1):
                handle_line(number, line)
        else:
            try:
                stream = open(args.input)
            except OSError as error:
                print(
                    f"error: cannot read {args.input!r}: {error}",
                    file=sys.stderr,
                )
                return 1
            with stream:
                for number, line in enumerate(stream, start=1):
                    handle_line(number, line)
        service.drain()
    except _ShutdownRequested as request:
        name = signal.Signals(request.signum).name
        emit_line({"event": "shutdown", "signal": name, "state": "draining"})
        drained = service.drain(timeout=10.0)
        # Jobs still running after the bounded drain are abandoned by
        # close(drain=False) — they move to 'cancelled' instead of
        # keeping the process alive indefinitely.
        service.close(drain=False)
        closed = True
        emit_line(
            {
                "event": "shutdown",
                "signal": name,
                "state": "complete",
                "drained": drained,
            }
        )
    finally:
        for signum, previous in installed:
            signal.signal(signum, previous)
        if not closed:
            service.close()
        _write_trace(tracer, args.trace)
    return 0


def _run_submit(args: argparse.Namespace) -> int:
    """Handle ``repro submit``: one job through an in-process service."""
    import json

    from repro.service import JobService

    spec = _spec_from_args(args, "submit")
    execute = not args.plan_only and spec.kind != "multiway"
    tracer = _tracer_for(args.trace)
    profiler = _profiler_for(args.profile)
    service = JobService(slots=1, tracer=tracer, profiler=profiler)
    closed = False
    try:
        handle = service.submit_spec(
            spec, execute=execute, priority=args.priority
        )
        status = handle.wait(timeout=600.0)
        if status.state not in ("done", "failed", "cancelled", "rejected"):
            # Timed out mid-run: cancel cooperatively and close without
            # draining so the process exits instead of blocking on the
            # stuck job.
            handle.cancel()
            print(
                f"error: job {handle.job_id} still {status.state!r} after "
                "600s; cancelled",
                file=sys.stderr,
            )
            service.close(drain=False, timeout=5.0)
            closed = True
            return 1
        if status.state != "done":
            # Structured error line: machine-readable on stderr, one
            # line, with the job's terminal state and the actual error —
            # scripts wrapping `repro submit` branch on exit status and
            # parse this instead of scraping the status payload.
            error_line = {
                "event": "error",
                "id": handle.job_id,
                "state": status.state,
                "error": status.error
                or status.detail
                or f"job finished in state {status.state!r}",
            }
            print(json.dumps(error_line, default=str), file=sys.stderr)
            return 1
        result = handle.result()
        if args.json:
            print(json.dumps(_result_line(service, handle.job_id), default=str))
        else:
            score = result.plan.chosen_score
            print(f"job       : {handle.job_id} ({spec.kind}, q={spec.q})")
            print(f"state     : {status.state}")
            print(f"chosen    : {result.plan.chosen} ({result.plan.mode})")
            print(f"rationale : {result.plan.rationale}")
            print(
                f"plan      : {score.num_reducers} reducers, "
                f"communication {score.communication_cost}"
            )
            if result.executed:
                print(
                    f"outputs   : {len(result.outputs)} records on "
                    f"backend={result.engine.backend}"
                )
            else:
                print("outputs   : plan-only job (no execution)")
    finally:
        if not closed:
            service.close()
        _write_trace(tracer, args.trace)
        _write_profile(profiler, args.profile)
    return 0


def _run_metrics(args: argparse.Namespace) -> int:
    """Handle ``repro metrics``: summarize an observation log as a table."""
    import json

    from repro.obs.store import load_observations, summarize_observations

    try:
        records = load_observations(args.log)
    except OSError as error:
        print(f"error: cannot read {args.log!r}: {error}", file=sys.stderr)
        return 1
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    rows = summarize_observations(records)
    if args.json:
        print(
            json.dumps(
                {"observations": len(records), "rows": rows}, default=str
            )
        )
        return 0
    if not rows:
        print(f"no observations in {args.log}")
        return 0
    print(
        format_table(
            rows, title=f"job observations ({len(records)} records)"
        )
    )
    return 0


def _history_records_from_args(args: argparse.Namespace) -> list:
    """Build the HistoryRecords a ``history record`` invocation describes."""
    import json

    from repro.obs.history import (
        HistoryRecord,
        current_commit,
        hardware_class,
    )

    commit = args.commit or current_commit()
    records: list[HistoryRecord] = []
    if args.from_bench:
        with open(args.from_bench) as handle:
            payload = json.load(handle)
        hardware = args.hardware or hardware_class(
            int(payload.get("workers", 0)) or None
        )
        bench = args.bench or "bench"
        for row in payload.get("rows", []):
            if "wall_s" not in row or "scenario" not in row:
                continue
            wall = float(row["wall_s"])
            if wall <= 0:
                continue
            records.append(
                HistoryRecord(
                    bench=bench,
                    scenario=f"{row['scenario']}/{row.get('backend', '?')}",
                    hardware_class=hardware,
                    commit=commit,
                    wall_seconds=wall,
                )
            )
    if args.from_profile:
        with open(args.from_profile) as handle:
            payload = json.load(handle)
        hardware = args.hardware or hardware_class()
        bench = args.bench or "profile"
        for name, phase in sorted(payload.get("phases", {}).items()):
            wall = float(phase.get("wall_seconds", 0.0))
            if wall <= 0:
                continue
            records.append(
                HistoryRecord(
                    bench=bench,
                    scenario=name,
                    hardware_class=hardware,
                    commit=commit,
                    wall_seconds=wall,
                    cpu_seconds=float(phase.get("cpu_seconds", 0.0)),
                    peak_rss_bytes=int(phase.get("peak_rss_bytes", 0)),
                )
            )
    if args.scenario is not None or args.wall is not None:
        if args.scenario is None or args.wall is None or args.bench is None:
            raise InvalidInstanceError(
                "an explicit record needs --bench, --scenario, and --wall "
                "together"
            )
        records.append(
            HistoryRecord(
                bench=args.bench,
                scenario=args.scenario,
                hardware_class=args.hardware or hardware_class(),
                commit=commit,
                wall_seconds=args.wall,
            )
        )
    if not records:
        raise InvalidInstanceError(
            "nothing to record: give --from-bench, --from-profile, or "
            "--bench/--scenario/--wall"
        )
    return records


def _run_history(args: argparse.Namespace) -> int:
    """Handle ``repro history``: the per-commit perf-history store."""
    import json

    from repro.obs.history import ProfileHistory

    history = ProfileHistory(args.file)
    if args.history_command == "record":
        try:
            records = _history_records_from_args(args)
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        except (ValueError, json.JSONDecodeError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        count = history.extend(records)
        print(
            f"recorded {count} record(s) to {args.file} "
            f"(commit {records[0].commit}, {records[0].hardware_class})"
        )
        return 0
    try:
        if args.history_command == "report":
            kwargs = {"bench": args.bench}
            if args.window is not None:
                kwargs["window"] = args.window
            rows = history.report(**kwargs)
            if args.json:
                print(json.dumps(rows, default=str))
            elif rows:
                print(format_table(rows, title=f"perf history ({args.file})"))
            else:
                print(f"no history in {args.file}")
            return 0
        if args.history_command == "compare":
            rows = history.compare(args.base, args.to)
            if args.json:
                print(json.dumps(rows, default=str))
            elif rows:
                print(
                    format_table(
                        rows, title=f"{args.base} vs {args.to} ({args.file})"
                    )
                )
            else:
                print(
                    f"no series has records for both {args.base!r} and "
                    f"{args.to!r}"
                )
            return 0
        if args.history_command == "check":
            kwargs = {"bench": args.bench}
            if args.window is not None:
                kwargs["window"] = args.window
            if args.tolerance is not None:
                kwargs["tolerance"] = args.tolerance
            if args.min_wall is not None:
                kwargs["min_wall"] = args.min_wall
            failures, notes = history.check(**kwargs)
            for note in notes:
                print(f"history: {note}", file=sys.stderr)
            for failure in failures:
                print(f"PERF TREND REGRESSION: {failure}", file=sys.stderr)
            if failures:
                return 1
            print(f"history check: ok ({args.file})")
            return 0
        # gc
        kept, dropped = history.gc(keep=args.keep)
        print(
            f"history gc: kept {kept}, dropped {dropped} "
            f"(keep={args.keep} per series)"
        )
        return 0
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _run_lint(args: argparse.Namespace) -> int:
    """Handle ``repro lint``: run the static-analysis rules, gate on new
    findings (anything not absorbed by the baseline)."""
    import json
    from pathlib import Path

    import repro
    from repro.analysis.lint import (
        all_rules,
        apply_baseline,
        lint_paths,
        load_baseline,
        save_baseline,
    )

    rules = all_rules()
    if args.list_rules:
        rows = [
            {
                "rule": rule.rule_id,
                "severity": rule.severity,
                "scopes": ", ".join(rule.scopes) or "(all)",
                "invariant": rule.description,
            }
            for rule in rules
        ]
        print(format_table(rows, title="repro lint rules"))
        return 0

    if args.paths:
        paths = [Path(p) for p in args.paths]
        root = None  # inferred per file from the package hierarchy
    else:
        package_dir = Path(repro.__file__).resolve().parent
        paths = [package_dir]
        root = package_dir.parent

    report = lint_paths(paths, rules, root=root)
    findings = report.sorted_findings()

    if args.write_baseline:
        save_baseline(Path(args.baseline), findings)
        print(
            f"wrote {len(findings)} finding(s) to baseline {args.baseline}"
        )
        return 0

    try:
        baseline = load_baseline(Path(args.baseline))
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    new, grandfathered = apply_baseline(findings, baseline)

    if args.json_out:
        payload = {
            "files_checked": report.files_checked,
            "suppressed": report.suppressed,
            "new": [f.to_dict() for f in new],
            "grandfathered": [f.to_dict() for f in grandfathered],
        }
        repro_io.atomic_write_text(
            args.json_out, json.dumps(payload, indent=2) + "\n"
        )

    for finding in new:
        print(finding.render())
    print(
        f"checked {report.files_checked} file(s):"
        f" {len(new)} new finding(s),"
        f" {len(grandfathered)} grandfathered,"
        f" {report.suppressed} suppressed"
    )
    return 1 if new else 0


def _run_bench(args: argparse.Namespace) -> int:
    """Handle ``repro bench``: quick speedup table, optional smoke check."""
    from repro.engine.backends import available_workers
    from repro.engine.quickbench import (
        check_baseline,
        check_codec,
        check_faults,
        check_regression,
        check_spill,
        run_codec_bench,
        run_fault_injection,
        run_join_bench,
        run_out_of_core,
        run_planned_join,
        run_scenarios,
    )

    backends = args.backends.split(",") if args.backends else None
    if backends:
        for name in backends:
            if name not in BACKENDS:
                raise UnknownMethodError(
                    f"unknown backend {name!r}; choose from {sorted(BACKENDS)}"
                )
    rows = run_join_bench(
        tuples=args.tuples,
        backends=backends,
        repeat=args.repeat,
        num_workers=args.num_workers,
    )
    if args.plan == "auto":
        rows += run_planned_join(
            tuples=args.tuples,
            repeat=args.repeat,
            objective=args.objective,
        )
    tracer = _tracer_for(args.trace)
    profiler = _profiler_for(args.profile)
    rows += run_scenarios(
        backends=backends,
        scale=args.scale,
        repeat=args.repeat,
        num_workers=args.num_workers,
        tracer=tracer,
        profiler=profiler,
    )
    print(
        format_table(
            rows,
            title=(
                f"engine quick bench ({available_workers()} workers, "
                f"scale={args.scale}, repeat={args.repeat})"
            ),
        )
    )
    spill_rows: list[dict[str, object]] = []
    if args.memory_budget is not None:
        spill_rows = run_out_of_core(
            backends=backends,
            scale=args.scale,
            memory_budget=args.memory_budget,
            repeat=args.repeat,
            num_workers=args.num_workers,
        )
        print(
            format_table(
                spill_rows,
                title=(
                    "out-of-core: unbounded vs memory_budget="
                    f"{args.memory_budget} (outputs asserted identical)"
                ),
            )
        )
    fault_rows: list[dict[str, object]] = []
    if args.inject_faults is not None:
        fault_rows = run_fault_injection(
            backends=backends,
            spec=args.inject_faults,
            scale=args.scale,
            repeat=args.repeat,
            num_workers=args.num_workers,
        )
        print(
            format_table(
                fault_rows,
                title=(
                    f"fault injection: {args.inject_faults.format()} vs "
                    "fault-free (outputs asserted identical)"
                ),
            )
        )
    codec_rows: list[dict[str, object]] = []
    if args.codec:
        codec_rows = run_codec_bench(
            repeat=args.repeat, transport_scale=args.scale
        )
        print(
            format_table(
                codec_rows,
                title=(
                    "block codec: encode/decode throughput, block-size "
                    "sweep, shm vs pipe transport (round-trips verified)"
                ),
            )
        )
    service_rows: list[dict[str, object]] = []
    service_failures: list[str] = []
    if args.service_jobs is not None:
        from repro.service.smoke import run_service_smoke

        service_rows, service_failures = run_service_smoke(
            args.service_jobs, slots=args.service_slots
        )
        print(
            format_table(
                service_rows,
                title=(
                    f"job service: {args.service_jobs} jobs, "
                    f"{args.service_slots} slots vs sequential one-shot "
                    "(outputs asserted identical)"
                ),
            )
        )
    _write_trace(tracer, args.trace)
    _write_profile(profiler, args.profile)
    params = {
        "tuples": args.tuples,
        "scale": args.scale,
        "repeat": args.repeat,
        "faults": (
            args.inject_faults.format()
            if args.inject_faults is not None
            else None
        ),
    }
    if args.json_out:
        import json

        repro_io.atomic_write_text(
            args.json_out,
            json.dumps(
                {
                    "workers": available_workers(),
                    "params": params,
                    "rows": rows,
                    "out_of_core_rows": spill_rows,
                    "service_rows": service_rows,
                    "fault_rows": fault_rows,
                    "codec_rows": codec_rows,
                },
                indent=2,
                default=str,
            )
            + "\n",
        )
    baseline_notes: list[str] = []
    baseline_failures: list[str] = []
    if args.baseline:
        import json

        try:
            with open(args.baseline) as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(
                f"error: cannot load baseline {args.baseline!r}: {error}",
                file=sys.stderr,
            )
            return 1
        baseline_failures, baseline_notes = check_baseline(
            rows + fault_rows, baseline, params=params
        )
        for note in baseline_notes:
            print(f"baseline: {note}", file=sys.stderr)
    if args.check:
        failures = check_regression(rows)
        if args.memory_budget is not None:
            failures += check_spill(spill_rows)
        if args.inject_faults is not None:
            failures += check_faults(fault_rows)
        if args.codec:
            failures += check_codec(codec_rows)
        failures += service_failures
        failures += baseline_failures
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        notes = ["threads within 1.3x of serial everywhere"]
        if args.memory_budget is not None:
            notes.append("budgeted runs spilled and matched in-memory outputs")
        if args.inject_faults is not None:
            notes.append(
                "injected-fault runs recovered with bounded retries and "
                "identical outputs"
            )
        if args.codec:
            notes.append(
                "codec round-trips verified with typed codecs selected"
            )
        if args.service_jobs is not None:
            notes.append("service outputs matched one-shot runs")
        if args.baseline and not baseline_notes:
            notes.append("within 1.3x of the committed baseline")
        print(f"perf smoke: ok ({'; '.join(notes)})")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    if argv is None:
        argv = sys.argv[1:]
    args = build_parser().parse_args(_absorb_size_values(list(argv)))
    try:
        if args.command == "solve-a2a":
            schema = solve_a2a(A2AInstance(args.sizes, args.q), args.method)
            schema.require_valid()
            _print_schema(schema, args.json)
        elif args.command == "solve-x2y":
            schema = solve_x2y(
                X2YInstance(args.x_sizes, args.y_sizes, args.q), args.method
            )
            schema.require_valid()
            _print_schema(schema, args.json)
        elif args.command == "sweep":
            rows = sweep_a2a_reducers(args.sizes, args.q_values)
            print(format_table(rows, title="A2A reducers vs q"))
        elif args.command == "plan":
            return _run_plan(args)
        elif args.command == "run":
            return _run_app(args)
        elif args.command == "bench":
            return _run_bench(args)
        elif args.command == "serve":
            return _run_serve(args)
        elif args.command == "submit":
            return _run_submit(args)
        elif args.command == "metrics":
            return _run_metrics(args)
        elif args.command == "history":
            return _run_history(args)
        elif args.command == "lint":
            return _run_lint(args)
        elif args.command == "verify":
            try:
                with open(args.file) as handle:
                    loaded = repro_io.loads(handle.read())
            except OSError as error:
                print(f"error: cannot read {args.file!r}: {error}", file=sys.stderr)
                return 1
            report = loaded.verify()  # type: ignore[union-attr]
            print(report.summary())
            if not report.valid:
                return 1
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
