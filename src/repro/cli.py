"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``solve-a2a --sizes 3,5,2,7 --q 12 [--method auto]`` — build, verify and
  print a mapping schema (add ``--json`` for the wire format).
* ``solve-x2y --x-sizes 4,5 --y-sizes 3,3 --q 10`` — the X2Y counterpart.
* ``sweep --sizes ... --q-values 10,20,40`` — the reducer-count tradeoff
  table for an A2A input set.
* ``verify --file schema.json`` — re-verify a persisted schema.

Exit status is 0 on success, 1 on infeasible/invalid input, mirroring
what a scheduler wrapping this tool would need.
"""

from __future__ import annotations

import argparse
import sys

from repro import io as repro_io
from repro.analysis.tradeoffs import sweep_a2a_reducers
from repro.core.costs import summarize
from repro.core.instance import A2AInstance, X2YInstance
from repro.core.selector import A2A_METHODS, X2Y_METHODS, solve_a2a, solve_x2y
from repro.exceptions import ReproError
from repro.utils.tables import format_table


def _parse_sizes(text: str) -> list[int]:
    """Parse a comma-separated size list, e.g. ``3,5,2``."""
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad size list {text!r}") from exc


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mapping schemas for different-sized MapReduce inputs "
        "(Afrati et al., EDBT 2015)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    a2a = commands.add_parser("solve-a2a", help="solve an all-to-all instance")
    a2a.add_argument("--sizes", type=_parse_sizes, required=True)
    a2a.add_argument("--q", type=int, required=True)
    a2a.add_argument(
        "--method", default="auto", choices=["auto", *sorted(A2A_METHODS)]
    )
    a2a.add_argument("--json", action="store_true", help="print the JSON schema")

    x2y = commands.add_parser("solve-x2y", help="solve an X-to-Y instance")
    x2y.add_argument("--x-sizes", type=_parse_sizes, required=True)
    x2y.add_argument("--y-sizes", type=_parse_sizes, required=True)
    x2y.add_argument("--q", type=int, required=True)
    x2y.add_argument(
        "--method", default="auto", choices=["auto", *sorted(X2Y_METHODS)]
    )
    x2y.add_argument("--json", action="store_true", help="print the JSON schema")

    sweep = commands.add_parser("sweep", help="A2A reducer-count sweep over q")
    sweep.add_argument("--sizes", type=_parse_sizes, required=True)
    sweep.add_argument("--q-values", type=_parse_sizes, required=True)

    verify = commands.add_parser("verify", help="verify a persisted schema")
    verify.add_argument("--file", required=True)

    return parser


def _print_schema(schema, as_json: bool) -> None:
    if as_json:
        print(repro_io.dumps(schema, indent=2))
        return
    print(f"algorithm : {schema.algorithm}")
    print(f"reducers  : {schema.num_reducers}")
    print(format_table([summarize(schema).as_row()]))
    for index, reducer in enumerate(schema.reducers):
        print(f"  reducer {index}: {reducer}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "solve-a2a":
            schema = solve_a2a(A2AInstance(args.sizes, args.q), args.method)
            schema.require_valid()
            _print_schema(schema, args.json)
        elif args.command == "solve-x2y":
            schema = solve_x2y(
                X2YInstance(args.x_sizes, args.y_sizes, args.q), args.method
            )
            schema.require_valid()
            _print_schema(schema, args.json)
        elif args.command == "sweep":
            rows = sweep_a2a_reducers(args.sizes, args.q_values)
            print(format_table(rows, title="A2A reducers vs q"))
        elif args.command == "verify":
            with open(args.file) as handle:
                loaded = repro_io.loads(handle.read())
            report = loaded.verify()  # type: ignore[union-attr]
            print(report.summary())
            if not report.valid:
                return 1
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
