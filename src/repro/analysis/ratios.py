"""Approximation-ratio studies: heuristics vs. lower bounds and exact optima.

The NP-completeness of both problems (the paper's hardness results) makes
the *ratio to a lower bound* the honest quality measure at scale, with the
exact branch-and-bound providing true optima on small instances (E9).
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, median

from repro.core.bounds import a2a_reducer_lower_bound, x2y_reducer_lower_bound
from repro.core.instance import A2AInstance, X2YInstance
from repro.core.selector import A2A_METHODS, X2Y_METHODS
from repro.exceptions import ReproError
from repro.utils.rng import SeedLike, spawn_rngs
from repro.workloads.distributions import sample_sizes


@dataclass(frozen=True)
class RatioSummary:
    """Distribution summary of achieved / lower-bound reducer counts."""

    method: str
    profile: str
    trials: int
    feasible_trials: int
    mean_ratio: float
    median_ratio: float
    max_ratio: float

    def as_row(self) -> dict[str, object]:
        """Dict form for table rendering."""
        return {
            "method": self.method,
            "profile": self.profile,
            "trials": self.trials,
            "solved": self.feasible_trials,
            "mean_ratio": round(self.mean_ratio, 3),
            "median_ratio": round(self.median_ratio, 3),
            "max_ratio": round(self.max_ratio, 3),
        }


def a2a_ratio_study(
    method: str,
    profile: str,
    *,
    trials: int = 50,
    m: int = 60,
    q: int = 400,
    seed: SeedLike = 0,
) -> RatioSummary:
    """Ratio of a method's reducer count to the instance lower bound.

    Instances the method cannot solve (e.g. bin_pairing facing big inputs)
    are skipped and reported through ``feasible_trials``.
    """
    rngs = spawn_rngs(seed if isinstance(seed, int) else None, trials)
    ratios = []
    for rng in rngs:
        sizes = sample_sizes(profile, m, q, seed=rng)
        # Clamp so every pair fits: the study measures quality, not
        # feasibility edge cases (those have dedicated tests).
        half = q // 2
        sizes = [min(s, half) for s in sizes]
        instance = A2AInstance(sizes, q)
        try:
            schema = A2A_METHODS[method](instance)
        except ReproError:
            continue
        bound = a2a_reducer_lower_bound(instance)
        ratios.append(schema.num_reducers / max(1, bound))
    if not ratios:
        return RatioSummary(method, profile, trials, 0, 0.0, 0.0, 0.0)
    return RatioSummary(
        method=method,
        profile=profile,
        trials=trials,
        feasible_trials=len(ratios),
        mean_ratio=mean(ratios),
        median_ratio=median(ratios),
        max_ratio=max(ratios),
    )


def x2y_ratio_study(
    method: str,
    profile: str,
    *,
    trials: int = 50,
    m: int = 40,
    n: int = 40,
    q: int = 400,
    seed: SeedLike = 0,
) -> RatioSummary:
    """X2Y version of :func:`a2a_ratio_study`."""
    rngs = spawn_rngs(seed if isinstance(seed, int) else None, trials)
    ratios = []
    half = q // 2
    for rng in rngs:
        x_sizes = [min(s, half) for s in sample_sizes(profile, m, q, seed=rng)]
        y_sizes = [min(s, half) for s in sample_sizes(profile, n, q, seed=rng)]
        instance = X2YInstance(x_sizes, y_sizes, q)
        try:
            schema = X2Y_METHODS[method](instance)
        except ReproError:
            continue
        bound = x2y_reducer_lower_bound(instance)
        ratios.append(schema.num_reducers / max(1, bound))
    if not ratios:
        return RatioSummary(method, profile, trials, 0, 0.0, 0.0, 0.0)
    return RatioSummary(
        method=method,
        profile=profile,
        trials=trials,
        feasible_trials=len(ratios),
        mean_ratio=mean(ratios),
        median_ratio=median(ratios),
        max_ratio=max(ratios),
    )
