"""``repro lint``: static enforcement of the stack's runtime invariants.

An AST-rule engine plus the built-in rule set (determinism, pickle-safety,
exception-taxonomy, lock-discipline).  See
:mod:`repro.analysis.lint.engine` for the framework and the suppression
syntax, :mod:`repro.analysis.lint.baseline` for grandfathered findings.
"""

from repro.analysis.lint.baseline import (
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.lint.engine import (
    LintRule,
    ModuleInfo,
    Suppression,
    lint_paths,
    load_module,
    run_rules,
)
from repro.analysis.lint.findings import SEVERITIES, Finding, LintReport
from repro.analysis.lint.rules import all_rules

__all__ = [
    "Finding",
    "LintReport",
    "LintRule",
    "ModuleInfo",
    "SEVERITIES",
    "Suppression",
    "all_rules",
    "apply_baseline",
    "lint_paths",
    "load_baseline",
    "load_module",
    "run_rules",
    "save_baseline",
]
