"""Finding records produced by the repro lint engine.

A :class:`Finding` pins one rule violation to a file and line, carries the
rule id and severity, and — because every rule knows the idiom it wants
instead — a concrete fix hint.  Findings serialize to plain dicts so the
CLI can emit them as JSON and the baseline file can round-trip them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Ordered severities, least to most severe.
SEVERITIES: tuple[str, ...] = ("info", "warning", "error")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    message: str
    severity: str = "error"
    hint: str = ""
    col: int = 0

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    @property
    def baseline_key(self) -> str:
        """Stable identity used to match grandfathered findings.

        Deliberately excludes the line number so a baseline entry survives
        unrelated edits that shift code up or down in the file.
        """
        return f"{self.rule}::{self.path}::{self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Finding":
        return cls(
            rule=str(payload["rule"]),
            path=str(payload["path"]),
            line=int(payload.get("line", 0)),
            message=str(payload["message"]),
            severity=str(payload.get("severity", "error")),
            hint=str(payload.get("hint", "")),
            col=int(payload.get("col", 0)),
        )

    def render(self) -> str:
        """Human-readable one-liner, ``path:line: [rule] message``."""
        text = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text


@dataclass
class LintReport:
    """The outcome of one lint run over a set of modules."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    def sorted_findings(self) -> list[Finding]:
        return sorted(
            self.findings, key=lambda f: (f.path, f.line, f.col, f.rule, f.message)
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "findings": [f.to_dict() for f in self.sorted_findings()],
        }
