"""The repro lint engine: module loading, suppressions, and rule dispatch.

The engine parses every Python file under the requested roots into a
:class:`ModuleInfo` (path, dotted module name, source lines, AST, and the
set of inline suppressions), then runs each registered :class:`LintRule`
whose scope matches the module.  Rules are plain AST visitors that return
:class:`~repro.analysis.lint.findings.Finding` records; the engine filters
out findings whose line carries a matching suppression comment.

Suppression syntax, on the offending line or the line directly above::

    value = time.time()  # repro-lint: disable=determinism -- human-readable timestamp

Multiple rules separate with commas; ``disable=all`` silences every rule.
The ``-- reason`` tail is required by convention (the self-lint test
enforces it for this repository) so every suppression documents *why* the
invariant does not apply.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.lint.findings import Finding, LintReport

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,\- ]+?)"
    r"(?:\s*--\s*(?P<reason>.*))?$"
)


@dataclass(frozen=True)
class Suppression:
    """One inline ``# repro-lint: disable=...`` comment."""

    line: int
    rules: frozenset[str]
    reason: str

    def matches(self, rule_id: str) -> bool:
        return "all" in self.rules or rule_id in self.rules


@dataclass
class ModuleInfo:
    """Everything a rule needs to know about one parsed module."""

    path: Path
    relpath: str
    module: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)

    def in_package(self, prefixes: Sequence[str]) -> bool:
        """True when this module's dotted name falls under any prefix.

        Scopes narrow where in the *library* a rule applies; files outside
        every scoped top-level package (lint fixtures, ad-hoc scripts
        passed on the command line) always get the full rule set.
        """
        if not prefixes:
            return True
        top_packages = {prefix.split(".", 1)[0] for prefix in prefixes}
        own_top = self.module.split(".", 1)[0]
        if own_top not in top_packages:
            return True
        for prefix in prefixes:
            if self.module == prefix or self.module.startswith(prefix + "."):
                return True
        return False

    def suppressed(self, rule_id: str, line: int) -> bool:
        """True when ``line`` (or the line above it) disables ``rule_id``."""
        for sup in self.suppressions:
            if sup.line in (line, line - 1) and sup.matches(rule_id):
                return True
        return False


class LintRule:
    """Base class for lint rules.

    Subclasses set :attr:`rule_id`, :attr:`severity`, :attr:`description`,
    and :attr:`scopes` (dotted module prefixes the rule applies to; empty
    means every module), and implement :meth:`check`.
    """

    rule_id: str = ""
    severity: str = "error"
    description: str = ""
    #: Dotted module-name prefixes this rule applies to (empty = all).
    scopes: tuple[str, ...] = ()

    def check(self, info: ModuleInfo) -> list[Finding]:
        raise NotImplementedError

    def finding(
        self,
        info: ModuleInfo,
        node: ast.AST,
        message: str,
        hint: str = "",
    ) -> Finding:
        """Build a Finding anchored at ``node`` in ``info``."""
        return Finding(
            rule=self.rule_id,
            path=info.relpath,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            severity=self.severity,
            message=message,
            hint=hint,
        )


def parse_suppressions(source: str) -> list[Suppression]:
    """Extract ``# repro-lint: disable=...`` comments via the tokenizer.

    Tokenizing (rather than regexing raw lines) keeps directives inside
    string literals from being misread as live suppressions.
    """
    suppressions: list[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(keepends=True)).__next__)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            rules = frozenset(
                part.strip() for part in match.group("rules").split(",") if part.strip()
            )
            reason = (match.group("reason") or "").strip()
            suppressions.append(
                Suppression(line=tok.start[0], rules=rules, reason=reason)
            )
    except tokenize.TokenError:
        pass
    return suppressions


def _module_name(path: Path, root: Path) -> str:
    """Dotted module name of ``path`` relative to the source root.

    ``root`` is the directory that *contains* the top-level package, e.g.
    ``src`` for ``src/repro/engine/engine.py`` -> ``repro.engine.engine``.
    Files outside any package hierarchy get their stem as the name.
    """
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        return path.stem
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else path.stem


def find_source_root(path: Path) -> Path:
    """Walk up from ``path`` past every directory that has an ``__init__.py``."""
    current = path.resolve()
    if current.is_file():
        current = current.parent
    while (current / "__init__.py").exists() and current.parent != current:
        current = current.parent
    return current


def load_module(path: Path, root: Path | None = None) -> ModuleInfo:
    """Parse one Python file into a :class:`ModuleInfo`.

    Raises ``SyntaxError`` if the file does not parse; callers decide
    whether that is fatal (the CLI reports it as a finding-like error).
    """
    resolved = Path(path).resolve()
    if root is None:
        root = find_source_root(resolved)
    source = resolved.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(resolved))
    try:
        relpath = str(resolved.relative_to(Path.cwd()))
    except ValueError:
        relpath = str(resolved)
    return ModuleInfo(
        path=resolved,
        relpath=relpath,
        module=_module_name(resolved, root),
        source=source,
        tree=tree,
        lines=source.splitlines(),
        suppressions=parse_suppressions(source),
    )


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield .py files under each path, directories walked recursively."""
    seen: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield resolved


def run_rules(info: ModuleInfo, rules: Sequence[LintRule]) -> tuple[list[Finding], int]:
    """Run every in-scope rule over one module.

    Returns ``(findings, suppressed_count)`` where findings excludes
    anything silenced by an inline suppression.
    """
    kept: list[Finding] = []
    suppressed = 0
    for rule in rules:
        if not info.in_package(rule.scopes):
            continue
        for finding in rule.check(info):
            if info.suppressed(finding.rule, finding.line):
                suppressed += 1
            else:
                kept.append(finding)
    return kept, suppressed


def lint_paths(
    paths: Iterable[Path],
    rules: Sequence[LintRule],
    *,
    root: Path | None = None,
) -> LintReport:
    """Lint every Python file under ``paths`` with ``rules``.

    Unparseable files surface as a ``parse-error`` finding rather than
    aborting the run, so one bad fixture cannot hide findings elsewhere.
    """
    report = LintReport()
    for path in iter_python_files(paths):
        try:
            info = load_module(path, root=root)
        except SyntaxError as exc:
            report.findings.append(
                Finding(
                    rule="parse-error",
                    path=str(path),
                    line=int(exc.lineno or 0),
                    message=f"file does not parse: {exc.msg}",
                    severity="error",
                )
            )
            report.files_checked += 1
            continue
        findings, suppressed = run_rules(info, rules)
        report.findings.extend(findings)
        report.suppressed += suppressed
        report.files_checked += 1
    return report
