"""Rule ``lock-discipline``: no blocking calls while holding a lock.

The scheduler and service hold their locks only for state flips: waiting
on a future, joining a thread, sleeping, or doing file I/O inside a
``with <lock>:`` block turns a mutex into a convoy (every submitter and
status query stalls behind the blocked holder) and is one worker-death
away from a deadlock.  The codebase convention — visible in
``JobScheduler.shutdown`` and ``Backend._resilient_call`` — is to snapshot
state under the lock, release it, then block.

``Condition.wait``/``wait_for`` are exempt: they release the lock while
blocking, which is the whole point of a condition variable.  The check is
lexical (it looks inside the ``with`` body, skipping nested function
definitions), so stashing a blocking call behind a helper method defeats
it — the rule catches the common regression, not an adversary.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.lint.engine import LintRule, ModuleInfo
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.rules.common import ImportResolver, terminal_name

_LOCK_NAME_RE = re.compile(r"lock|mutex", re.IGNORECASE)
_THREADISH_RE = re.compile(r"thread|worker|proc|pool", re.IGNORECASE)


class LockDisciplineRule(LintRule):
    rule_id = "lock-discipline"
    severity = "error"
    description = (
        "no blocking calls (future.result(), thread join, sleep, file I/O)"
        " while holding a scheduler/service lock"
    )
    scopes = ("repro.service", "repro.engine")

    def check(self, info: ModuleInfo) -> list[Finding]:
        resolver = ImportResolver(info.tree)
        findings: list[Finding] = []
        for node in ast.walk(info.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            lock_expr = _held_lock(node)
            if lock_expr is None:
                continue
            for call in _calls_in_body(node):
                message, hint = _blocking_call(call, resolver)
                if message is not None:
                    findings.append(
                        self.finding(
                            info,
                            call,
                            f"{message} while holding `{lock_expr}`",
                            hint or "snapshot state under the lock, release"
                            " it, then block",
                        )
                    )
        return findings


def _held_lock(node: ast.With | ast.AsyncWith) -> str | None:
    """Dotted text of the first context manager that looks like a lock."""
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            # e.g. ``with self._lock.acquire_timeout(...)`` — inspect the
            # receiver, not the call.
            expr = expr.func
        name = terminal_name(expr)
        if name and _LOCK_NAME_RE.search(name):
            return ast.unparse(item.context_expr)
    return None


def _calls_in_body(node: ast.With | ast.AsyncWith) -> list[ast.Call]:
    """Every call lexically inside the with body, skipping nested defs."""
    calls: list[ast.Call] = []
    stack: list[ast.AST] = list(node.body)
    while stack:
        current = stack.pop()
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue  # deferred bodies do not run while the lock is held
        if isinstance(current, ast.Call):
            calls.append(current)
        stack.extend(ast.iter_child_nodes(current))
    return calls


def _blocking_call(
    call: ast.Call, resolver: ImportResolver
) -> tuple[str | None, str | None]:
    """(message, hint) when ``call`` blocks, else (None, None)."""
    func = call.func
    canonical = resolver.resolve(func)
    if canonical == "time.sleep":
        return ("`time.sleep` call", "sleep after releasing the lock")
    if isinstance(func, ast.Name) and func.id == "open":
        return (
            "file I/O (`open`) call",
            "do I/O outside the critical section",
        )
    if isinstance(func, ast.Attribute):
        if func.attr == "result":
            return (
                "`.result()` wait on a future",
                "collect futures under the lock, wait on them after"
                " releasing it",
            )
        if func.attr == "join" and _THREADISH_RE.search(
            terminal_name(func.value)
        ):
            return (
                f"`{terminal_name(func.value)}.join()` call",
                "snapshot the workers under the lock, join them after"
                " releasing it",
            )
    return (None, None)
