"""Rule ``exception-taxonomy``: engine/faults/service raise repro types.

The retry policy (:class:`repro.faults.RetryPolicy`) classifies failures
by exception type: repro types carry retryability semantics, while a raw
builtin ``RuntimeError`` or ``ValueError`` is indistinguishable from a
user bug and silently falls into the "never retry" bucket.  Raise sites
in the execution layers must therefore use :mod:`repro.exceptions` types
(most dual-inherit the matching builtin, so existing ``except ValueError``
callers keep working).

``TypeError``, ``NotImplementedError``, and ``AssertionError`` stay
allowed: they signal caller programming errors and abstract-method
contracts, not runtime failures the taxonomy needs to classify.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.engine import LintRule, ModuleInfo
from repro.analysis.lint.findings import Finding

#: Builtins that must not be raised directly in the scoped layers.
_DISALLOWED_BUILTINS = {
    "ValueError",
    "RuntimeError",
    "KeyError",
    "IndexError",
    "LookupError",
    "TimeoutError",
    "OSError",
    "IOError",
    "ConnectionError",
    "InterruptedError",
    "ArithmeticError",
    "ZeroDivisionError",
    "OverflowError",
    "Exception",
    "BaseException",
}


class ExceptionTaxonomyRule(LintRule):
    rule_id = "exception-taxonomy"
    severity = "error"
    description = (
        "raise sites in engine/, faults/, and service/ must use"
        " repro.exceptions types so retry classification stays sound"
    )
    scopes = ("repro.engine", "repro.faults", "repro.service")

    def check(self, info: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            name = _raised_builtin(node.exc)
            if name is None:
                continue
            findings.append(
                self.finding(
                    info,
                    node,
                    f"raise of builtin `{name}` in an execution layer;"
                    " the retry policy cannot classify it",
                    "raise a repro.exceptions type (dual-inherit the builtin"
                    " for backwards compatibility)",
                )
            )
        return findings


def _raised_builtin(exc: ast.expr) -> str | None:
    """Name of a disallowed builtin being raised, or None."""
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name) and exc.id in _DISALLOWED_BUILTINS:
        return exc.id
    return None
