"""Rule ``determinism``: no hidden entropy in result-affecting paths.

The stack's headline contract is byte-identical output across the serial,
thread, and process backends.  Anything that reads ambient state — the
global ``random`` module, ``uuid1``/``uuid4``, the wall clock, environment
variables, OS entropy — or that iterates a set in hash order can silently
break that contract in a way the cross-backend identity tests only catch
when the divergent path happens to run.  This rule flags those reads at
lint time.

Allowed idioms: seeded ``numpy`` generators via
:func:`repro.utils.rng.make_rng`, monotonic clocks
(``time.perf_counter``/``time.monotonic``) for intervals, and
``sorted(...)`` around any set before iterating it.  Observability and
fault modules are out of scope — wall-clock timestamps for humans live
there on purpose.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.engine import LintRule, ModuleInfo
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.rules.common import ImportResolver

#: Canonical dotted paths whose mere use is nondeterministic.
_BANNED_EXACT: dict[str, tuple[str, str]] = {
    "time.time": (
        "wall-clock read (`time.time`) in a result-affecting path",
        "use time.perf_counter/time.monotonic for intervals; suppress with a"
        " reason if the value is display-only",
    ),
    "time.time_ns": (
        "wall-clock read (`time.time_ns`) in a result-affecting path",
        "use time.perf_counter/time.monotonic for intervals; suppress with a"
        " reason if the value is display-only",
    ),
    "uuid.uuid1": (
        "nondeterministic id (`uuid.uuid1`) in a result-affecting path",
        "derive ids from seeded state or take them as input",
    ),
    "uuid.uuid4": (
        "nondeterministic id (`uuid.uuid4`) in a result-affecting path",
        "derive ids from seeded state or take them as input",
    ),
    "os.environ": (
        "environment read (`os.environ`) can change results between runs",
        "pass configuration explicitly through the API",
    ),
    "os.getenv": (
        "environment read (`os.getenv`) can change results between runs",
        "pass configuration explicitly through the API",
    ),
    "os.urandom": (
        "OS entropy (`os.urandom`) in a result-affecting path",
        "use repro.utils.rng.make_rng(seed) for reproducible randomness",
    ),
}


class DeterminismRule(LintRule):
    rule_id = "determinism"
    severity = "error"
    description = (
        "no unseeded randomness, wall-clock reads, environment reads, or"
        " set-order iteration in result-affecting paths"
    )
    scopes = (
        "repro.core",
        "repro.engine",
        "repro.binpack",
        "repro.planner",
        "repro.covering",
        "repro.mapreduce",
        "repro.apps",
        "repro.workloads",
        "repro.service",
        "repro.dataset",
        "repro.analysis",
    )

    def check(self, info: ModuleInfo) -> list[Finding]:
        resolver = ImportResolver(info.tree)
        findings: list[Finding] = []
        flagged: set[int] = set()

        def flag(node: ast.AST, message: str, hint: str) -> None:
            if id(node) in flagged:
                return
            flagged.add(id(node))
            findings.append(self.finding(info, node, message, hint))

        for node in ast.walk(info.tree):
            if isinstance(node, (ast.Attribute, ast.Name)):
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    continue
                canonical = resolver.resolve(node)
                if canonical is None:
                    continue
                if canonical in _BANNED_EXACT:
                    message, hint = _BANNED_EXACT[canonical]
                    flag(node, message, hint)
                    # keep the inner chain from double-reporting
                    for inner in ast.walk(node):
                        flagged.add(id(inner))
                elif canonical == "random" or canonical.startswith("random."):
                    flag(
                        node,
                        f"use of the global `random` module (`{canonical}`)"
                        " is unseeded across backends",
                        "use repro.utils.rng.make_rng(seed) and thread the"
                        " Generator explicitly",
                    )
                    for inner in ast.walk(node):
                        flagged.add(id(inner))
            elif isinstance(node, (ast.For, ast.comprehension)):
                iterable = node.iter
                if _is_set_valued(iterable):
                    flag(
                        iterable,
                        "iterating a set: element order is arbitrary and can"
                        " differ between runs",
                        "wrap the set in sorted(...) before iterating",
                    )
        return findings


def _is_set_valued(node: ast.AST) -> bool:
    """True for expressions that are literally a set at this node.

    Catches ``set(...)``/``frozenset(...)`` calls, set displays and
    comprehensions, and unions/intersections/differences of those.  A
    ``sorted(...)`` wrapper makes the *call to sorted* the iterable, so
    wrapped sets never reach here.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_valued(node.left) or _is_set_valued(node.right)
    return False
