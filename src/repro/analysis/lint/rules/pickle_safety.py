"""Rule ``pickle-safety``: task callables must survive the process boundary.

Everything submitted through ``Backend.run_tasks`` /
``run_tasks_resilient`` may be pickled to a worker process.  Lambdas and
functions defined inside other functions are not importable by name, so
they fail at dispatch time on the process backend only — exactly the kind
of backend-dependent behaviour the determinism contract forbids.  Worse, a
nested task function can close over a lock, pool, or tracer from the
enclosing scope; even where it *does* pickle (thread backend), the capture
smuggles shared mutable state into what must be a pure task.

Allowed idiom: a module-level function, optionally pre-bound with
``functools.partial`` (partials of importable functions pickle fine) — see
``engine._run_map_task`` / ``_run_reduce_task``.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.engine import LintRule, ModuleInfo
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.rules.common import (
    ImportResolver,
    enclosing_functions,
    link_parents,
)

#: Constructors whose results never pickle (and should never ride along
#: in a task closure even when they would).
_UNPICKLABLE_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "threading.Event",
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor",
    "multiprocessing.Pool",
    "multiprocessing.Manager",
}

_SUBMIT_METHODS = ("run_tasks", "run_tasks_resilient")


class PickleSafetyRule(LintRule):
    rule_id = "pickle-safety"
    severity = "error"
    description = (
        "functions submitted to a Backend must be module-level importable;"
        " no closures over locks, pools, or tracers"
    )
    # Anywhere in the library someone might submit work to a backend.
    scopes = ("repro",)

    def check(self, info: ModuleInfo) -> list[Finding]:
        link_parents(info.tree)
        resolver = ImportResolver(info.tree)
        nested_defs = _nested_function_defs(info.tree)
        findings: list[Finding] = []
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            if not _is_submit_call(node):
                continue
            fn_arg = _task_fn_argument(node)
            if fn_arg is None:
                continue
            findings.extend(
                self._check_task_fn(info, resolver, nested_defs, fn_arg)
            )
        return findings

    def _check_task_fn(
        self,
        info: ModuleInfo,
        resolver: ImportResolver,
        nested_defs: dict[str, list[ast.FunctionDef | ast.AsyncFunctionDef]],
        fn_arg: ast.expr,
    ) -> list[Finding]:
        if isinstance(fn_arg, ast.Lambda):
            return [
                self.finding(
                    info,
                    fn_arg,
                    "lambda passed as a task function cannot cross the"
                    " process boundary",
                    "define a module-level function (use functools.partial"
                    " to pre-bind arguments)",
                )
            ]
        if isinstance(fn_arg, ast.Call):
            # functools.partial(fn, ...): check what it wraps.
            canonical = resolver.resolve(fn_arg.func)
            if canonical in ("functools.partial", "partial") and fn_arg.args:
                return self._check_task_fn(
                    info, resolver, nested_defs, fn_arg.args[0]
                )
            return []
        if isinstance(fn_arg, ast.Name) and fn_arg.id in nested_defs:
            target = _nearest_definition(nested_defs[fn_arg.id], fn_arg)
            captured = _captured_unpicklables(target, resolver)
            if captured:
                names = ", ".join(sorted(captured))
                return [
                    self.finding(
                        info,
                        fn_arg,
                        f"task function `{fn_arg.id}` closes over"
                        f" unpicklable state ({names})",
                        "pass data, not synchronization objects; keep task"
                        " functions pure and module-level",
                    )
                ]
            return [
                self.finding(
                    info,
                    fn_arg,
                    f"task function `{fn_arg.id}` is defined inside another"
                    " function and is not importable by name",
                    "move it to module level (use functools.partial to"
                    " pre-bind arguments)",
                )
            ]
        return []


def _is_submit_call(node: ast.Call) -> bool:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr in _SUBMIT_METHODS
    if isinstance(node.func, ast.Name):
        return node.func.id in _SUBMIT_METHODS
    return False


def _task_fn_argument(node: ast.Call) -> ast.expr | None:
    for keyword in node.keywords:
        if keyword.arg == "fn":
            return keyword.value
    if node.args:
        return node.args[0]
    return None


def _nearest_definition(
    candidates: list[ast.FunctionDef | ast.AsyncFunctionDef],
    use_site: ast.expr,
) -> ast.FunctionDef | ast.AsyncFunctionDef:
    """The candidate def visible from ``use_site`` (same enclosing scope).

    Same-name nested functions can live in different enclosing functions;
    lexical scoping means the use site sees the one defined in its own
    enclosing chain.  Falls back to the last definition when none match.
    """
    enclosing = set(map(id, enclosing_functions(use_site)))
    for candidate in reversed(candidates):
        scopes = enclosing_functions(candidate)
        if scopes and id(scopes[0]) in enclosing:
            return candidate
    return candidates[-1]


def _nested_function_defs(
    tree: ast.AST,
) -> dict[str, list[ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Name -> defs for every function defined inside another function."""
    nested: dict[str, list[ast.FunctionDef | ast.AsyncFunctionDef]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if enclosing_functions(node):
                nested.setdefault(node.name, []).append(node)
    return nested


def _captured_unpicklables(
    target: ast.FunctionDef | ast.AsyncFunctionDef,
    resolver: ImportResolver,
) -> set[str]:
    """Names the task fn loads that enclosing scopes bind to locks/pools."""
    suspect_bindings: set[str] = set()
    for scope in enclosing_functions(target):
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                canonical = resolver.resolve(node.value.func)
                if canonical in _UNPICKLABLE_FACTORIES or (
                    canonical is not None
                    and canonical.split(".")[-1]
                    in {c.split(".")[-1] for c in _UNPICKLABLE_FACTORIES}
                ):
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name):
                            suspect_bindings.add(tgt.id)
    if not suspect_bindings:
        return set()
    local_bindings = {
        arg.arg
        for arg in list(target.args.args)
        + list(target.args.posonlyargs)
        + list(target.args.kwonlyargs)
    }
    loaded: set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Store):
                local_bindings.add(node.id)
            elif node.id not in local_bindings:
                loaded.add(node.id)
    return loaded & suspect_bindings
