"""The built-in repro lint rule set."""

from __future__ import annotations

from repro.analysis.lint.engine import LintRule
from repro.analysis.lint.rules.determinism import DeterminismRule
from repro.analysis.lint.rules.exceptions_taxonomy import ExceptionTaxonomyRule
from repro.analysis.lint.rules.lock_discipline import LockDisciplineRule
from repro.analysis.lint.rules.pickle_safety import PickleSafetyRule

__all__ = [
    "DeterminismRule",
    "ExceptionTaxonomyRule",
    "LockDisciplineRule",
    "PickleSafetyRule",
    "all_rules",
]


def all_rules() -> list[LintRule]:
    """Fresh instances of every built-in rule, in catalogue order."""
    return [
        DeterminismRule(),
        PickleSafetyRule(),
        ExceptionTaxonomyRule(),
        LockDisciplineRule(),
    ]
