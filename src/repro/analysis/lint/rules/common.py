"""Shared AST helpers for repro lint rules.

The helpers here answer the two questions every rule asks: *what module
does this name refer to?* (import-aware resolution of ``Name``/``Attribute``
chains to canonical dotted paths) and *where does this node sit?* (parent
links, enclosing-function lookup).
"""

from __future__ import annotations

import ast
from typing import Iterator

_PARENT_ATTR = "_repro_lint_parent"


def link_parents(tree: ast.AST) -> None:
    """Attach a parent pointer to every node (idempotent)."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            setattr(child, _PARENT_ATTR, node)


def parent_of(node: ast.AST) -> ast.AST | None:
    return getattr(node, _PARENT_ATTR, None)


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """Yield parents from nearest to the module root."""
    current = parent_of(node)
    while current is not None:
        yield current
        current = parent_of(current)


def enclosing_functions(node: ast.AST) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Function defs containing ``node``, nearest first."""
    return [
        anc
        for anc in ancestors(node)
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


class ImportResolver:
    """Resolve names in one module to canonical dotted paths.

    Tracks ``import x [as y]`` and ``from x import y [as z]`` so that a
    rule can ask what ``rnd.random`` or a bare ``uuid4`` actually refers
    to.  Resolution is lexical and module-wide — good enough for lint
    heuristics, not a real scope analysis.
    """

    def __init__(self, tree: ast.AST) -> None:
        #: local alias -> canonical module path, e.g. {"rnd": "random"}
        self.modules: dict[str, str] = {}
        #: local name -> canonical dotted path, e.g. {"uuid4": "uuid.uuid4"}
        self.names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    canonical = alias.name if alias.asname else alias.name.split(".")[0]
                    self.modules[local] = canonical
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports stay unresolved
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.names[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> str | None:
        """Canonical dotted path for a ``Name``/``Attribute`` chain, or None."""
        if isinstance(node, ast.Name):
            if node.id in self.modules:
                return self.modules[node.id]
            if node.id in self.names:
                return self.names[node.id]
            return None
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None


def terminal_name(node: ast.AST) -> str:
    """The last identifier in a ``Name``/``Attribute`` chain ('' if none)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""
