"""Baseline files: grandfathered findings that do not fail the build.

A baseline is a committed JSON file listing findings that existed when the
linter was introduced (or when a rule was added) and have not yet been
fixed.  ``repro lint --baseline FILE`` subtracts baselined findings from
the report, so only *new* violations gate; ``--write-baseline`` rewrites
the file from the current tree, which is how a grandfathered finding gets
retired once fixed.

Entries match on :attr:`Finding.baseline_key` — rule id, path, and message,
deliberately *not* the line number — so unrelated edits that shift code do
not resurrect a baselined finding.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.lint.findings import Finding

BASELINE_VERSION = 1


def load_baseline(path: Path) -> list[Finding]:
    """Read a baseline file; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return []
    payload = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError(f"baseline {path} is not a repro-lint baseline file")
    version = payload.get("version", 0)
    if version != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has version {version!r}; expected {BASELINE_VERSION}"
        )
    return [Finding.from_dict(entry) for entry in payload["findings"]]


def save_baseline(path: Path, findings: list[Finding]) -> None:
    """Write ``findings`` as a baseline file (sorted, trailing newline)."""
    ordered = sorted(findings, key=lambda f: f.baseline_key)
    payload = {
        "version": BASELINE_VERSION,
        "findings": [f.to_dict() for f in ordered],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def apply_baseline(
    findings: list[Finding], baseline: list[Finding]
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into ``(new, grandfathered)`` against a baseline.

    Matching is multiset-style: a baseline entry absorbs at most one live
    finding with the same key, so duplicating a violation in the same file
    still fails the build.
    """
    budget: dict[str, int] = {}
    for entry in baseline:
        budget[entry.baseline_key] = budget.get(entry.baseline_key, 0) + 1
    new: list[Finding] = []
    grandfathered: list[Finding] = []
    for finding in findings:
        key = finding.baseline_key
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    return new, grandfathered
