"""Experiment harness: tradeoff sweeps and approximation-ratio studies."""

from repro.analysis.tradeoffs import (
    sweep_a2a_communication,
    sweep_a2a_parallelism,
    sweep_a2a_reducers,
    sweep_x2y_reducers,
)
from repro.analysis.ratios import RatioSummary, a2a_ratio_study, x2y_ratio_study
from repro.analysis.frontier import FrontierPoint, best_capacity, capacity_frontier

__all__ = [
    "sweep_a2a_communication",
    "sweep_a2a_parallelism",
    "sweep_a2a_reducers",
    "sweep_x2y_reducers",
    "RatioSummary",
    "a2a_ratio_study",
    "x2y_ratio_study",
    "FrontierPoint",
    "best_capacity",
    "capacity_frontier",
]
