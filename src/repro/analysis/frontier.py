"""Pareto frontier of the capacity tradeoff: communication vs. makespan.

The paper's three tradeoffs pull in opposite directions: growing q cuts
communication (iii) but eventually strangles parallelism (ii).  For a
given workload and worker pool there is a *frontier* of capacities that
are not dominated on (communication cost, makespan); everything off the
frontier wastes one resource for no gain in the other.  This module
computes that frontier, which is how an operator would actually choose q.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.instance import A2AInstance
from repro.core.selector import solve_a2a
from repro.mapreduce.cluster import schedule_loads


@dataclass(frozen=True)
class FrontierPoint:
    """One capacity's outcome: its costs and whether it is Pareto-optimal."""

    q: int
    num_reducers: int
    communication_cost: int
    makespan: float
    pareto_optimal: bool

    def as_row(self) -> dict[str, object]:
        """Dict form for table rendering."""
        return {
            "q": self.q,
            "reducers": self.num_reducers,
            "comm_cost": self.communication_cost,
            "makespan": round(self.makespan, 1),
            "pareto": "*" if self.pareto_optimal else "",
        }


def capacity_frontier(
    sizes: Sequence[int],
    q_values: Sequence[int],
    num_workers: int,
    *,
    method: str = "auto",
) -> list[FrontierPoint]:
    """Evaluate each capacity and mark the Pareto-optimal ones.

    A point is Pareto-optimal iff no other swept capacity is at least as
    good on both communication cost and makespan and strictly better on
    one.  Returns points in the order of *q_values*.
    """
    raw: list[tuple[int, int, int, float]] = []
    for q in q_values:
        instance = A2AInstance(sizes, q)
        schema = solve_a2a(instance, method)
        schedule = schedule_loads(schema.loads, num_workers)
        raw.append((q, schema.num_reducers, schema.communication_cost, schedule.makespan))

    points = []
    for q, reducers, comm, makespan in raw:
        dominated = any(
            (other_comm <= comm and other_make <= makespan)
            and (other_comm < comm or other_make < makespan)
            for _, _, other_comm, other_make in raw
        )
        points.append(
            FrontierPoint(
                q=q,
                num_reducers=reducers,
                communication_cost=comm,
                makespan=makespan,
                pareto_optimal=not dominated,
            )
        )
    return points


def best_capacity(
    sizes: Sequence[int],
    q_values: Sequence[int],
    num_workers: int,
    *,
    comm_weight: float = 1.0,
    makespan_weight: float = 1.0,
    method: str = "auto",
) -> FrontierPoint:
    """Pick the swept capacity minimizing a weighted sum of the two costs.

    A convenience for callers who want one answer instead of a frontier;
    weights express the relative price of network versus wall-clock.
    """
    points = capacity_frontier(sizes, q_values, num_workers, method=method)
    return min(
        points,
        key=lambda p: comm_weight * p.communication_cost
        + makespan_weight * p.makespan,
    )
