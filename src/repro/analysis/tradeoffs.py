"""Parameter sweeps for the paper's three tradeoffs.

Each sweep returns a list of row dicts ready for
:func:`repro.utils.tables.format_table`, so the benchmark harness and the
examples print identical tables.  The swept quantity is always the reducer
capacity ``q``, per the paper: (i) q vs. number of reducers, (ii) q vs.
parallelism (makespan on a finite cluster), (iii) q vs. communication cost.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.bounds import (
    a2a_communication_lower_bound,
    a2a_reducer_lower_bound,
    x2y_reducer_lower_bound,
)
from repro.core.costs import summarize
from repro.core.instance import A2AInstance, X2YInstance
from repro.core.selector import A2A_METHODS, X2Y_METHODS, solve_a2a, solve_x2y
from repro.exceptions import ReproError
from repro.mapreduce.cluster import schedule_loads


def sweep_a2a_reducers(
    sizes: Sequence[int],
    q_values: Sequence[int],
    methods: Sequence[str] = ("bin_pairing", "big_small", "greedy"),
) -> list[dict[str, object]]:
    """Tradeoff (i): reducer count per method as q grows, plus the lower bound.

    Methods that cannot run at some q (e.g. bin_pairing with big inputs)
    record ``None`` for that cell instead of failing the sweep.
    """
    rows = []
    for q in q_values:
        instance = A2AInstance(sizes, q)
        row: dict[str, object] = {
            "q": q,
            "lower_bound": a2a_reducer_lower_bound(instance),
        }
        for method in methods:
            try:
                schema = (
                    solve_a2a(instance) if method == "auto" else A2A_METHODS[method](instance)
                )
                row[method] = schema.num_reducers
            except ReproError:
                row[method] = None
        rows.append(row)
    return rows


def sweep_a2a_communication(
    sizes: Sequence[int],
    q_values: Sequence[int],
    method: str = "auto",
) -> list[dict[str, object]]:
    """Tradeoff (iii): communication cost and replication rate vs. q."""
    rows = []
    total = sum(sizes)
    for q in q_values:
        instance = A2AInstance(sizes, q)
        schema = solve_a2a(instance, method)
        cost = summarize(schema)
        rows.append(
            {
                "q": q,
                "num_reducers": cost.num_reducers,
                "comm_cost": cost.communication_cost,
                "comm_lower_bound": a2a_communication_lower_bound(instance),
                "replication_rate": round(cost.replication_rate, 3),
                "volume": total,
            }
        )
    return rows


def sweep_a2a_parallelism(
    sizes: Sequence[int],
    q_values: Sequence[int],
    num_workers: int,
    method: str = "auto",
) -> list[dict[str, object]]:
    """Tradeoff (ii): schedule each schema's reducer loads on a worker pool.

    Small q -> many light reducers -> high parallelism but high total work
    (communication); large q -> few heavy reducers that starve the pool.
    The makespan column exposes the knee between the two regimes.
    """
    rows = []
    for q in q_values:
        instance = A2AInstance(sizes, q)
        schema = solve_a2a(instance, method)
        schedule = schedule_loads(schema.loads, num_workers)
        rows.append(
            {
                "q": q,
                "num_reducers": schema.num_reducers,
                "comm_cost": schema.communication_cost,
                "makespan": round(schedule.makespan, 1),
                "waves": schedule.waves,
                "utilization": round(schedule.utilization, 3),
            }
        )
    return rows


def sweep_x2y_reducers(
    x_sizes: Sequence[int],
    y_sizes: Sequence[int],
    q_values: Sequence[int],
    methods: Sequence[str] = ("half_grid", "best_split_grid", "big_small"),
) -> list[dict[str, object]]:
    """X2Y version of tradeoff (i), with the cross-pair lower bound."""
    rows = []
    for q in q_values:
        instance = X2YInstance(x_sizes, y_sizes, q)
        row: dict[str, object] = {
            "q": q,
            "lower_bound": x2y_reducer_lower_bound(instance),
        }
        for method in methods:
            try:
                schema = (
                    solve_x2y(instance) if method == "auto" else X2Y_METHODS[method](instance)
                )
                row[method] = schema.num_reducers
            except ReproError:
                row[method] = None
        rows.append(row)
    return rows
