"""Workload generators: size distributions, documents, relations, vectors."""

from repro.workloads.distributions import (
    SIZE_PROFILES,
    bimodal_sizes,
    constant_sizes,
    normal_sizes,
    sample_sizes,
    uniform_sizes,
    zipf_sizes,
)
from repro.workloads.documents import (
    Document,
    all_pairs_above,
    generate_documents,
    jaccard,
)
from repro.workloads.relations import (
    Relation,
    Tuple2,
    generate_join_workload,
    generate_skewed_relation,
    heavy_hitters,
    zipf_key_sequence,
)
from repro.workloads.stats import SizeStats, gini_coefficient, size_stats
from repro.workloads.social import (
    User,
    all_common_friends,
    common_friends,
    generate_users,
)
from repro.workloads.vectors import (
    BlockVector,
    VectorBlock,
    dense_outer_product,
    generate_block_vector,
)

__all__ = [
    "SIZE_PROFILES",
    "bimodal_sizes",
    "constant_sizes",
    "normal_sizes",
    "sample_sizes",
    "uniform_sizes",
    "zipf_sizes",
    "Document",
    "all_pairs_above",
    "generate_documents",
    "jaccard",
    "Relation",
    "Tuple2",
    "generate_join_workload",
    "generate_skewed_relation",
    "heavy_hitters",
    "zipf_key_sequence",
    "SizeStats",
    "gini_coefficient",
    "size_stats",
    "User",
    "all_common_friends",
    "common_friends",
    "generate_users",
    "BlockVector",
    "VectorBlock",
    "dense_outer_product",
    "generate_block_vector",
]
