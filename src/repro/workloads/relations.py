"""Synthetic relations with heavy hitters for the skew-join application.

The paper motivates X2Y with skew join: a join-key value occurring many
times ("heavy hitter") forces all its tuples from both relations together.
Production skewed relations are substituted with generated relations whose
key frequencies follow a truncated Zipf profile, parameterized by a skew
exponent — skew 0 is uniform, larger values concentrate tuples on few keys.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import InvalidInstanceError
from repro.utils.rng import SeedLike, make_rng


@dataclass(frozen=True)
class Tuple2:
    """A binary tuple of a relation such as X(A, B) or Y(B, C).

    ``key`` is the join attribute value (B); ``payload`` is the other
    attribute (A or C); ``size`` is the tuple's assignment size in the
    mapping-schema sense (payload width in size units).
    """

    key: int
    payload: int
    size: int = 1


@dataclass(frozen=True)
class Relation:
    """A named list of binary tuples joined on ``key``."""

    name: str
    tuples: tuple[Tuple2, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.tuples)

    def key_counts(self) -> Counter:
        """Multiplicity of each join-key value."""
        return Counter(t.key for t in self.tuples)

    def key_loads(self) -> dict[int, int]:
        """Total tuple size per join-key value."""
        loads: dict[int, int] = {}
        for t in self.tuples:
            loads[t.key] = loads.get(t.key, 0) + t.size
        return loads

    def tuples_for(self, key: int) -> list[Tuple2]:
        """All tuples carrying the given join key."""
        return [t for t in self.tuples if t.key == key]


def zipf_key_sequence(
    count: int, num_keys: int, skew: float, rng: np.random.Generator
) -> list[int]:
    """Draw *count* join-key values from a truncated Zipf over *num_keys* keys.

    ``skew = 0`` is uniform; larger skews concentrate probability on the
    low-numbered keys (key 0 becomes the heavy hitter).
    """
    if num_keys <= 0:
        raise InvalidInstanceError(f"num_keys must be positive, got {num_keys}")
    if skew < 0:
        raise InvalidInstanceError(f"skew must be >= 0, got {skew}")
    ranks = np.arange(1, num_keys + 1, dtype=float)
    weights = ranks ** (-skew)
    probabilities = weights / weights.sum()
    return [int(k) for k in rng.choice(num_keys, size=count, p=probabilities)]


def generate_skewed_relation(
    name: str,
    num_tuples: int,
    num_keys: int,
    skew: float,
    *,
    tuple_size: int = 1,
    size_jitter: int = 0,
    seed: SeedLike = None,
) -> Relation:
    """Generate a relation whose join-key frequencies follow Zipf(*skew*).

    ``tuple_size`` (optionally jittered by up to ``size_jitter``) sets each
    tuple's assignment size, so experiments can combine frequency skew with
    size heterogeneity.
    """
    if num_tuples <= 0:
        raise InvalidInstanceError(f"num_tuples must be positive, got {num_tuples}")
    if tuple_size <= 0:
        raise InvalidInstanceError(f"tuple_size must be positive, got {tuple_size}")
    if size_jitter < 0:
        raise InvalidInstanceError(f"size_jitter must be >= 0, got {size_jitter}")
    rng = make_rng(seed)
    keys = zipf_key_sequence(num_tuples, num_keys, skew, rng)
    tuples = []
    for index, key in enumerate(keys):
        jitter = int(rng.integers(0, size_jitter + 1)) if size_jitter else 0
        tuples.append(Tuple2(key=key, payload=index, size=tuple_size + jitter))
    return Relation(name=name, tuples=tuple(tuples))


def generate_join_workload(
    num_tuples_x: int,
    num_tuples_y: int,
    num_keys: int,
    skew: float,
    *,
    tuple_size: int = 1,
    size_jitter: int = 0,
    seed: SeedLike = None,
) -> tuple[Relation, Relation]:
    """Generate the X(A, B) and Y(B, C) pair for a skew-join experiment.

    Both relations share the key space and the skew profile, which is the
    worst case for hash partitioning: the heavy hitter is heavy on *both*
    sides, so its join output is quadratic in its frequency.
    """
    rng = make_rng(seed)
    x = generate_skewed_relation(
        "X",
        num_tuples_x,
        num_keys,
        skew,
        tuple_size=tuple_size,
        size_jitter=size_jitter,
        seed=rng,
    )
    y = generate_skewed_relation(
        "Y",
        num_tuples_y,
        num_keys,
        skew,
        tuple_size=tuple_size,
        size_jitter=size_jitter,
        seed=rng,
    )
    return x, y


def heavy_hitters(x: Relation, y: Relation, q: int) -> list[int]:
    """Join keys whose combined tuple load exceeds the reducer capacity.

    These are exactly the keys a conventional per-key join reducer cannot
    process within capacity ``q`` — the keys the X2Y machinery takes over.
    """
    x_loads = x.key_loads()
    y_loads = y.key_loads()
    keys = set(x_loads) | set(y_loads)
    return sorted(
        k for k in keys if x_loads.get(k, 0) + y_loads.get(k, 0) > q
    )
