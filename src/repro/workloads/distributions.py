"""Input-size distributions for experiments.

The paper's whole point is that inputs have *different* sizes; these
generators produce the size profiles the experiments sweep: uniform,
Zipf (heavy-tailed, the skew-join regime), normal (mild variation),
bimodal (a big/small mixture stressing the big-input handling) and
constant (the equal-sized special case).  All sizes are integers >= 1 and
all randomness is driven by an explicit seed.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidInstanceError
from repro.utils.rng import SeedLike, make_rng


def constant_sizes(m: int, w: int = 1) -> list[int]:
    """*m* inputs all of size *w* (the equal-sized special case)."""
    if m <= 0:
        raise InvalidInstanceError(f"m must be positive, got {m}")
    if w <= 0:
        raise InvalidInstanceError(f"w must be positive, got {w}")
    return [w] * m


def uniform_sizes(
    m: int, low: int = 1, high: int = 100, seed: SeedLike = None
) -> list[int]:
    """*m* sizes drawn uniformly from ``[low, high]`` inclusive."""
    if m <= 0:
        raise InvalidInstanceError(f"m must be positive, got {m}")
    if not 1 <= low <= high:
        raise InvalidInstanceError(f"need 1 <= low <= high, got [{low}, {high}]")
    rng = make_rng(seed)
    return [int(v) for v in rng.integers(low, high + 1, size=m)]


def zipf_sizes(
    m: int,
    alpha: float = 1.5,
    max_size: int = 1000,
    seed: SeedLike = None,
) -> list[int]:
    """*m* sizes from a Zipf(alpha) distribution, clipped to ``[1, max_size]``.

    The heavy tail produces a few very large inputs among many small ones —
    the regime where naive equal-share assignment fails and the paper's
    schemes matter.  ``alpha`` must exceed 1 (numpy's Zipf requirement).
    """
    if m <= 0:
        raise InvalidInstanceError(f"m must be positive, got {m}")
    if alpha <= 1.0:
        raise InvalidInstanceError(f"alpha must be > 1, got {alpha}")
    if max_size < 1:
        raise InvalidInstanceError(f"max_size must be >= 1, got {max_size}")
    rng = make_rng(seed)
    raw = rng.zipf(alpha, size=m)
    return [int(min(v, max_size)) for v in raw]


def normal_sizes(
    m: int,
    mean: float = 50.0,
    stdev: float = 15.0,
    seed: SeedLike = None,
) -> list[int]:
    """*m* sizes from a rounded normal, clipped below at 1."""
    if m <= 0:
        raise InvalidInstanceError(f"m must be positive, got {m}")
    if stdev < 0:
        raise InvalidInstanceError(f"stdev must be >= 0, got {stdev}")
    rng = make_rng(seed)
    raw = rng.normal(mean, stdev, size=m)
    return [max(1, int(round(v))) for v in raw]


def bimodal_sizes(
    m: int,
    small_mean: float = 10.0,
    big_mean: float = 200.0,
    big_fraction: float = 0.1,
    stdev: float = 3.0,
    seed: SeedLike = None,
) -> list[int]:
    """A small/big mixture: *big_fraction* of inputs near *big_mean*.

    This is the stress profile for the big-input handling (E10): with
    ``big_mean`` close to the capacity, the big mode lands above ``q/2``.
    """
    if m <= 0:
        raise InvalidInstanceError(f"m must be positive, got {m}")
    if not 0.0 <= big_fraction <= 1.0:
        raise InvalidInstanceError(
            f"big_fraction must be in [0, 1], got {big_fraction}"
        )
    rng = make_rng(seed)
    is_big = rng.random(m) < big_fraction
    sizes = np.where(
        is_big,
        rng.normal(big_mean, stdev, size=m),
        rng.normal(small_mean, stdev, size=m),
    )
    return [max(1, int(round(v))) for v in sizes]


#: Named profiles with capacity-relative defaults, used by sweeps/benches:
#: each callable takes (m, q, seed) and scales its parameters to q so one
#: sweep works across capacities.
def _uniform_profile(m: int, q: int, seed: SeedLike) -> list[int]:
    return uniform_sizes(m, low=1, high=max(1, q // 4), seed=seed)


def _zipf_profile(m: int, q: int, seed: SeedLike) -> list[int]:
    return zipf_sizes(m, alpha=1.5, max_size=max(1, q // 3), seed=seed)


def _normal_profile(m: int, q: int, seed: SeedLike) -> list[int]:
    return normal_sizes(m, mean=q / 8, stdev=q / 32, seed=seed)


def _bimodal_profile(m: int, q: int, seed: SeedLike) -> list[int]:
    # The big mode sits just below q/2 so that two big inputs still co-fit:
    # any pair of inputs strictly above q/2 is unconditionally infeasible
    # for A2A (they can never meet), which would make the profile useless
    # for all-pairs workloads.  The dedicated big-input experiments build
    # one-sided X2Y instances instead.
    return bimodal_sizes(
        m,
        small_mean=q / 16,
        big_mean=0.45 * q,
        big_fraction=0.1,
        stdev=q / 64,
        seed=seed,
    )


def _constant_profile(m: int, q: int, seed: SeedLike) -> list[int]:
    return constant_sizes(m, w=max(1, q // 8))


SIZE_PROFILES = {
    "uniform": _uniform_profile,
    "zipf": _zipf_profile,
    "normal": _normal_profile,
    "bimodal": _bimodal_profile,
    "constant": _constant_profile,
}


def sample_sizes(profile: str, m: int, q: int, seed: SeedLike = None) -> list[int]:
    """Draw *m* sizes from a named capacity-relative profile.

    Guarantees every size is feasible on its own (``<= q``) by clipping.
    """
    if profile not in SIZE_PROFILES:
        raise InvalidInstanceError(
            f"unknown size profile {profile!r}; choose from {sorted(SIZE_PROFILES)}"
        )
    sizes = SIZE_PROFILES[profile](m, q, seed)
    return [min(s, q) for s in sizes]
