"""Descriptive statistics of input-size profiles.

The shape of the size distribution decides which assignment scheme wins
(uniformity -> grouping, heavy tail -> bin packing, bigs -> residual
handling).  These statistics summarize a workload before solving, and the
reported numbers make experiment tables self-describing.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from statistics import mean, pstdev

from repro.exceptions import InvalidInstanceError


@dataclass(frozen=True)
class SizeStats:
    """Summary of one size profile against a capacity ``q``.

    Attributes:
        count: number of inputs.
        total: sum of sizes.
        minimum / maximum / average: the obvious ones.
        cv: coefficient of variation (stdev / mean); 0 means equal-sized.
        gini: Gini coefficient of the sizes in [0, 1); heavy tails score
            high.
        big_fraction: fraction of inputs strictly above ``q / 2`` (the
            inputs needing residual-capacity handling).
        max_per_reducer: how many of the smallest inputs co-fit in one
            reducer (the ``t`` in the pair-covering bound).
    """

    count: int
    total: int
    minimum: int
    maximum: int
    average: float
    cv: float
    gini: float
    big_fraction: float
    max_per_reducer: int

    def as_row(self) -> dict[str, object]:
        """Dict form for table rendering."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": round(self.average, 2),
            "cv": round(self.cv, 3),
            "gini": round(self.gini, 3),
            "big_frac": round(self.big_fraction, 3),
            "t_max": self.max_per_reducer,
        }


def gini_coefficient(sizes: Sequence[int]) -> float:
    """Gini coefficient of a non-empty positive sequence.

    0 for equal sizes, approaching 1 as one input dominates.  Uses the
    sorted-rank formula: ``G = (2 * sum(i * x_i) / (n * sum(x))) - (n+1)/n``
    with 1-based ranks over ascending sizes.
    """
    if not sizes:
        raise InvalidInstanceError("sizes must be non-empty")
    ordered = sorted(sizes)
    n = len(ordered)
    total = sum(ordered)
    if total <= 0:
        raise InvalidInstanceError("sizes must be positive")
    weighted = sum(rank * size for rank, size in enumerate(ordered, start=1))
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n


def size_stats(sizes: Sequence[int], q: int) -> SizeStats:
    """Compute :class:`SizeStats` for *sizes* against capacity *q*."""
    if not sizes:
        raise InvalidInstanceError("sizes must be non-empty")
    if q <= 0:
        raise InvalidInstanceError(f"q must be positive, got {q}")
    average = mean(sizes)
    spread = pstdev(sizes) if len(sizes) > 1 else 0.0
    half = q / 2
    budget = q
    fit = 0
    for size in sorted(sizes):
        if size > budget:
            break
        budget -= size
        fit += 1
    return SizeStats(
        count=len(sizes),
        total=sum(sizes),
        minimum=min(sizes),
        maximum=max(sizes),
        average=average,
        cv=(spread / average) if average else 0.0,
        gini=gini_coefficient(sizes),
        big_fraction=sum(1 for s in sizes if s > half) / len(sizes),
        max_per_reducer=fit,
    )
