"""Synthetic social network for the common-friends application.

The paper names "computing common friends on a social networking site" as
an A2A example: for every pair of users, the common friends of the pair
must be computed, and a user's friend list is the different-sized input.
This generator produces users with heavy-tailed friend-list sizes over a
shared population, mirroring real friendship-degree distributions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import InvalidInstanceError
from repro.utils.rng import SeedLike, make_rng
from repro.workloads.distributions import sample_sizes


@dataclass(frozen=True)
class User:
    """A user: an id plus a friend set; its *size* is the friend count."""

    user_id: int
    friends: frozenset[int]

    @property
    def size(self) -> int:
        """Assignment size of the user (friend-list length)."""
        return len(self.friends)


def common_friends(a: User, b: User) -> frozenset[int]:
    """The friends shared by two users (the reduce-side function)."""
    return a.friends & b.friends


def generate_users(
    num_users: int,
    q: int,
    *,
    population: int = 1000,
    profile: str = "zipf",
    seed: SeedLike = None,
) -> list[User]:
    """Generate *num_users* users with profile-distributed friend counts.

    Friend ids are drawn from a shared ``population`` so pairs of users
    actually overlap; sizes are drawn relative to the capacity *q* via
    :func:`repro.workloads.distributions.sample_sizes` (each count is also
    capped by the population).
    """
    if num_users <= 0:
        raise InvalidInstanceError(f"num_users must be positive, got {num_users}")
    if population <= 0:
        raise InvalidInstanceError(f"population must be positive, got {population}")
    rng = make_rng(seed)
    sizes = sample_sizes(profile, num_users, q, seed=rng)
    users = []
    for user_id, size in enumerate(sizes):
        count = min(size, population)
        friends = rng.choice(population, size=count, replace=False)
        users.append(User(user_id=user_id, friends=frozenset(int(f) for f in friends)))
    return users


def all_common_friends(users: list[User]) -> dict[tuple[int, int], frozenset[int]]:
    """Ground truth: common friends of every user pair, brute force."""
    result: dict[tuple[int, int], frozenset[int]] = {}
    for i in range(len(users)):
        for j in range(i + 1, len(users)):
            result[(users[i].user_id, users[j].user_id)] = common_friends(
                users[i], users[j]
            )
    return result
