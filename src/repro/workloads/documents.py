"""Synthetic document corpora for the similarity-join application.

The paper motivates A2A with similarity join over web pages: every pair of
documents must be compared because the similarity function admits no
shortcut.  Real web pages only matter through their *sizes* (the mapping
schema) and token multisets (the reduce-side function), so the substitute
is a token-document generator with a configurable size distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Iterator

import numpy as np

from repro.dataset import Dataset
from repro.exceptions import InvalidInstanceError
from repro.utils.rng import SeedLike, make_rng
from repro.workloads.distributions import sample_sizes


@dataclass(frozen=True)
class Document:
    """A document: an id plus a token tuple; its *size* is the token count.

    Token count doubling as assignment size keeps the simulator's byte
    accounting and the mapping-schema sizes consistent by construction.
    """

    doc_id: int
    tokens: tuple[str, ...]

    @property
    def size(self) -> int:
        """Assignment size of the document (number of tokens)."""
        return len(self.tokens)


def jaccard(a: Document, b: Document) -> float:
    """Jaccard similarity of two documents' token sets.

    Deliberately has no locality-sensitive shortcut here — the all-pairs
    requirement is the premise of the A2A problem.
    """
    set_a, set_b = set(a.tokens), set(b.tokens)
    union = set_a | set_b
    if not union:
        return 1.0
    return len(set_a & set_b) / len(union)


def generate_documents(
    m: int,
    q: int,
    *,
    profile: str = "zipf",
    vocabulary_size: int = 500,
    seed: SeedLike = None,
) -> list[Document]:
    """Generate *m* documents whose sizes follow a named profile.

    Sizes are drawn from :func:`repro.workloads.distributions.sample_sizes`
    relative to the reducer capacity *q*, then each document is filled with
    that many tokens from a ``vocabulary_size``-word vocabulary.  A shared
    seed makes corpus and sizes reproducible together.
    """
    if vocabulary_size <= 0:
        raise InvalidInstanceError(
            f"vocabulary_size must be positive, got {vocabulary_size}"
        )
    rng = make_rng(seed)
    sizes = sample_sizes(profile, m, q, seed=rng)
    vocabulary = [f"tok{v}" for v in range(vocabulary_size)]
    documents = []
    for doc_id, size in enumerate(sizes):
        token_ids = rng.integers(0, vocabulary_size, size=size)
        documents.append(
            Document(doc_id=doc_id, tokens=tuple(vocabulary[t] for t in token_ids))
        )
    return documents


def _iter_documents(
    m: int,
    q: int,
    profile: str,
    vocabulary_size: int,
    seed: int,
) -> Iterator[Document]:
    """Yield the corpus of :func:`generate_documents` one document at a time.

    Sizes are sampled up front (they are ``m`` small integers — the part
    that must be known for schema planning anyway); the token payloads,
    which dominate memory, are produced lazily.
    """
    rng = make_rng(seed)
    sizes = sample_sizes(profile, m, q, seed=rng)
    vocabulary = [f"tok{v}" for v in range(vocabulary_size)]
    for doc_id, size in enumerate(sizes):
        token_ids = rng.integers(0, vocabulary_size, size=size)
        yield Document(
            doc_id=doc_id, tokens=tuple(vocabulary[t] for t in token_ids)
        )


def document_dataset(
    m: int,
    q: int,
    *,
    profile: str = "zipf",
    vocabulary_size: int = 500,
    seed: SeedLike = None,
) -> Dataset:
    """The corpus of :func:`generate_documents` as a streaming dataset.

    Every iteration replays the same seeded generator, so the dataset is
    re-iterable and deterministic (an unseeded call draws one concrete
    seed at construction time and pins it), while the token payloads are
    produced on demand instead of being held all at once.
    """
    if vocabulary_size <= 0:
        raise InvalidInstanceError(
            f"vocabulary_size must be positive, got {vocabulary_size}"
        )
    if not isinstance(seed, int):
        # Pin one concrete seed so re-iteration replays the same corpus.
        seed = int(make_rng(seed).integers(0, np.iinfo(np.int64).max))
    return Dataset.from_factory(
        partial(_iter_documents, m, q, profile, vocabulary_size, seed),
        length=m,
    )


def all_pairs_above(
    documents: list[Document], threshold: float
) -> set[tuple[int, int]]:
    """Ground-truth similarity join: brute force over all pairs.

    Used by tests and E7 to check the MapReduce pipeline emits exactly the
    right pair set.
    """
    results: set[tuple[int, int]] = set()
    for i in range(len(documents)):
        for j in range(i + 1, len(documents)):
            if jaccard(documents[i], documents[j]) >= threshold:
                results.add((documents[i].doc_id, documents[j].doc_id))
    return results
