"""Block-partitioned vectors for the tensor/outer-product application.

The paper lists outer (tensor) product as an X2Y example: every block of
vector ``u`` must meet every block of vector ``v``.  Blocks may hold
different numbers of entries — exactly the different-sized-inputs setting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import InvalidInstanceError
from repro.utils.rng import SeedLike, make_rng
from repro.workloads.distributions import sample_sizes


@dataclass(frozen=True)
class VectorBlock:
    """A contiguous block of vector entries.

    ``offset`` is the index of the first entry in the full vector; the
    block's assignment size is its entry count.
    """

    block_id: int
    offset: int
    values: tuple[float, ...]

    @property
    def size(self) -> int:
        """Assignment size: number of entries."""
        return len(self.values)


@dataclass(frozen=True)
class BlockVector:
    """A vector split into variable-sized blocks."""

    name: str
    blocks: tuple[VectorBlock, ...]

    @property
    def dimension(self) -> int:
        """Total number of entries across blocks."""
        return sum(b.size for b in self.blocks)

    def dense(self) -> list[float]:
        """Reassemble the full vector in entry order."""
        entries = [0.0] * self.dimension
        for block in self.blocks:
            for k, v in enumerate(block.values):
                entries[block.offset + k] = v
        return entries


def generate_block_vector(
    name: str,
    num_blocks: int,
    q: int,
    *,
    profile: str = "uniform",
    seed: SeedLike = None,
) -> BlockVector:
    """Generate a block vector whose block sizes follow a named profile.

    Block sizes are drawn relative to the reducer capacity *q* via
    :func:`repro.workloads.distributions.sample_sizes`; entry values are
    standard normal.
    """
    if num_blocks <= 0:
        raise InvalidInstanceError(f"num_blocks must be positive, got {num_blocks}")
    rng = make_rng(seed)
    sizes = sample_sizes(profile, num_blocks, q, seed=rng)
    blocks = []
    offset = 0
    for block_id, size in enumerate(sizes):
        values = tuple(float(v) for v in rng.normal(size=size))
        blocks.append(VectorBlock(block_id=block_id, offset=offset, values=values))
        offset += size
    return BlockVector(name=name, blocks=tuple(blocks))


def dense_outer_product(u: BlockVector, v: BlockVector) -> list[list[float]]:
    """Ground-truth outer product ``u v^T`` computed densely.

    Used by tests and E-benches to validate the distributed computation.
    """
    du, dv = u.dense(), v.dense()
    return [[a * b for b in dv] for a in du]
