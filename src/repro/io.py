"""JSON serialization of instances and schemas.

Mapping schemas are plans computed ahead of job submission; a production
deployment computes them in a driver and ships them to mappers.  This
module gives instances and schemas a stable JSON wire format with strict
round-tripping, so plans can be persisted, diffed and replayed.

Strict round-tripping means strict *loading*: unknown format versions are
rejected (a ``version`` newer than this library understands must not be
half-parsed into a wrong plan), and missing or mistyped fields raise
:class:`~repro.exceptions.InvalidInstanceError` with the offending field
named, never a raw ``KeyError``/``TypeError``.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any

from repro.core.instance import A2AInstance, X2YInstance
from repro.core.schema import A2ASchema, X2YSchema
from repro.exceptions import InvalidInstanceError

_FORMAT_VERSION = 1


def atomic_write_text(path: str, text: str) -> None:
    """Write *text* to *path* atomically (full content or nothing).

    Writes to a temporary file in the target's directory, fsyncs, then
    :func:`os.replace`\\ s it over the destination — same-filesystem
    rename is atomic, so a crash mid-dump can never leave a truncated
    file for :meth:`Plan.load`/bench tooling to choke on.  The temporary
    file is removed on any failure.
    """
    directory = os.path.dirname(os.path.abspath(path))
    handle = tempfile.NamedTemporaryFile(
        "w",
        dir=directory,
        prefix=os.path.basename(path) + ".",
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        # NamedTemporaryFile creates 0600 files; give the final artifact
        # the ordinary umask-derived permissions a plain open() would.
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(handle.name, 0o666 & ~umask)
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


def _check_version(payload: dict[str, Any], what: str) -> None:
    """Reject payloads declaring a format version this library cannot read.

    A payload without a ``version`` field is treated as version 1 (the
    field was always written but never checked, so hand-crafted fixtures
    commonly omit it).
    """
    version = payload.get("version", _FORMAT_VERSION)
    if version != _FORMAT_VERSION:
        raise InvalidInstanceError(
            f"unsupported {what} format version {version!r} "
            f"(this library reads version {_FORMAT_VERSION})"
        )


def _require(payload: dict[str, Any], field: str, what: str) -> Any:
    """Fetch a required field, naming it on failure."""
    if not isinstance(payload, dict):
        raise InvalidInstanceError(
            f"{what} payload must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    if field not in payload:
        raise InvalidInstanceError(f"{what} payload is missing {field!r}")
    return payload[field]


def _require_int_list(payload: dict[str, Any], field: str, what: str) -> list:
    """Fetch a required list-of-integers field (bool is not an integer)."""
    value = _require(payload, field, what)
    if not isinstance(value, list) or any(
        not isinstance(item, int) or isinstance(item, bool) for item in value
    ):
        raise InvalidInstanceError(
            f"{what} field {field!r} must be a list of integers, "
            f"got {value!r}"
        )
    return value


def _require_int(payload: dict[str, Any], field: str, what: str) -> int:
    """Fetch a required integer field (bool is not an integer)."""
    value = _require(payload, field, what)
    if not isinstance(value, int) or isinstance(value, bool):
        raise InvalidInstanceError(
            f"{what} field {field!r} must be an integer, got {value!r}"
        )
    return value


def instance_to_dict(instance: A2AInstance | X2YInstance) -> dict[str, Any]:
    """Serialize an instance to a JSON-safe dict."""
    if isinstance(instance, A2AInstance):
        return {
            "version": _FORMAT_VERSION,
            "kind": "a2a",
            "sizes": list(instance.sizes),
            "q": instance.q,
        }
    if isinstance(instance, X2YInstance):
        return {
            "version": _FORMAT_VERSION,
            "kind": "x2y",
            "x_sizes": list(instance.x_sizes),
            "y_sizes": list(instance.y_sizes),
            "q": instance.q,
        }
    raise InvalidInstanceError(f"cannot serialize {type(instance).__name__}")


def instance_from_dict(payload: dict[str, Any]) -> A2AInstance | X2YInstance:
    """Deserialize an instance; raises :class:`InvalidInstanceError` on bad input."""
    if not isinstance(payload, dict):
        raise InvalidInstanceError(
            f"instance payload must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    _check_version(payload, "instance")
    kind = payload.get("kind")
    if kind == "a2a":
        return A2AInstance(
            _require_int_list(payload, "sizes", "a2a instance"),
            _require_int(payload, "q", "a2a instance"),
        )
    if kind == "x2y":
        return X2YInstance(
            _require_int_list(payload, "x_sizes", "x2y instance"),
            _require_int_list(payload, "y_sizes", "x2y instance"),
            _require_int(payload, "q", "x2y instance"),
        )
    raise InvalidInstanceError(f"unknown instance kind {kind!r}")


def schema_to_dict(schema: A2ASchema | X2YSchema) -> dict[str, Any]:
    """Serialize a schema (with its instance) to a JSON-safe dict."""
    if isinstance(schema, A2ASchema):
        return {
            "version": _FORMAT_VERSION,
            "kind": "a2a",
            "instance": instance_to_dict(schema.instance),
            "algorithm": schema.algorithm,
            "reducers": [list(r) for r in schema.reducers],
        }
    if isinstance(schema, X2YSchema):
        return {
            "version": _FORMAT_VERSION,
            "kind": "x2y",
            "instance": instance_to_dict(schema.instance),
            "algorithm": schema.algorithm,
            "reducers": [
                {"x": list(x_part), "y": list(y_part)}
                for x_part, y_part in schema.reducers
            ],
        }
    raise InvalidInstanceError(f"cannot serialize {type(schema).__name__}")


def schema_from_dict(payload: dict[str, Any]) -> A2ASchema | X2YSchema:
    """Deserialize a schema; raises :class:`InvalidInstanceError` on bad input."""
    if not isinstance(payload, dict):
        raise InvalidInstanceError(
            f"schema payload must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    _check_version(payload, "schema")
    kind = payload.get("kind")
    instance = instance_from_dict(_require(payload, "instance", "schema"))
    algorithm = payload.get("algorithm", "unspecified")
    reducers = _require(payload, "reducers", "schema")
    if not isinstance(reducers, list):
        raise InvalidInstanceError(
            f"schema field 'reducers' must be a list, got {reducers!r}"
        )
    try:
        if kind == "a2a":
            if not isinstance(instance, A2AInstance):
                raise InvalidInstanceError(
                    "a2a schema carries a non-a2a instance"
                )
            return A2ASchema.from_lists(instance, reducers, algorithm=algorithm)
        if kind == "x2y":
            if not isinstance(instance, X2YInstance):
                raise InvalidInstanceError(
                    "x2y schema carries a non-x2y instance"
                )
            pairs = [
                (
                    _require(r, "x", "x2y reducer"),
                    _require(r, "y", "x2y reducer"),
                )
                for r in reducers
            ]
            return X2YSchema.from_lists(instance, pairs, algorithm=algorithm)
    except (TypeError, ValueError) as exc:
        if isinstance(exc, InvalidInstanceError):
            raise
        raise InvalidInstanceError(
            f"malformed schema reducers: {exc}"
        ) from exc
    raise InvalidInstanceError(f"unknown schema kind {kind!r}")


def dumps(obj: A2AInstance | X2YInstance | A2ASchema | X2YSchema, **kwargs) -> str:
    """Serialize an instance or schema to a JSON string."""
    if isinstance(obj, (A2ASchema, X2YSchema)):
        return json.dumps(schema_to_dict(obj), **kwargs)
    return json.dumps(instance_to_dict(obj), **kwargs)


def loads(text: str) -> A2AInstance | X2YInstance | A2ASchema | X2YSchema:
    """Deserialize a JSON string produced by :func:`dumps`.

    Dispatches on the presence of a ``reducers`` field (schema) versus a
    bare instance payload.  Text that is not valid JSON raises
    :class:`InvalidInstanceError` rather than leaking
    :class:`json.JSONDecodeError` to the caller.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise InvalidInstanceError(f"not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise InvalidInstanceError("expected a JSON object")
    if "reducers" in payload:
        return schema_from_dict(payload)
    return instance_from_dict(payload)
