"""JSON serialization of instances and schemas.

Mapping schemas are plans computed ahead of job submission; a production
deployment computes them in a driver and ships them to mappers.  This
module gives instances and schemas a stable JSON wire format with strict
round-tripping, so plans can be persisted, diffed and replayed.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.instance import A2AInstance, X2YInstance
from repro.core.schema import A2ASchema, X2YSchema
from repro.exceptions import InvalidInstanceError

_FORMAT_VERSION = 1


def instance_to_dict(instance: A2AInstance | X2YInstance) -> dict[str, Any]:
    """Serialize an instance to a JSON-safe dict."""
    if isinstance(instance, A2AInstance):
        return {
            "version": _FORMAT_VERSION,
            "kind": "a2a",
            "sizes": list(instance.sizes),
            "q": instance.q,
        }
    if isinstance(instance, X2YInstance):
        return {
            "version": _FORMAT_VERSION,
            "kind": "x2y",
            "x_sizes": list(instance.x_sizes),
            "y_sizes": list(instance.y_sizes),
            "q": instance.q,
        }
    raise InvalidInstanceError(f"cannot serialize {type(instance).__name__}")


def instance_from_dict(payload: dict[str, Any]) -> A2AInstance | X2YInstance:
    """Deserialize an instance; raises :class:`InvalidInstanceError` on bad input."""
    kind = payload.get("kind")
    if kind == "a2a":
        return A2AInstance(payload["sizes"], payload["q"])
    if kind == "x2y":
        return X2YInstance(payload["x_sizes"], payload["y_sizes"], payload["q"])
    raise InvalidInstanceError(f"unknown instance kind {kind!r}")


def schema_to_dict(schema: A2ASchema | X2YSchema) -> dict[str, Any]:
    """Serialize a schema (with its instance) to a JSON-safe dict."""
    if isinstance(schema, A2ASchema):
        return {
            "version": _FORMAT_VERSION,
            "kind": "a2a",
            "instance": instance_to_dict(schema.instance),
            "algorithm": schema.algorithm,
            "reducers": [list(r) for r in schema.reducers],
        }
    if isinstance(schema, X2YSchema):
        return {
            "version": _FORMAT_VERSION,
            "kind": "x2y",
            "instance": instance_to_dict(schema.instance),
            "algorithm": schema.algorithm,
            "reducers": [
                {"x": list(x_part), "y": list(y_part)}
                for x_part, y_part in schema.reducers
            ],
        }
    raise InvalidInstanceError(f"cannot serialize {type(schema).__name__}")


def schema_from_dict(payload: dict[str, Any]) -> A2ASchema | X2YSchema:
    """Deserialize a schema; raises :class:`InvalidInstanceError` on bad input."""
    kind = payload.get("kind")
    instance = instance_from_dict(payload["instance"])
    algorithm = payload.get("algorithm", "unspecified")
    if kind == "a2a":
        assert isinstance(instance, A2AInstance)
        return A2ASchema.from_lists(instance, payload["reducers"], algorithm=algorithm)
    if kind == "x2y":
        assert isinstance(instance, X2YInstance)
        reducers = [(r["x"], r["y"]) for r in payload["reducers"]]
        return X2YSchema.from_lists(instance, reducers, algorithm=algorithm)
    raise InvalidInstanceError(f"unknown schema kind {kind!r}")


def dumps(obj: A2AInstance | X2YInstance | A2ASchema | X2YSchema, **kwargs) -> str:
    """Serialize an instance or schema to a JSON string."""
    if isinstance(obj, (A2ASchema, X2YSchema)):
        return json.dumps(schema_to_dict(obj), **kwargs)
    return json.dumps(instance_to_dict(obj), **kwargs)


def loads(text: str) -> A2AInstance | X2YInstance | A2ASchema | X2YSchema:
    """Deserialize a JSON string produced by :func:`dumps`.

    Dispatches on the presence of a ``reducers`` field (schema) versus a
    bare instance payload.
    """
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise InvalidInstanceError("expected a JSON object")
    if "reducers" in payload:
        return schema_from_dict(payload)
    return instance_from_dict(payload)
