"""Shared plumbing for the end-to-end applications.

Every application follows the same pattern: build an instance from input
sizes, solve it into a mapping schema, replicate each input to its schema
reducers through the simulated MapReduce job, and have each reducer emit a
pair's output only from the pair's *canonical* meeting reducer so results
are exact-once despite replication.
"""

from __future__ import annotations

from repro.core.schema import A2ASchema, X2YSchema


def a2a_memberships(schema: A2ASchema) -> list[list[int]]:
    """Per-input sorted list of reducer indices (one pass over the schema)."""
    memberships: list[list[int]] = [[] for _ in range(schema.instance.m)]
    for r, members in enumerate(schema.reducers):
        for i in members:
            memberships[i].append(r)
    return memberships


def x2y_memberships(schema: X2YSchema) -> tuple[list[list[int]], list[list[int]]]:
    """Per-input reducer lists for both sides of an X2Y schema."""
    x_memberships: list[list[int]] = [[] for _ in range(schema.instance.m)]
    y_memberships: list[list[int]] = [[] for _ in range(schema.instance.n)]
    for r, (x_part, y_part) in enumerate(schema.reducers):
        for i in x_part:
            x_memberships[i].append(r)
        for j in y_part:
            y_memberships[j].append(r)
    return x_memberships, y_memberships


def canonical_meeting(reducers_a: list[int], reducers_b: list[int]) -> int:
    """The canonical reducer of a pair: the smallest shared reducer index.

    A valid schema guarantees the intersection is non-empty; emitting a
    pair's output only when the executing reducer equals this index makes
    the distributed result exactly-once.
    """
    common = set(reducers_a) & set(reducers_b)
    if not common:
        raise ValueError("inputs share no reducer; schema is invalid for this pair")
    return min(common)
