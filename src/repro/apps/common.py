"""Shared plumbing for the end-to-end applications.

Every application follows the same pattern: build an instance from input
sizes, solve it into a mapping schema, replicate each input to its schema
reducers through a MapReduce executor, and have each reducer emit a pair's
output only from the pair's *canonical* meeting reducer so results are
exact-once despite replication.

The membership/canonical-meeting helpers themselves live in
:mod:`repro.engine.routing` (the execution engine needs them too); this
module re-exports them so application code keeps its historical import
path.
"""

from __future__ import annotations

from repro.engine.routing import (  # noqa: F401 - re-exported API
    a2a_memberships,
    a2a_meeting_table,
    canonical_meeting,
    x2y_memberships,
    x2y_meeting_table,
)

__all__ = [
    "a2a_memberships",
    "a2a_meeting_table",
    "x2y_memberships",
    "x2y_meeting_table",
    "canonical_meeting",
]
