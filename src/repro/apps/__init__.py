"""End-to-end applications on the simulated MapReduce cluster."""

from repro.apps.common_friends import CommonFriendsRun, run_common_friends
from repro.apps.similarity_join import (
    SimilarityJoinRun,
    run_broadcast_baseline,
    run_similarity_join,
)
from repro.apps.skew_join import SkewJoinRun, hash_join, naive_join, schema_skew_join
from repro.apps.tensor_product import OuterProductRun, distributed_outer_product
from repro.apps.threeway_similarity import ThreeWayRun, run_threeway_similarity

__all__ = [
    "CommonFriendsRun",
    "run_common_friends",
    "SimilarityJoinRun",
    "run_broadcast_baseline",
    "run_similarity_join",
    "SkewJoinRun",
    "hash_join",
    "naive_join",
    "schema_skew_join",
    "OuterProductRun",
    "ThreeWayRun",
    "run_threeway_similarity",
    "distributed_outer_product",
]
