"""End-to-end applications: thin spec builders over the planner pipeline.

Every application states its problem as a
:class:`~repro.planner.spec.JobSpec` (exposed as a ``*_spec`` builder),
lets :func:`repro.planner.plan` choose the mapping schema, and — when an
engine backend is requested — executes through :func:`repro.planner.run`.
The shared membership/meeting-table helpers live in
:mod:`repro.engine.routing`.
"""

from repro.apps.common_friends import (
    CommonFriendsRun,
    common_friends_spec,
    run_common_friends,
)
from repro.apps.similarity_join import (
    SimilarityJoinRun,
    run_broadcast_baseline,
    run_similarity_join,
    similarity_spec,
)
from repro.apps.skew_join import (
    SkewJoinRun,
    hash_join,
    heavy_key_spec,
    naive_join,
    schema_skew_join,
)
from repro.apps.tensor_product import (
    OuterProductRun,
    distributed_outer_product,
    outer_product_spec,
)
from repro.apps.threeway_similarity import (
    ThreeWayRun,
    run_threeway_similarity,
    threeway_spec,
)

__all__ = [
    "CommonFriendsRun",
    "common_friends_spec",
    "run_common_friends",
    "SimilarityJoinRun",
    "run_broadcast_baseline",
    "run_similarity_join",
    "similarity_spec",
    "SkewJoinRun",
    "hash_join",
    "heavy_key_spec",
    "naive_join",
    "schema_skew_join",
    "OuterProductRun",
    "outer_product_spec",
    "ThreeWayRun",
    "run_threeway_similarity",
    "threeway_spec",
    "distributed_outer_product",
]
