"""Distributed outer (tensor) product on the simulated cluster.

The paper's third X2Y example: for block-partitioned vectors ``u`` and
``v``, every (u-block, v-block) pair must meet to produce its tile of the
outer-product matrix ``u v^T``.  Blocks of different sizes are exactly the
different-sized inputs the schema machinery handles.

A thin spec builder over the planner: :func:`outer_product_spec` states
the problem, the planner picks the schema, and the engine path funnels
through :func:`repro.planner.run` (the default path stays on the
reference simulator).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Iterator

from repro import planner
from repro.core.schema import X2YSchema
from repro.engine.config import ExecutionConfig, resolve_execution
from repro.engine.metrics import EngineMetrics
from repro.engine.routing import x2y_meeting_table, x2y_memberships
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.metrics import JobMetrics
from repro.planner import JobSpec, Plan
from repro.workloads.vectors import BlockVector, VectorBlock


@dataclass(frozen=True)
class OuterProductRun:
    """Result of a distributed outer product.

    Attributes:
        entries: ``(row, col, value)`` triples covering the whole matrix,
            each exactly once.
        schema: the X2Y mapping schema used.
        metrics: simulator metrics (engine runs report the identical
            analytical metrics).
        shape: ``(len(u), len(v))`` of the full matrix.
        engine: physical execution metrics when the run went through the
            engine; ``None`` for simulator runs.
        plan: the planner's full decision record for this run.
    """

    entries: tuple[tuple[int, int, float], ...]
    schema: X2YSchema
    metrics: JobMetrics
    shape: tuple[int, int]
    engine: EngineMetrics | None = None
    plan: Plan | None = None

    def dense(self) -> list[list[float]]:
        """Assemble the dense matrix from the emitted entries."""
        rows, cols = self.shape
        matrix = [[0.0] * cols for _ in range(rows)]
        for r, c, v in self.entries:
            matrix[r][c] = v
        return matrix


def outer_product_spec(
    u: BlockVector,
    v: BlockVector,
    q: int,
    *,
    method: str = "auto",
    objective: str = "min-reducers",
) -> JobSpec:
    """The outer product as a declarative X2Y spec (block sizes per side)."""
    return JobSpec.x2y(
        u.blocks,
        v.blocks,
        q,
        method=None if method == "planned" else method,
        objective=objective,
    )


def _outer_product_reduce(
    key,
    values: list[tuple[str, int, VectorBlock]],
    *,
    owners: dict[tuple[int, int], int],
) -> Iterator[tuple[int, int, float]]:
    """Engine-path reducer: emit tiles of canonically-owned block pairs.

    Values arrive as ``(side, input_index, block)`` with side ``"x"`` for
    u-blocks and ``"y"`` for v-blocks; module-level so the ``processes``
    backend can pickle it.
    """
    u_blocks = [block for side, _, block in values if side == "x"]
    v_blocks = [block for side, _, block in values if side == "y"]
    for ub in u_blocks:
        for vb in v_blocks:
            if owners[(ub.block_id, vb.block_id)] != key:
                continue
            for a, u_val in enumerate(ub.values):
                for b, v_val in enumerate(vb.values):
                    yield (ub.offset + a, vb.offset + b, u_val * v_val)


def distributed_outer_product(
    u: BlockVector,
    v: BlockVector,
    q: int,
    *,
    method: str = "auto",
    objective: str = "min-reducers",
    backend: str | None = None,
    num_workers: int | None = None,
    config: ExecutionConfig | None = None,
) -> OuterProductRun:
    """Compute ``u v^T`` with an X2Y mapping schema.

    Block sizes define the instance; each reducer computes the tiles of the
    (u-block, v-block) pairs it canonically owns.  Capacity is strict — a
    correct schema cannot overflow.  With neither ``backend=`` nor
    ``config=`` the job runs on the reference simulator; naming a backend
    or passing an :class:`~repro.engine.config.ExecutionConfig` routes it
    through the engine with identical entries.  ``method="planned"``
    enables full cost-based planning under *objective* and defaults to
    the plan's resolved execution configuration.
    """
    spec = outer_product_spec(u, v, q, method=method, objective=objective)
    planned = planner.plan(spec)
    schema = planned.schema()
    owners = x2y_meeting_table(schema)

    execution = resolve_execution(config, backend, num_workers)
    if execution is None and method == "planned":
        execution = planned.execution
    if execution is not None:
        result = planner.run(
            planned,
            (u.blocks, v.blocks),
            partial(_outer_product_reduce, owners=owners),
            config=execution,
        )
        return OuterProductRun(
            entries=tuple(result.outputs),
            schema=schema,
            metrics=result.metrics,
            shape=(u.dimension, v.dimension),
            engine=result.engine,
            plan=planned,
        )

    x_members, y_members = x2y_memberships(schema)

    def map_fn(record: tuple[str, VectorBlock]):
        side, block = record
        members = x_members if side == "u" else y_members
        for r in members[block.block_id]:
            yield r, (side, block)

    def reduce_fn(key, values):
        u_blocks = [b for side, b in values if side == "u"]
        v_blocks = [b for side, b in values if side == "v"]
        for ub in u_blocks:
            for vb in v_blocks:
                if owners[(ub.block_id, vb.block_id)] != key:
                    continue
                for a, u_val in enumerate(ub.values):
                    for b, v_val in enumerate(vb.values):
                        yield (ub.offset + a, vb.offset + b, u_val * v_val)

    job = MapReduceJob(
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        size_of=lambda value: value[1].size,
        reducer_capacity=q,
        strict_capacity=True,
    )
    records = [("u", b) for b in u.blocks] + [("v", b) for b in v.blocks]
    result = job.run(records)
    return OuterProductRun(
        entries=tuple(result.outputs),
        schema=schema,
        metrics=result.metrics,
        shape=(u.dimension, v.dimension),
        plan=planned,
    )
