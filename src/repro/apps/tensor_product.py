"""Distributed outer (tensor) product on the simulated cluster.

The paper's third X2Y example: for block-partitioned vectors ``u`` and
``v``, every (u-block, v-block) pair must meet to produce its tile of the
outer-product matrix ``u v^T``.  Blocks of different sizes are exactly the
different-sized inputs the schema machinery handles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.common import canonical_meeting, x2y_memberships
from repro.core.instance import X2YInstance
from repro.core.schema import X2YSchema
from repro.core.selector import solve_x2y
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.metrics import JobMetrics
from repro.workloads.vectors import BlockVector, VectorBlock


@dataclass(frozen=True)
class OuterProductRun:
    """Result of a distributed outer product.

    Attributes:
        entries: ``(row, col, value)`` triples covering the whole matrix,
            each exactly once.
        schema: the X2Y mapping schema used.
        metrics: simulator metrics.
        shape: ``(len(u), len(v))`` of the full matrix.
    """

    entries: tuple[tuple[int, int, float], ...]
    schema: X2YSchema
    metrics: JobMetrics
    shape: tuple[int, int]

    def dense(self) -> list[list[float]]:
        """Assemble the dense matrix from the emitted entries."""
        rows, cols = self.shape
        matrix = [[0.0] * cols for _ in range(rows)]
        for r, c, v in self.entries:
            matrix[r][c] = v
        return matrix


def distributed_outer_product(
    u: BlockVector,
    v: BlockVector,
    q: int,
    *,
    method: str = "auto",
) -> OuterProductRun:
    """Compute ``u v^T`` with an X2Y mapping schema on the simulator.

    Block sizes define the instance; each reducer computes the tiles of the
    (u-block, v-block) pairs it canonically owns.  Capacity is strict — a
    correct schema cannot overflow.
    """
    instance = X2YInstance(
        [b.size for b in u.blocks], [b.size for b in v.blocks], q
    )
    schema = solve_x2y(instance, method)
    x_members, y_members = x2y_memberships(schema)

    def map_fn(record: tuple[str, VectorBlock]):
        side, block = record
        members = x_members if side == "u" else y_members
        for r in members[block.block_id]:
            yield r, (side, block)

    def reduce_fn(key, values):
        u_blocks = [b for side, b in values if side == "u"]
        v_blocks = [b for side, b in values if side == "v"]
        for ub in u_blocks:
            for vb in v_blocks:
                if canonical_meeting(x_members[ub.block_id], y_members[vb.block_id]) != key:
                    continue
                for a, u_val in enumerate(ub.values):
                    for b, v_val in enumerate(vb.values):
                        yield (ub.offset + a, vb.offset + b, u_val * v_val)

    job = MapReduceJob(
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        size_of=lambda value: value[1].size,
        reducer_capacity=q,
        strict_capacity=True,
    )
    records = [("u", b) for b in u.blocks] + [("v", b) for b in v.blocks]
    result = job.run(records)
    return OuterProductRun(
        entries=tuple(result.outputs),
        schema=schema,
        metrics=result.metrics,
        shape=(u.dimension, v.dimension),
    )
