"""Skew join of X(A, B) and Y(B, C) on the simulated cluster.

The paper's X2Y motivating application.  A conventional repartition join
sends every tuple with join key ``b`` to reducer ``hash(b)``; a heavy
hitter overloads its reducer far beyond the capacity ``q``.  The
schema-based join detects heavy keys and replaces their single reducer
with an X2Y mapping schema over the key's tuples, so every reducer stays
within ``q`` while the join output remains exactly the same.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.common import canonical_meeting, x2y_memberships
from repro.core.instance import X2YInstance
from repro.core.schema import X2YSchema
from repro.core.selector import solve_x2y
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.metrics import JobMetrics
from repro.workloads.relations import Relation, Tuple2, heavy_hitters


@dataclass(frozen=True)
class SkewJoinRun:
    """Result of a distributed join run.

    Attributes:
        triples: the join output ``(a, b, c)`` = (X payload, key, Y payload).
        metrics: simulator metrics.
        heavy_keys: join keys handled by X2Y schemas (empty for the
            baseline).
        schemas: the per-heavy-key schemas, keyed by join key.
    """

    triples: tuple[tuple[int, int, int], ...]
    metrics: JobMetrics
    heavy_keys: tuple[int, ...] = ()
    schemas: dict[int, X2YSchema] | None = None

    def triple_set(self) -> set[tuple[int, int, int]]:
        """The output as a set for comparison against ground truth."""
        return set(self.triples)


def naive_join(x: Relation, y: Relation) -> set[tuple[int, int, int]]:
    """Ground-truth join computed centrally (no capacity concerns)."""
    y_by_key: dict[int, list[Tuple2]] = {}
    for t in y.tuples:
        y_by_key.setdefault(t.key, []).append(t)
    output = set()
    for tx in x.tuples:
        for ty in y_by_key.get(tx.key, []):
            output.add((tx.payload, tx.key, ty.payload))
    return output


def hash_join(x: Relation, y: Relation, q: int) -> SkewJoinRun:
    """Conventional repartition join: one reducer per join key.

    Runs with non-strict capacity so heavy hitters *overflow measurably*
    instead of crashing — E6 reports exactly that overflow.
    """

    def map_fn(record: tuple[str, Tuple2]):
        side, t = record
        yield t.key, (side, t)

    def reduce_fn(key, values):
        x_tuples = [t for side, t in values if side == "x"]
        y_tuples = [t for side, t in values if side == "y"]
        for tx in x_tuples:
            for ty in y_tuples:
                yield (tx.payload, key, ty.payload)

    job = MapReduceJob(
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        size_of=lambda value: value[1].size,
        reducer_capacity=q,
        strict_capacity=False,
    )
    records = [("x", t) for t in x.tuples] + [("y", t) for t in y.tuples]
    result = job.run(records)
    return SkewJoinRun(triples=tuple(result.outputs), metrics=result.metrics)


def schema_skew_join(
    x: Relation,
    y: Relation,
    q: int,
    *,
    method: str = "auto",
) -> SkewJoinRun:
    """Skew-aware join: X2Y mapping schemas for heavy keys, hashing for light.

    A key is *heavy* when its combined tuple load exceeds ``q``.  For each
    heavy key the tuples of X and Y (with their individual sizes —
    different-sized inputs, per the paper) form an :class:`X2YInstance`
    solved by *method*; its reducers get composite ids ``("hh", key, r)``.
    Light keys keep the conventional per-key reducer ``("light", key)``.
    Capacity is enforced strictly: by construction nothing overflows.
    """
    heavy = heavy_hitters(x, y, q)
    heavy_set = set(heavy)

    plans: dict[int, tuple[X2YSchema, list[list[int]], list[list[int]]]] = {}
    x_by_key: dict[int, list[Tuple2]] = {}
    for t in x.tuples:
        x_by_key.setdefault(t.key, []).append(t)
    y_by_key: dict[int, list[Tuple2]] = {}
    for t in y.tuples:
        y_by_key.setdefault(t.key, []).append(t)

    for key in heavy:
        x_tuples = x_by_key.get(key, [])
        y_tuples = y_by_key.get(key, [])
        if not x_tuples or not y_tuples:
            # One-sided heavy keys produce no join output at all; skip them
            # entirely rather than ship dead weight.
            continue
        instance = X2YInstance(
            [t.size for t in x_tuples], [t.size for t in y_tuples], q
        )
        schema = solve_x2y(instance, method)
        plans[key] = (schema, *x2y_memberships(schema))

    x_index = {key: {id(t): i for i, t in enumerate(ts)} for key, ts in x_by_key.items()}
    y_index = {key: {id(t): j for j, t in enumerate(ts)} for key, ts in y_by_key.items()}

    def map_fn(record: tuple[str, Tuple2]):
        side, t = record
        if t.key not in heavy_set:
            yield ("light", t.key), (side, t)
            return
        if t.key not in plans:
            return  # one-sided heavy key: no partner, no output
        _, x_members, y_members = plans[t.key]
        if side == "x":
            for r in x_members[x_index[t.key][id(t)]]:
                yield ("hh", t.key, r), (side, t)
        else:
            for r in y_members[y_index[t.key][id(t)]]:
                yield ("hh", t.key, r), (side, t)

    def reduce_fn(key, values):
        x_tuples = [t for side, t in values if side == "x"]
        y_tuples = [t for side, t in values if side == "y"]
        if key[0] == "light":
            for tx in x_tuples:
                for ty in y_tuples:
                    yield (tx.payload, tx.key, ty.payload)
            return
        _, join_key, r = key
        _, x_members, y_members = plans[join_key]
        for tx in x_tuples:
            i = x_index[join_key][id(tx)]
            for ty in y_tuples:
                j = y_index[join_key][id(ty)]
                if canonical_meeting(x_members[i], y_members[j]) == r:
                    yield (tx.payload, join_key, ty.payload)

    job = MapReduceJob(
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        size_of=lambda value: value[1].size,
        reducer_capacity=q,
        strict_capacity=True,
    )
    records = [("x", t) for t in x.tuples] + [("y", t) for t in y.tuples]
    result = job.run(records)
    return SkewJoinRun(
        triples=tuple(result.outputs),
        metrics=result.metrics,
        heavy_keys=tuple(heavy),
        schemas={key: plan[0] for key, plan in plans.items()},
    )
