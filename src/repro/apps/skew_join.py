"""Skew join of X(A, B) and Y(B, C) on the simulated cluster.

The paper's X2Y motivating application.  A conventional repartition join
sends every tuple with join key ``b`` to reducer ``hash(b)``; a heavy
hitter overloads its reducer far beyond the capacity ``q``.  The
schema-based join detects heavy keys and replaces their single reducer
with an X2Y mapping schema over the key's tuples, so every reducer stays
within ``q`` while the join output remains exactly the same.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Hashable, Iterator

from repro import planner
from repro.core.schema import X2YSchema
from repro.engine.config import ExecutionConfig, resolve_execution
from repro.engine.engine import ExecutionEngine
from repro.engine.metrics import EngineMetrics
from repro.engine.routing import x2y_memberships, x2y_meeting_table
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.metrics import JobMetrics
from repro.obs.profiler import PhaseProfiler
from repro.obs.trace import Tracer
from repro.planner import Environment, JobSpec, Plan
from repro.workloads.relations import Relation, Tuple2, heavy_hitters

#: Wrapped record shipped through the executors:
#: ``(side, position-within-key-group, join key, payload, size)``.
SkewRecord = tuple[str, int, int, int, int]


@dataclass(frozen=True)
class SkewJoinRun:
    """Result of a distributed join run.

    Attributes:
        triples: the join output ``(a, b, c)`` = (X payload, key, Y payload).
        metrics: job metrics (simulator and engine agree).
        heavy_keys: join keys handled by X2Y schemas (empty for the
            baseline).
        schemas: the per-heavy-key schemas, keyed by join key.
        engine: physical execution metrics when ``backend=`` routed the run
            through the engine; ``None`` for simulator runs.
        plans: the planner's per-heavy-key decision records, keyed by
            join key.
    """

    triples: tuple[tuple[int, int, int], ...]
    metrics: JobMetrics
    heavy_keys: tuple[int, ...] = ()
    schemas: dict[int, X2YSchema] | None = None
    engine: EngineMetrics | None = None
    plans: dict[int, Plan] | None = None

    def triple_set(self) -> set[tuple[int, int, int]]:
        """The output as a set for comparison against ground truth."""
        return set(self.triples)


def naive_join(x: Relation, y: Relation) -> set[tuple[int, int, int]]:
    """Ground-truth join computed centrally (no capacity concerns)."""
    y_by_key: dict[int, list[Tuple2]] = {}
    for t in y.tuples:
        y_by_key.setdefault(t.key, []).append(t)
    output = set()
    for tx in x.tuples:
        for ty in y_by_key.get(tx.key, []):
            output.add((tx.payload, tx.key, ty.payload))
    return output


def hash_join(x: Relation, y: Relation, q: int) -> SkewJoinRun:
    """Conventional repartition join: one reducer per join key.

    Runs with non-strict capacity so heavy hitters *overflow measurably*
    instead of crashing — E6 reports exactly that overflow.
    """

    def map_fn(record: tuple[str, Tuple2]):
        side, t = record
        yield t.key, (side, t)

    def reduce_fn(key, values):
        x_tuples = [t for side, t in values if side == "x"]
        y_tuples = [t for side, t in values if side == "y"]
        for tx in x_tuples:
            for ty in y_tuples:
                yield (tx.payload, key, ty.payload)

    job = MapReduceJob(
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        size_of=lambda value: value[1].size,
        reducer_capacity=q,
        strict_capacity=False,
    )
    records = [("x", t) for t in x.tuples] + [("y", t) for t in y.tuples]
    result = job.run(records)
    return SkewJoinRun(triples=tuple(result.outputs), metrics=result.metrics)


#: Per-heavy-key routing plan: the two per-side membership tables (used by
#: the mapper to replicate tuples) plus the precomputed canonical-meeting
#: table ``(x_pos, y_pos) -> reducer`` (used by the reducer to keep the
#: output exactly-once with one dict lookup per candidate pair).
SkewPlan = tuple[
    tuple[tuple[int, ...], ...],
    tuple[tuple[int, ...], ...],
    dict[tuple[int, int], int],
]


def _skew_map(
    record: SkewRecord,
    *,
    members: dict[int, SkewPlan],
    heavy: frozenset[int],
) -> list[tuple[Hashable, SkewRecord]]:
    """Route one wrapped tuple: hash-style for light keys, schema for heavy.

    Module-level (data bound via :func:`functools.partial`) so the
    ``processes`` backend can pickle it.
    """
    side, pos, key, _, _ = record
    if key not in heavy:
        return [(("light", key), record)]
    plan = members.get(key)
    if plan is None:
        return []  # one-sided heavy key: no partner, no output
    side_members = plan[0] if side == "x" else plan[1]
    return [(("hh", key, r), record) for r in side_members[pos]]


def _skew_reduce(
    key,
    values: list[SkewRecord],
    *,
    members: dict[int, SkewPlan],
) -> Iterator[tuple[int, int, int]]:
    """Join the X and Y tuples that met at this reducer.

    Heavy-key reducers emit a pair only from its canonical meeting reducer,
    keeping the distributed output exactly-once despite replication; the
    meeting is a precomputed table lookup, not a per-pair set intersection.
    """
    x_records = [v for v in values if v[0] == "x"]
    y_records = [v for v in values if v[0] == "y"]
    if key[0] == "light":
        for tx in x_records:
            for ty in y_records:
                yield (tx[3], tx[2], ty[3])
        return
    _, join_key, r = key
    owners = members[join_key][2]
    for tx in x_records:
        x_pos, x_payload = tx[1], tx[3]
        for ty in y_records:
            if owners[(x_pos, ty[1])] == r:
                yield (x_payload, join_key, ty[3])


def _skew_record_size(record: SkewRecord) -> int:
    """Assignment size of a wrapped tuple (its declared tuple size)."""
    return record[4]


def heavy_key_spec(
    x_tuples: list[Tuple2],
    y_tuples: list[Tuple2],
    q: int,
    *,
    method: str = "auto",
    objective: str = "min-reducers",
) -> JobSpec:
    """One heavy join key's tuples as a declarative X2Y spec.

    ``method="planned"`` asks for full cost-based method choice per heavy
    key; other values keep the historical semantics.
    """
    return JobSpec.x2y(
        x_tuples,
        y_tuples,
        q,
        method=None if method == "planned" else method,
        objective=objective,
    )


def schema_skew_join(
    x: Relation,
    y: Relation,
    q: int,
    *,
    method: str = "auto",
    objective: str = "min-reducers",
    backend: str | None = None,
    num_workers: int | None = None,
    config: ExecutionConfig | None = None,
    tracer: Tracer | None = None,
    profiler: PhaseProfiler | None = None,
) -> SkewJoinRun:
    """Skew-aware join: X2Y mapping schemas for heavy keys, hashing for light.

    A key is *heavy* when its combined tuple load exceeds ``q``.  For each
    heavy key the tuples of X and Y (with their individual sizes —
    different-sized inputs, per the paper) form an :class:`X2YInstance`
    solved by *method*; its reducers get composite ids ``("hh", key, r)``.
    Light keys keep the conventional per-key reducer ``("light", key)``.
    Capacity is enforced strictly: by construction nothing overflows.

    With neither ``backend=`` nor ``config=`` the job runs on the
    reference simulator; naming a backend (``"serial"``, ``"threads"``,
    ``"processes"``) or passing an
    :class:`~repro.engine.config.ExecutionConfig` (which may set a
    ``memory_budget`` for the out-of-core shuffle) runs the same
    map/reduce functions through :mod:`repro.engine`, producing identical
    triples plus phase timings in ``run.engine``.  ``method="planned"``
    plans every heavy key's schema cost-based under *objective* and —
    when no execution knobs are given — resolves the engine configuration
    from the environment probe.  A *tracer* records one ``plan`` span per
    heavy key plus the engine phase spans on engine-backed runs; a
    *profiler* attributes CPU/RSS and function time to those phases
    (engine path only).
    """
    heavy = heavy_hitters(x, y, q)
    heavy_set = frozenset(heavy)

    x_by_key: dict[int, list[Tuple2]] = {}
    for t in x.tuples:
        x_by_key.setdefault(t.key, []).append(t)
    y_by_key: dict[int, list[Tuple2]] = {}
    for t in y.tuples:
        y_by_key.setdefault(t.key, []).append(t)

    env = Environment.detect()
    schemas: dict[int, X2YSchema] = {}
    plans: dict[int, Plan] = {}
    members: dict[int, SkewPlan] = {}
    for key in heavy:
        x_tuples = x_by_key.get(key, [])
        y_tuples = y_by_key.get(key, [])
        if not x_tuples or not y_tuples:
            # One-sided heavy keys produce no join output at all; skip them
            # entirely rather than ship dead weight.
            continue
        spec = heavy_key_spec(
            x_tuples, y_tuples, q, method=method, objective=objective
        )
        planned = planner.plan(spec, env, tracer=tracer)
        schema = planned.schema()
        plans[key] = planned
        schemas[key] = schema
        x_members, y_members = x2y_memberships(schema)
        members[key] = (
            tuple(tuple(m) for m in x_members),
            tuple(tuple(m) for m in y_members),
            x2y_meeting_table(schema),
        )

    positions_x = {key: {id(t): i for i, t in enumerate(ts)} for key, ts in x_by_key.items()}
    positions_y = {key: {id(t): j for j, t in enumerate(ts)} for key, ts in y_by_key.items()}
    records: list[SkewRecord] = [
        ("x", positions_x[t.key][id(t)], t.key, t.payload, t.size) for t in x.tuples
    ] + [
        ("y", positions_y[t.key][id(t)], t.key, t.payload, t.size) for t in y.tuples
    ]

    map_fn = partial(_skew_map, members=members, heavy=heavy_set)
    reduce_fn = partial(_skew_reduce, members=members)

    execution = resolve_execution(config, backend, num_workers)
    if execution is None and method == "planned":
        # The top-level job is not a single schema (composite light/heavy
        # keys), so resolve the engine configuration from the aggregate
        # shape: one reducer per light key plus every heavy schema's
        # reducers, and the communication the mappers will actually ship.
        light_keys = (set(x_by_key) | set(y_by_key)) - heavy_set
        total_reducers = len(light_keys) + sum(
            s.num_reducers for s in schemas.values()
        )
        light_comm = sum(
            t.size
            for t in (*x.tuples, *y.tuples)
            if t.key not in heavy_set
        )
        execution = planner.resolve_execution_config(
            env,
            num_reducers=max(1, total_reducers),
            communication_cost=light_comm
            + sum(s.communication_cost for s in schemas.values()),
        )
    if execution is not None:
        engine = ExecutionEngine.from_config(
            execution,
            map_fn=map_fn,
            reduce_fn=reduce_fn,
            size_of=_skew_record_size,
            reducer_capacity=q,
            strict_capacity=True,
            tracer=tracer,
            profiler=profiler,
        )
        result = engine.run(records)
        return SkewJoinRun(
            triples=tuple(result.outputs),
            metrics=result.metrics,
            heavy_keys=tuple(heavy),
            schemas=schemas,
            engine=result.engine,
            plans=plans,
        )

    job = MapReduceJob(
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        size_of=_skew_record_size,
        reducer_capacity=q,
        strict_capacity=True,
    )
    result = job.run(records)
    return SkewJoinRun(
        triples=tuple(result.outputs),
        metrics=result.metrics,
        heavy_keys=tuple(heavy),
        schemas=schemas,
        plans=plans,
    )
