"""Similarity join on the simulated MapReduce cluster.

The paper's A2A motivating application: every pair of documents must be
compared (the similarity function admits no LSH shortcut).  The schema
decides which reducers each document travels to; each reducer compares the
pairs it canonically owns and emits those above the threshold.

The app is a thin spec builder over the planner pipeline:
:func:`similarity_spec` states the problem as a
:class:`~repro.planner.spec.JobSpec`, :func:`repro.planner.plan` picks the
schema (the structural fast path by default, full cost-based planning
with ``method="planned"``), and the engine path funnels through
:func:`repro.planner.run`.

Also provides the naive broadcast baseline (all documents to one reducer)
used by E7 to show what the schema machinery buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Iterator

from repro import planner
from repro.core.instance import A2AInstance
from repro.core.schema import A2ASchema
from repro.dataset import Dataset
from repro.engine.config import ExecutionConfig, resolve_execution
from repro.engine.metrics import EngineMetrics
from repro.engine.routing import a2a_meeting_table, a2a_memberships
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.metrics import JobMetrics
from repro.obs.profiler import PhaseProfiler
from repro.obs.trace import Tracer
from repro.planner import JobSpec, Plan
from repro.workloads.documents import Document, jaccard


@dataclass(frozen=True)
class SimilarityJoinRun:
    """Result of a distributed similarity join.

    Attributes:
        pairs: ``(doc_id_a, doc_id_b, similarity)`` for every pair at or
            above the threshold, each emitted exactly once.
        schema: the mapping schema used.
        metrics: job metrics of the run (simulator and engine agree).
        engine: physical execution metrics when the run went through the
            engine (``backend=`` was given); ``None`` for simulator runs.
        plan: the planner's full decision record for this run.
    """

    pairs: tuple[tuple[int, int, float], ...]
    schema: A2ASchema
    metrics: JobMetrics
    engine: EngineMetrics | None = None
    plan: Plan | None = None

    def pair_set(self) -> set[tuple[int, int]]:
        """Just the id pairs, for comparison against ground truth."""
        return {(a, b) for a, b, _ in self.pairs}


def similarity_spec(
    documents: list[Document] | Dataset,
    q: int,
    *,
    method: str = "auto",
    objective: str = "min-reducers",
) -> JobSpec:
    """The similarity join as a declarative A2A spec.

    ``method="planned"`` asks the planner for full cost-based method
    choice under *objective*; any other value keeps the historical
    semantics (``"auto"`` fast path or a pinned method name).
    """
    return JobSpec.a2a(
        documents,
        q,
        method=None if method == "planned" else method,
        objective=objective,
    )


def _similarity_reduce(
    key,
    values: list[tuple[int, Document]],
    *,
    owners: dict[tuple[int, int], int],
    threshold: float,
) -> Iterator[tuple[int, int, float]]:
    """Reducer for the engine path: compare canonically-owned pairs.

    Values arrive as ``(input_index, document)``; *owners* is the schema's
    precomputed meeting table (:func:`a2a_meeting_table`), so ownership is
    one dict lookup per candidate pair.  Module-level (with data bound
    through :func:`functools.partial`) so the ``processes`` backend can
    pickle it.
    """
    by_position = sorted(values, key=lambda item: item[0])
    for a_idx, (i, doc_a) in enumerate(by_position):
        for j, doc_b in by_position[a_idx + 1 :]:
            if owners[(i, j)] != key:
                continue
            similarity = jaccard(doc_a, doc_b)
            if similarity >= threshold:
                yield (doc_a.doc_id, doc_b.doc_id, similarity)


def run_similarity_join(
    documents: list[Document] | Dataset,
    q: int,
    threshold: float,
    *,
    method: str = "auto",
    objective: str = "min-reducers",
    backend: str | None = None,
    num_workers: int | None = None,
    config: ExecutionConfig | None = None,
    tracer: Tracer | None = None,
    profiler: PhaseProfiler | None = None,
) -> SimilarityJoinRun:
    """Run the schema-driven similarity join end to end.

    Documents are indexed by list position (their ``doc_id`` is reported in
    the output but positions drive the schema).  Capacity is enforced
    strictly: a correct schema never overflows, so an exception here means
    a bug, not a workload property.

    With neither ``backend=`` nor ``config=`` the job runs on the
    reference simulator; naming a backend (``"serial"``, ``"threads"``,
    ``"processes"``) or passing an
    :class:`~repro.engine.config.ExecutionConfig` (which may set a
    ``memory_budget`` for the out-of-core shuffle) routes it through
    :mod:`repro.engine` instead, which produces identical pairs and
    additionally reports phase timings in ``run.engine``.
    ``method="planned"`` enables full cost-based planning under
    *objective* and — when no execution knobs are given — runs on the
    plan's resolved :class:`~repro.engine.config.ExecutionConfig`.
    *documents* may be a :class:`~repro.dataset.Dataset` (materialized
    once for schema planning — the sizes must be known before any record
    is routed).  A *tracer* records ``plan``/``score:*`` spans and, on
    the engine path, the ``map``/``shuffle``/``reduce`` phase spans; a
    *profiler* attributes CPU/RSS and function time to those phases
    (engine path only).
    """
    if isinstance(documents, Dataset):
        documents = documents.materialize()
    spec = similarity_spec(documents, q, method=method, objective=objective)
    planned = planner.plan(spec, tracer=tracer)
    schema = planned.schema()
    owners = a2a_meeting_table(schema)

    execution = resolve_execution(config, backend, num_workers)
    if execution is None and method == "planned":
        execution = planned.execution
    if execution is not None:
        reduce_fn = partial(
            _similarity_reduce,
            owners=owners,
            threshold=threshold,
        )
        result = planner.run(
            planned,
            documents,
            reduce_fn,
            config=execution,
            tracer=tracer,
            profiler=profiler,
        )
        return SimilarityJoinRun(
            pairs=tuple(result.outputs),
            schema=schema,
            metrics=result.metrics,
            engine=result.engine,
            plan=planned,
        )

    memberships = a2a_memberships(schema)
    position = {id(doc): i for i, doc in enumerate(documents)}

    def map_fn(doc: Document):
        for r in memberships[position[id(doc)]]:
            yield r, doc

    def reduce_fn(key, docs: list[Document]):
        by_position = sorted(docs, key=lambda d: position[id(d)])
        for a_idx, doc_a in enumerate(by_position):
            i = position[id(doc_a)]
            for doc_b in by_position[a_idx + 1:]:
                j = position[id(doc_b)]
                if owners[(i, j)] != key:
                    continue
                similarity = jaccard(doc_a, doc_b)
                if similarity >= threshold:
                    yield (doc_a.doc_id, doc_b.doc_id, similarity)

    job = MapReduceJob(
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        reducer_capacity=q,
        strict_capacity=True,
    )
    result = job.run(documents)
    return SimilarityJoinRun(
        pairs=tuple(result.outputs),
        schema=schema,
        metrics=result.metrics,
        plan=planned,
    )


def run_broadcast_baseline(
    documents: list[Document],
    q: int,
    threshold: float,
) -> SimilarityJoinRun:
    """Naive baseline: ship every document to a single reducer.

    Runs with non-strict capacity so the (expected) overflow is *measured*
    rather than fatal — E7 reports the violation count and max load.
    The schema recorded is the trivial one-reducer schema.
    """
    instance = A2AInstance([d.size for d in documents], max(q, instance_total(documents)))
    schema = A2ASchema.from_lists(
        instance, [list(range(len(documents)))], algorithm="broadcast"
    )

    def map_fn(doc: Document):
        yield 0, doc

    def reduce_fn(key, docs: list[Document]):
        for a_idx in range(len(docs)):
            for b_idx in range(a_idx + 1, len(docs)):
                similarity = jaccard(docs[a_idx], docs[b_idx])
                if similarity >= threshold:
                    yield (docs[a_idx].doc_id, docs[b_idx].doc_id, similarity)

    job = MapReduceJob(
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        reducer_capacity=q,
        strict_capacity=False,
    )
    result = job.run(documents)
    return SimilarityJoinRun(
        pairs=tuple(result.outputs), schema=schema, metrics=result.metrics
    )


def instance_total(documents: list[Document]) -> int:
    """Total size of a document list (helper for the baseline's capacity)."""
    return sum(d.size for d in documents)
