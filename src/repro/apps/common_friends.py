"""Common-friends computation on the simulated MapReduce cluster.

The paper's social-network A2A example: for every pair of users, compute
the friends they share.  Friend lists are the different-sized inputs; the
mapping schema decides which reducers each user's list travels to, and
each reducer emits results only for the pairs it canonically owns.

Like the other applications, this is a thin spec builder over the
planner: :func:`common_friends_spec` states the problem, the planner
picks the schema, and the engine path funnels through
:func:`repro.planner.run` (the default path stays on the reference
simulator).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Iterator

from repro import planner
from repro.core.schema import A2ASchema
from repro.engine.config import ExecutionConfig, resolve_execution
from repro.engine.metrics import EngineMetrics
from repro.engine.routing import a2a_meeting_table, a2a_memberships
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.metrics import JobMetrics
from repro.planner import JobSpec, Plan
from repro.workloads.social import User, common_friends


@dataclass(frozen=True)
class CommonFriendsRun:
    """Result of a distributed common-friends computation.

    Attributes:
        pairs: ``(user_a, user_b, shared)`` for every user pair, exactly
            once, including pairs with no shared friends (the consumer
            decides what to drop — mirroring the problem statement where
            *every* pair corresponds to one output).
        schema: the mapping schema used.
        metrics: simulator metrics (engine runs report the identical
            analytical metrics).
        engine: physical execution metrics when the run went through the
            engine; ``None`` for simulator runs.
        plan: the planner's full decision record for this run.
    """

    pairs: tuple[tuple[int, int, frozenset[int]], ...]
    schema: A2ASchema
    metrics: JobMetrics
    engine: EngineMetrics | None = None
    plan: Plan | None = None

    def as_dict(self) -> dict[tuple[int, int], frozenset[int]]:
        """The output keyed by user-id pair, for ground-truth comparison."""
        return {(a, b): shared for a, b, shared in self.pairs}


def common_friends_spec(
    users: list[User],
    q: int,
    *,
    method: str = "auto",
    objective: str = "min-reducers",
) -> JobSpec:
    """The common-friends problem as a declarative A2A spec."""
    return JobSpec.a2a(
        users,
        q,
        method=None if method == "planned" else method,
        objective=objective,
    )


def _common_friends_reduce(
    key,
    values: list[tuple[int, User]],
    *,
    owners: dict[tuple[int, int], int],
) -> Iterator[tuple[int, int, frozenset[int]]]:
    """Engine-path reducer: emit canonically-owned pairs' shared friends.

    Values arrive as ``(input_index, user)``; module-level (data bound via
    :func:`functools.partial`) so the ``processes`` backend can pickle it.
    """
    by_position = sorted(values, key=lambda item: item[0])
    for a_pos, (i, user_a) in enumerate(by_position):
        for j, user_b in by_position[a_pos + 1 :]:
            if owners[(i, j)] != key:
                continue
            yield (user_a.user_id, user_b.user_id, common_friends(user_a, user_b))


def run_common_friends(
    users: list[User],
    q: int,
    *,
    method: str = "auto",
    objective: str = "min-reducers",
    backend: str | None = None,
    num_workers: int | None = None,
    config: ExecutionConfig | None = None,
) -> CommonFriendsRun:
    """Run the schema-driven common-friends job end to end.

    Users are indexed by list position; capacity is enforced strictly
    (a correct schema cannot overflow).  With neither ``backend=`` nor
    ``config=`` the job runs on the reference simulator; naming a backend
    or passing an :class:`~repro.engine.config.ExecutionConfig` routes it
    through the engine with identical outputs.  ``method="planned"``
    enables full cost-based planning under *objective* and defaults to
    the plan's resolved execution configuration.
    """
    spec = common_friends_spec(users, q, method=method, objective=objective)
    planned = planner.plan(spec)
    schema = planned.schema()
    owners = a2a_meeting_table(schema)

    execution = resolve_execution(config, backend, num_workers)
    if execution is None and method == "planned":
        execution = planned.execution
    if execution is not None:
        result = planner.run(
            planned,
            users,
            partial(_common_friends_reduce, owners=owners),
            config=execution,
        )
        return CommonFriendsRun(
            pairs=tuple(result.outputs),
            schema=schema,
            metrics=result.metrics,
            engine=result.engine,
            plan=planned,
        )

    memberships = a2a_memberships(schema)
    position = {id(user): i for i, user in enumerate(users)}

    def map_fn(user: User):
        for r in memberships[position[id(user)]]:
            yield r, user

    def reduce_fn(key, members: list[User]):
        ordered = sorted(members, key=lambda u: position[id(u)])
        for a_pos, user_a in enumerate(ordered):
            i = position[id(user_a)]
            for user_b in ordered[a_pos + 1:]:
                j = position[id(user_b)]
                if owners[(i, j)] != key:
                    continue
                yield (user_a.user_id, user_b.user_id, common_friends(user_a, user_b))

    job = MapReduceJob(
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        reducer_capacity=q,
        strict_capacity=True,
    )
    result = job.run(users)
    return CommonFriendsRun(
        pairs=tuple(result.outputs),
        schema=schema,
        metrics=result.metrics,
        plan=planned,
    )
