"""Common-friends computation on the simulated MapReduce cluster.

The paper's social-network A2A example: for every pair of users, compute
the friends they share.  Friend lists are the different-sized inputs; the
mapping schema decides which reducers each user's list travels to, and
each reducer emits results only for the pairs it canonically owns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.common import a2a_memberships, canonical_meeting
from repro.core.instance import A2AInstance
from repro.core.schema import A2ASchema
from repro.core.selector import solve_a2a
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.metrics import JobMetrics
from repro.workloads.social import User, common_friends


@dataclass(frozen=True)
class CommonFriendsRun:
    """Result of a distributed common-friends computation.

    Attributes:
        pairs: ``(user_a, user_b, shared)`` for every user pair, exactly
            once, including pairs with no shared friends (the consumer
            decides what to drop — mirroring the problem statement where
            *every* pair corresponds to one output).
        schema: the mapping schema used.
        metrics: simulator metrics.
    """

    pairs: tuple[tuple[int, int, frozenset[int]], ...]
    schema: A2ASchema
    metrics: JobMetrics

    def as_dict(self) -> dict[tuple[int, int], frozenset[int]]:
        """The output keyed by user-id pair, for ground-truth comparison."""
        return {(a, b): shared for a, b, shared in self.pairs}


def run_common_friends(
    users: list[User],
    q: int,
    *,
    method: str = "auto",
) -> CommonFriendsRun:
    """Run the schema-driven common-friends job end to end.

    Users are indexed by list position; capacity is enforced strictly
    (a correct schema cannot overflow).
    """
    instance = A2AInstance([u.size for u in users], q)
    schema = solve_a2a(instance, method)
    memberships = a2a_memberships(schema)
    position = {id(user): i for i, user in enumerate(users)}

    def map_fn(user: User):
        for r in memberships[position[id(user)]]:
            yield r, user

    def reduce_fn(key, members: list[User]):
        ordered = sorted(members, key=lambda u: position[id(u)])
        for a_pos, user_a in enumerate(ordered):
            i = position[id(user_a)]
            for user_b in ordered[a_pos + 1:]:
                j = position[id(user_b)]
                if canonical_meeting(memberships[i], memberships[j]) != key:
                    continue
                yield (user_a.user_id, user_b.user_id, common_friends(user_a, user_b))

    job = MapReduceJob(
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        reducer_capacity=q,
        strict_capacity=True,
    )
    result = job.run(users)
    return CommonFriendsRun(
        pairs=tuple(result.outputs), schema=schema, metrics=result.metrics
    )
