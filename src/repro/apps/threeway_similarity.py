"""Three-way similarity on the simulated cluster (multiway extension).

Exercises the r > 2 generalization end to end: for every *triple* of
documents, compute the Jaccard similarity of the triple's token sets
(|A ∩ B ∩ C| / |A ∪ B ∪ C|) and report the triples above a threshold.
The mapping schema must bring every triple together at some reducer —
the :mod:`repro.core.multiway` bin-combining scheme provides exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro import planner
from repro.core.multiway import MultiwaySchema
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.metrics import JobMetrics
from repro.planner import JobSpec, Plan
from repro.workloads.documents import Document


def triple_jaccard(a: Document, b: Document, c: Document) -> float:
    """Jaccard similarity of three token sets: |∩| / |∪|."""
    sets = [set(a.tokens), set(b.tokens), set(c.tokens)]
    union = sets[0] | sets[1] | sets[2]
    if not union:
        return 1.0
    return len(sets[0] & sets[1] & sets[2]) / len(union)


def all_triples_above(documents: list[Document], threshold: float) -> set[tuple[int, int, int]]:
    """Ground truth: brute-force over all C(m, 3) triples."""
    results = set()
    for i, j, k in combinations(range(len(documents)), 3):
        if triple_jaccard(documents[i], documents[j], documents[k]) >= threshold:
            results.add(
                (documents[i].doc_id, documents[j].doc_id, documents[k].doc_id)
            )
    return results


@dataclass(frozen=True)
class ThreeWayRun:
    """Result of a distributed three-way similarity computation."""

    triples: tuple[tuple[int, int, int, float], ...]
    schema: MultiwaySchema
    metrics: JobMetrics
    plan: Plan | None = None

    def triple_set(self) -> set[tuple[int, int, int]]:
        """Just the id triples, for ground-truth comparison."""
        return {(a, b, c) for a, b, c, _ in self.triples}


def threeway_spec(
    documents: list[Document],
    q: int,
    *,
    objective: str = "min-reducers",
) -> JobSpec:
    """Three-way similarity as a declarative multiway (r=3) spec."""
    return JobSpec.multiway(documents, q, 3, objective=objective)


def run_threeway_similarity(
    documents: list[Document],
    q: int,
    threshold: float,
) -> ThreeWayRun:
    """Run the schema-driven three-way similarity job end to end.

    Each reducer evaluates only the triples whose *canonical* reducer it is
    (the smallest reducer index containing all three documents), so every
    triple is emitted exactly once despite replication.  Multiway schemas
    run on the reference simulator (the engine's schema router executes
    pairwise schemas); the planner still records the plan.
    """
    planned = planner.plan(threeway_spec(documents, q))
    schema = planned.schema()
    memberships: list[list[int]] = [[] for _ in documents]
    for r, members in enumerate(schema.reducers):
        for i in members:
            memberships[i].append(r)
    position = {id(doc): i for i, doc in enumerate(documents)}

    def canonical(i: int, j: int, k: int) -> int:
        common = set(memberships[i]) & set(memberships[j]) & set(memberships[k])
        if not common:
            raise ValueError("triple shares no reducer; schema invalid")
        return min(common)

    def map_fn(doc: Document):
        for r in memberships[position[id(doc)]]:
            yield r, doc

    def reduce_fn(key, docs: list[Document]):
        ordered = sorted(docs, key=lambda d: position[id(d)])
        for a_pos in range(len(ordered)):
            i = position[id(ordered[a_pos])]
            for b_pos in range(a_pos + 1, len(ordered)):
                j = position[id(ordered[b_pos])]
                for c_pos in range(b_pos + 1, len(ordered)):
                    k = position[id(ordered[c_pos])]
                    if canonical(i, j, k) != key:
                        continue
                    similarity = triple_jaccard(
                        ordered[a_pos], ordered[b_pos], ordered[c_pos]
                    )
                    if similarity >= threshold:
                        yield (
                            ordered[a_pos].doc_id,
                            ordered[b_pos].doc_id,
                            ordered[c_pos].doc_id,
                            similarity,
                        )

    job = MapReduceJob(
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        reducer_capacity=q,
        strict_capacity=True,
    )
    result = job.run(documents)
    return ThreeWayRun(
        triples=tuple(result.outputs),
        schema=schema,
        metrics=result.metrics,
        plan=planned,
    )
