"""repro: reproduction of "Assignment of Different-Sized Inputs in MapReduce".

Afrati, Dolev, Korach, Sharma, Ullman (EDBT 2015 / DISC 2014 BA /
arXiv:1501.06758).  The library implements the paper's two mapping-schema
problems (A2A and X2Y), the assignment algorithms and lower bounds, a
capacity-checked MapReduce simulator, workload generators, and the three
motivating applications (similarity join, skew join, tensor product).

Quickstart::

    from repro import A2AInstance, solve_a2a

    instance = A2AInstance(sizes=[3, 5, 2, 7, 4], q=12)
    schema = solve_a2a(instance)          # picks an algorithm automatically
    schema.require_valid()                # capacity + all-pairs coverage
    print(schema.num_reducers, schema.communication_cost)
"""

from repro.core import (
    A2A_METHODS,
    A2AInstance,
    A2ASchema,
    CostSummary,
    VerificationReport,
    X2Y_METHODS,
    X2YInstance,
    X2YSchema,
    parallelism_degree,
    skew,
    solve_a2a,
    solve_x2y,
    summarize,
)
from repro.dataset import Dataset, as_dataset
from repro.engine import (
    BACKENDS,
    EngineMetrics,
    EngineResult,
    ExecutionConfig,
    ExecutionEngine,
    execute_schema,
)
from repro.exceptions import (
    AdmissionError,
    CapacityExceededError,
    CodecError,
    InfeasibleInstanceError,
    InvalidInstanceError,
    InvalidSchemaError,
    JobCancelledError,
    ReproError,
    ResultEvictedError,
    SolverLimitError,
    SpillError,
)
from repro.mapreduce import MapReduceJob, SimulatedCluster, schedule_loads
from repro.planner import Environment, JobSpec, Plan
from repro.service import JobHandle, JobResult, JobService

__version__ = "1.0.0"

__all__ = [
    "A2AInstance",
    "X2YInstance",
    "A2ASchema",
    "X2YSchema",
    "solve_a2a",
    "solve_x2y",
    "A2A_METHODS",
    "X2Y_METHODS",
    "summarize",
    "CostSummary",
    "VerificationReport",
    "parallelism_degree",
    "skew",
    "MapReduceJob",
    "SimulatedCluster",
    "schedule_loads",
    "ExecutionEngine",
    "ExecutionConfig",
    "EngineResult",
    "EngineMetrics",
    "execute_schema",
    "BACKENDS",
    "Dataset",
    "as_dataset",
    "JobSpec",
    "Plan",
    "Environment",
    "JobService",
    "JobHandle",
    "JobResult",
    "ReproError",
    "InvalidInstanceError",
    "InfeasibleInstanceError",
    "InvalidSchemaError",
    "CapacityExceededError",
    "AdmissionError",
    "JobCancelledError",
    "ResultEvictedError",
    "SolverLimitError",
    "SpillError",
    "CodecError",
    "__version__",
]
