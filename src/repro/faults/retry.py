"""Retry policy: attempts, deterministic backoff, exception classification.

The policy answers three questions the resilient dispatch loop asks:

* *Is this failure worth retrying?* — :meth:`RetryPolicy.is_retryable`.
  The default classification is semantics-preserving: only failures whose
  rerun could plausibly succeed (injected faults, lost workers, per-task
  timeouts, OS/connection errors) are retried.  Model and user errors —
  invalid instances, capacity overflows in strict mode, a ``ValueError``
  raised by a user's reduce function — propagate unchanged on the first
  attempt, so a run with the fault plane enabled raises exactly the same
  exceptions a fault-free run would.
* *How many attempts does a task get?* — :attr:`RetryPolicy.max_attempts`
  (total attempts, not retries: ``max_attempts=1`` disables retrying).
* *How long to wait before the next attempt?* —
  :meth:`RetryPolicy.delay_seconds`: exponential backoff with a cap and
  deterministic jitter.  Like the fault injector, jitter is a hash of
  ``(seed, key, attempt)``, not a random draw, so backoff schedules are
  reproducible and identical across backends.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from hashlib import blake2b

from repro.exceptions import (
    DeadlineExceededError,
    InjectedFaultError,
    InvalidInstanceError,
    TaskTimeoutError,
    WorkerLostError,
)

#: Exception types whose rerun can plausibly succeed.  ``TimeoutError``
#: and ``ConnectionError`` are ``OSError`` subclasses, listed explicitly
#: for documentation value; ``OSError`` itself covers transient I/O.
DEFAULT_RETRYABLE: tuple[type[BaseException], ...] = (
    InjectedFaultError,
    WorkerLostError,
    TaskTimeoutError,
    TimeoutError,
    ConnectionError,
    OSError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Validated retry configuration (picklable value object).

    Attributes:
        max_attempts: total attempts per task including the first
            (``1`` = never retry).
        backoff_base: delay before the first retry, in seconds.
        backoff_multiplier: growth factor per subsequent retry.
        backoff_max: upper bound on any single delay.
        jitter: fractional jitter added deterministically on top of the
            exponential delay (``0.1`` = up to +10%).
        seed: jitter seed; keyed together with the retry coordinates.
        retryable: exception types eligible for retry; failures outside
            this tuple propagate on the first attempt.
    """

    max_attempts: int = 4
    backoff_base: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    retryable: tuple[type[BaseException], ...] = field(
        default=DEFAULT_RETRYABLE
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise InvalidInstanceError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        for name in ("backoff_base", "backoff_multiplier", "backoff_max",
                     "jitter"):
            value = getattr(self, name)
            if value < 0:
                raise InvalidInstanceError(
                    f"{name} must be >= 0, got {value}"
                )

    def is_retryable(self, exc: BaseException) -> bool:
        """Whether a failed attempt with this exception may be retried.

        :class:`~repro.exceptions.DeadlineExceededError` is never
        retryable, whatever :attr:`retryable` says: it inherits
        ``TimeoutError`` for generic timeout handling, but a blown
        per-job deadline cannot be cured by trying again.
        """
        if isinstance(exc, DeadlineExceededError):
            return False
        return isinstance(exc, self.retryable)

    def delay_seconds(self, attempt: int, key: object = "") -> float:
        """Backoff before the retry that follows failed attempt *attempt*.

        Exponential in the attempt number, capped at :attr:`backoff_max`,
        with deterministic jitter derived from ``(seed, key, attempt)`` —
        *key* is typically ``(phase, task index)`` so concurrent retries
        don't thunder in lockstep, yet every schedule is reproducible.
        """
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_multiplier ** (attempt - 1),
        )
        if self.jitter <= 0 or base <= 0:
            return base
        digest = blake2b(
            f"{self.seed}|{key!r}|{attempt}".encode("utf-8"), digest_size=8
        ).digest()
        fraction = int.from_bytes(digest, "big") / 2**64
        return base * (1.0 + self.jitter * fraction)

    @classmethod
    def none(cls) -> "RetryPolicy":
        """A policy that never retries (single attempt, no backoff)."""
        return cls(max_attempts=1, backoff_base=0.0, jitter=0.0)


def check_deadline(deadline_at: float | None, *, what: str = "run") -> None:
    """Raise :class:`DeadlineExceededError` once the deadline has passed.

    *deadline_at* is an absolute :func:`time.monotonic` instant (``None``
    disables the check).  Called between tasks and between retry rounds —
    a deadline bounds dispatch, it does not preempt a running task body.
    """
    if deadline_at is not None and time.monotonic() >= deadline_at:
        raise DeadlineExceededError(f"{what} exceeded its deadline")


def remaining_time(deadline_at: float | None) -> float | None:
    """Seconds until *deadline_at* (``None`` when no deadline is set).

    Clamped at zero so callers can pass it straight to waits.
    """
    if deadline_at is None:
        return None
    return max(0.0, deadline_at - time.monotonic())
