"""Deterministic, seedable fault injection for engine tasks.

Chaos testing is only useful when it is reproducible: a failure found at
seed 7 must be re-runnable at seed 7, on any backend, until it is fixed.
So the injector draws no random numbers from a shared stream — every
decision is a pure function of ``(seed, kind, phase, task index,
attempt)``, hashed through BLAKE2 into a uniform ``[0, 1)`` roll that is
compared against the configured rate.  Consequences:

* Decisions are independent of scheduling order, worker count, and
  backend — the same task attempt fails the same way everywhere.
* Retries see fresh rolls (the attempt number is part of the key), so an
  injected crash is transient by construction: with rate ``p`` the chance
  a task fails ``k`` attempts in a row is ``p^k``, and for any fixed seed
  the outcome is knowable in advance.
* The injector is a plain picklable value object; process-pool workers
  evaluate the same decisions the parent would.

Four fault kinds model the classic MapReduce failure modes:

``crash``
    the task attempt raises :class:`~repro.exceptions.InjectedFaultError`
    (a task failure whose rerun succeeds).
``kill``
    the worker *process* dies mid-task (``os._exit``), breaking the
    process pool — this is the worker-death path that forces pool rebuild
    and in-flight task replay.  On backends without killable workers
    (serial, threads) it degrades to a crash, so outcomes stay identical
    across backends.
``delay``
    the attempt sleeps (a straggler) before running; pairs with per-task
    timeouts to exercise the abandon-and-retry path.
``transient``
    the attempt raises :class:`~repro.exceptions.TransientFaultError`, a
    :class:`ConnectionError` subclass, exercising the retry policy's
    generic transient classification.

The spec grammar (CLI ``--inject-faults``) is a comma list of
``kind=rate`` entries plus an optional ``seed=N``; ``delay`` accepts
``delay=rate:seconds``.  Example::

    crash=0.2,kill=0.05,delay=0.1:0.02,transient=0.1,seed=7
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from hashlib import blake2b

from repro.exceptions import (
    InjectedFaultError,
    InvalidInstanceError,
    TransientFaultError,
)

#: Exit code used by injected worker kills; distinctive in core dumps/logs.
KILL_EXIT_CODE = 113

#: Recognized fault kinds, in the order they are evaluated per attempt
#: (delay first — a straggler can still crash afterwards).
FAULT_KINDS = ("delay", "kill", "crash", "transient")

#: Default straggler sleep when ``delay=rate`` omits the seconds part.
DEFAULT_DELAY_SECONDS = 0.05


def _check_rate(name: str, rate: float) -> float:
    if not 0.0 <= rate <= 1.0:
        raise InvalidInstanceError(
            f"fault rate {name} must be in [0, 1], got {rate}"
        )
    return float(rate)


@dataclass(frozen=True)
class FaultSpec:
    """Parsed, validated fault-injection configuration.

    A value object: hashable, picklable, round-trippable through
    :meth:`parse` / :meth:`format`.  All rates default to 0, so
    ``FaultSpec()`` is a valid no-op spec (``enabled`` is False).
    """

    crash: float = 0.0
    kill: float = 0.0
    delay: float = 0.0
    transient: float = 0.0
    delay_seconds: float = DEFAULT_DELAY_SECONDS
    seed: int = 0

    def __post_init__(self) -> None:
        for kind in ("crash", "kill", "delay", "transient"):
            _check_rate(kind, getattr(self, kind))
        if self.delay_seconds < 0:
            raise InvalidInstanceError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}"
            )

    @property
    def enabled(self) -> bool:
        """Whether any fault kind has a nonzero rate."""
        return any(
            getattr(self, kind) > 0.0
            for kind in ("crash", "kill", "delay", "transient")
        )

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the CLI spec grammar (see module docstring).

        Raises :class:`~repro.exceptions.InvalidInstanceError` on unknown
        keys, malformed numbers, or out-of-range rates — the CLI surfaces
        the message verbatim.
        """
        fields: dict[str, float | int] = {}
        for entry in text.split(","):
            entry = entry.strip()
            if not entry:
                continue
            key, sep, value = entry.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep or not value:
                raise InvalidInstanceError(
                    f"malformed fault spec entry {entry!r}; expected "
                    "kind=rate (e.g. crash=0.2)"
                )
            try:
                if key == "seed":
                    fields["seed"] = int(value)
                elif key == "delay":
                    rate, sep, seconds = value.partition(":")
                    fields["delay"] = float(rate)
                    if sep:
                        fields["delay_seconds"] = float(seconds)
                elif key in ("crash", "kill", "transient"):
                    fields[key] = float(value)
                else:
                    raise InvalidInstanceError(
                        f"unknown fault kind {key!r}; choose from "
                        f"{sorted(FAULT_KINDS)} (plus seed=N)"
                    )
            except ValueError as exc:
                raise InvalidInstanceError(
                    f"malformed fault spec entry {entry!r}: {exc}"
                ) from exc
        return cls(**fields)

    def format(self) -> str:
        """Canonical spec string (parses back to an equal spec)."""
        parts = []
        for kind in ("crash", "kill", "transient"):
            rate = getattr(self, kind)
            if rate > 0:
                parts.append(f"{kind}={rate:g}")
        if self.delay > 0:
            parts.append(f"delay={self.delay:g}:{self.delay_seconds:g}")
        parts.append(f"seed={self.seed}")
        return ",".join(parts)

    def scaled(self, factor: float) -> "FaultSpec":
        """A copy with every rate multiplied by *factor* (capped at 1).

        The E23 bench sweeps one spec shape across failure rates; scaling
        keeps the kind mix constant while the overall rate varies.
        """
        return FaultSpec(
            crash=min(1.0, self.crash * factor),
            kill=min(1.0, self.kill * factor),
            delay=min(1.0, self.delay * factor),
            transient=min(1.0, self.transient * factor),
            delay_seconds=self.delay_seconds,
            seed=self.seed,
        )


def as_fault_spec(spec: "FaultSpec | str | None") -> FaultSpec | None:
    """Normalize a config field: parse strings, pass specs, keep ``None``."""
    if spec is None or isinstance(spec, FaultSpec):
        return spec
    return FaultSpec.parse(spec)


class FaultInjector:
    """Evaluates a :class:`FaultSpec` deterministically per task attempt.

    Picklable (plain attributes only); workers and parent agree on every
    decision because decisions depend only on the spec and the attempt
    coordinates, never on call order.
    """

    def __init__(self, spec: FaultSpec):
        self.spec = spec

    def roll(self, kind: str, phase: str, index: int, attempt: int) -> float:
        """The uniform ``[0, 1)`` draw for one decision coordinate."""
        key = f"{self.spec.seed}|{kind}|{phase}|{index}|{attempt}"
        digest = blake2b(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2**64

    def decides(self, kind: str, phase: str, index: int, attempt: int) -> bool:
        """Whether *kind* fires for this ``(phase, task, attempt)``."""
        rate = getattr(self.spec, kind)
        return rate > 0.0 and self.roll(kind, phase, index, attempt) < rate

    def maybe_inject(
        self, phase: str, index: int, attempt: int, *, allow_kill: bool = False
    ) -> None:
        """Apply the spec's faults to one task attempt (worker side).

        Evaluation order is :data:`FAULT_KINDS`: a straggler delay happens
        first (the attempt may still fail afterwards), then at most one
        failure fires — kill beats crash beats transient.  ``allow_kill``
        is True only on backends whose workers are disposable OS processes;
        elsewhere a kill decision degrades to a crash with the same
        decision coordinates, keeping cross-backend outcomes identical.
        """
        if self.decides("delay", phase, index, attempt):
            time.sleep(self.spec.delay_seconds)
        if self.decides("kill", phase, index, attempt):
            if allow_kill:
                os._exit(KILL_EXIT_CODE)
            raise InjectedFaultError(
                f"injected worker kill (degraded to task crash) in {phase} "
                f"task {index} attempt {attempt}",
                kind="kill",
                phase=phase,
                task_index=index,
                attempt=attempt,
            )
        if self.decides("crash", phase, index, attempt):
            raise InjectedFaultError(
                f"injected task crash in {phase} task {index} "
                f"attempt {attempt}",
                kind="crash",
                phase=phase,
                task_index=index,
                attempt=attempt,
            )
        if self.decides("transient", phase, index, attempt):
            raise TransientFaultError(
                f"injected transient fault in {phase} task {index} "
                f"attempt {attempt}",
                kind="transient",
                phase=phase,
                task_index=index,
                attempt=attempt,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultInjector({self.spec.format()!r})"
