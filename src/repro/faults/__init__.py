"""Fault plane: deterministic fault injection and retry policies.

The paper's mapping schemas make MapReduce fault tolerance cheap — every
reduce task's input set is known up front, so a lost task is recomputed
in isolation from its schema-assigned partitions instead of rerunning
the job.  This package supplies the two ingredients the engine and
service layers need to exploit that:

* :class:`FaultSpec` / :class:`FaultInjector` — seedable, deterministic
  injection of task crashes, worker kills, straggler delays, and
  transient exceptions, for chaos tests and the E23 bench.  Decisions
  are pure functions of ``(seed, phase, task, attempt)``, so a failure
  scenario reproduces bit-for-bit on any backend.
* :class:`RetryPolicy` — bounded attempts with deterministic exponential
  backoff and a semantics-preserving retryable-exception classification
  (model/user errors propagate unchanged; only failures whose rerun can
  succeed are retried).

Wiring lives elsewhere: :class:`~repro.engine.config.ExecutionConfig`
carries both objects into the engine, backends implement the resilient
dispatch loop (:meth:`~repro.engine.backends.Backend.run_tasks_resilient`),
and the CLI exposes ``--inject-faults`` on ``repro run`` and ``bench``.
"""

from __future__ import annotations

from repro.faults.injector import (
    DEFAULT_DELAY_SECONDS,
    FAULT_KINDS,
    KILL_EXIT_CODE,
    FaultInjector,
    FaultSpec,
    as_fault_spec,
)
from repro.faults.retry import (
    DEFAULT_RETRYABLE,
    RetryPolicy,
    check_deadline,
    remaining_time,
)

__all__ = [
    "DEFAULT_DELAY_SECONDS",
    "DEFAULT_RETRYABLE",
    "FAULT_KINDS",
    "KILL_EXIT_CODE",
    "FaultInjector",
    "FaultSpec",
    "RetryPolicy",
    "as_fault_spec",
    "check_deadline",
    "remaining_time",
]
