"""Typed block codecs for the batched data plane.

The engine's shuffle and spill paths used to move ``(key, values)`` pairs
as pickled Python structures — one pickle per item on the spill path, one
pickled dict-of-lists per bucket on the shuffle path.  For the small keys
the paper's workloads produce (reducer indices, join keys), per-object
pickling dominates the run.  This module replaces that with **blocks**: a
whole bucket (or spill-run slice) of grouped pairs encoded as one
contiguous buffer with a typed key section and a single batch-pickled
value section.

Wire format (all integers little-endian)::

    offset  size  field
    0       1     magic (0xB5)
    1       1     codec id: b"i" | b"s" | b"b" | b"p"
    2       4     item count  (uint32)
    6       4     key-section length in bytes  (uint32)
    10      4     value-section length in bytes  (uint32)
    14      ...   key section
    ...     ...   value section

Key sections by codec id:

* ``b"i"`` — ``item count`` int64s (``struct "<{n}q"``); chosen when every
  key is exactly ``int`` (``bool`` is excluded — it must round-trip as
  ``bool``) and fits in a signed 64-bit word.
* ``b"s"`` — ``item count`` uint32 lengths followed by the concatenated
  UTF-8 (``surrogatepass``) encodings; chosen when every key is exactly
  ``str``.  ``surrogatepass`` makes the encoding a bijection on ``str``,
  so lone surrogates round-trip too.
* ``b"b"`` — same layout with raw bytes; chosen when every key is exactly
  ``bytes``.
* ``b"p"`` — one pickle of the key list; the universal fallback (tuples,
  mixed types, big ints, subclasses).

The value section is always one pickle of the list of per-key value
lists — values are arbitrary user objects, but batching them into a
single pickle amortizes the per-object framing that dominated the old
path.

Codec selection is a **probe, not a per-record branch**:
:func:`select_codec` inspects a group dict's key types once (per map task
/ per spill run) and every block of that phase is encoded with the
selected codec.  Encoders still *verify* the probe per block — a later
bucket may contain a key the probed bucket did not — and silently fall
back to ``b"p"`` rather than mis-encode (e.g. ``struct`` would happily
pack ``True`` as ``1``, which must not come back as ``int``).  Blocks are
self-describing, so mixed-codec streams decode fine.

Decoding accepts ``bytes`` or any ``memoryview``-compatible buffer; the
shared-memory transport hands in a view of the segment and the typed key
decoders plus ``pickle.loads`` read it in place (the decoded *objects*
are always fresh copies, so the segment can be unmapped immediately
after).  Every decode failure — truncation, bad magic, length
inconsistencies, undecodable key or value sections — raises
:class:`~repro.exceptions.CodecError`, never a bare ``struct.error`` or
``EOFError``.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Hashable, Iterable

from repro.exceptions import CodecError

#: First byte of every block; a cheap guard against decoding garbage.
BLOCK_MAGIC = 0xB5

#: Codec ids (the second byte of the block header).
CODEC_INT = b"i"
CODEC_STR = b"s"
CODEC_BYTES = b"b"
CODEC_PICKLE = b"p"

_CODECS = frozenset((CODEC_INT, CODEC_STR, CODEC_BYTES, CODEC_PICKLE))

#: magic, codec id, item count, key-section length, value-section length.
_HEADER = struct.Struct("<BcIII")

#: Signed 64-bit bounds for the int codec.
_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


class _Fallback(Exception):
    """Internal: the probed typed codec cannot encode this block's keys."""


def select_codec(keys: Iterable[Hashable]) -> bytes:
    """Pick a block codec from a key probe (once per task, never per pair).

    Returns the typed codec when every probed key is exactly ``int``,
    ``str``, or ``bytes`` (subclasses — including ``bool`` — disqualify,
    because a typed round-trip must preserve the exact type), and the
    pickle fallback otherwise.  An empty probe gets the fallback: there
    is nothing to type.
    """
    kinds = {type(key) for key in keys}
    if kinds == {int}:
        return CODEC_INT
    if kinds == {str}:
        return CODEC_STR
    if kinds == {bytes}:
        return CODEC_BYTES
    return CODEC_PICKLE


def _encode_keys(keys: list[Hashable], codec: bytes) -> bytes:
    """Encode the key section, or raise :class:`_Fallback` when the probed
    typed codec does not fit this block's actual keys."""
    if codec == CODEC_INT:
        for key in keys:
            if type(key) is not int or not _INT64_MIN <= key <= _INT64_MAX:
                raise _Fallback
        return struct.pack(f"<{len(keys)}q", *keys)
    if codec == CODEC_STR:
        for key in keys:
            if type(key) is not str:
                raise _Fallback
        encoded = [key.encode("utf-8", "surrogatepass") for key in keys]
        lengths = struct.pack(f"<{len(encoded)}I", *map(len, encoded))
        return lengths + b"".join(encoded)
    if codec == CODEC_BYTES:
        for key in keys:
            if type(key) is not bytes:
                raise _Fallback
        lengths = struct.pack(f"<{len(keys)}I", *map(len, keys))
        return lengths + b"".join(keys)
    return pickle.dumps(keys, protocol=pickle.HIGHEST_PROTOCOL)


def encode_items(
    items: list[tuple[Hashable, list[Any]]], codec: bytes = CODEC_PICKLE
) -> bytes:
    """Encode grouped ``(key, values)`` items as one self-describing block.

    *codec* is the phase's probed codec; when this particular block's keys
    do not fit it (the probe saw a different bucket), the block silently
    falls back to the pickle codec — blocks are self-describing, so the
    decoder does not care.  Item order is preserved exactly; the shuffle
    relies on that to keep insertion-order reduces byte-identical.
    """
    if codec not in _CODECS:
        raise CodecError(f"unknown block codec {codec!r}")
    keys = [key for key, _ in items]
    try:
        key_blob = _encode_keys(keys, codec)
    except _Fallback:
        codec = CODEC_PICKLE
        key_blob = pickle.dumps(keys, protocol=pickle.HIGHEST_PROTOCOL)
    except (struct.error, OverflowError):
        codec = CODEC_PICKLE
        key_blob = pickle.dumps(keys, protocol=pickle.HIGHEST_PROTOCOL)
    try:
        value_blob = pickle.dumps(
            [values for _, values in items],
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    except Exception as exc:
        raise CodecError(f"block values are not picklable: {exc}") from exc
    header = _HEADER.pack(
        BLOCK_MAGIC, codec, len(items), len(key_blob), len(value_blob)
    )
    return header + key_blob + value_blob


def encode_groups(
    groups: dict[Hashable, list[Any]], codec: bytes = CODEC_PICKLE
) -> bytes:
    """Encode one bucket dict as a block, preserving insertion order."""
    return encode_items(list(groups.items()), codec)


def _decode_keys(view: memoryview, codec: bytes, count: int) -> list[Hashable]:
    """Decode the key section (*view* covers exactly the key section)."""
    if codec == CODEC_INT:
        if len(view) != 8 * count:
            raise CodecError(
                f"int key section is {len(view)} bytes, expected {8 * count}"
            )
        return list(struct.unpack(f"<{count}q", view))
    if codec in (CODEC_STR, CODEC_BYTES):
        if len(view) < 4 * count:
            raise CodecError(
                f"key section too short for {count} length prefixes"
            )
        lengths = struct.unpack_from(f"<{count}I", view, 0)
        if sum(lengths) != len(view) - 4 * count:
            raise CodecError(
                "key section length prefixes do not match section size"
            )
        keys: list[Hashable] = []
        offset = 4 * count
        if codec == CODEC_STR:
            for length in lengths:
                raw = bytes(view[offset : offset + length])
                try:
                    keys.append(raw.decode("utf-8", "surrogatepass"))
                except UnicodeDecodeError as exc:
                    raise CodecError(
                        f"undecodable str key in block: {exc}"
                    ) from exc
                offset += length
        else:
            for length in lengths:
                keys.append(bytes(view[offset : offset + length]))
                offset += length
        return keys
    try:
        keys = pickle.loads(view)
    except Exception as exc:
        raise CodecError(f"corrupt pickled key section: {exc}") from exc
    if not isinstance(keys, list) or len(keys) != count:
        raise CodecError(
            "pickled key section does not hold the declared key list"
        )
    return keys


def decode_block(buf: Any) -> list[tuple[Hashable, list[Any]]]:
    """Decode one block back into its ``(key, values)`` items, in order.

    *buf* may be ``bytes`` or any buffer (the shm transport passes a
    ``memoryview`` into the segment); decoding reads it in place and
    returns fresh objects, holding no reference to *buf* afterwards.
    Every malformed input raises :class:`~repro.exceptions.CodecError`.
    """
    view = memoryview(buf)
    try:
        if len(view) < _HEADER.size:
            raise CodecError(
                f"truncated block: {len(view)} bytes < "
                f"{_HEADER.size}-byte header"
            )
        magic, codec, count, key_len, value_len = _HEADER.unpack_from(view, 0)
        if magic != BLOCK_MAGIC:
            raise CodecError(f"bad block magic {magic:#x}")
        if codec not in _CODECS:
            raise CodecError(f"unknown block codec {codec!r}")
        if len(view) != _HEADER.size + key_len + value_len:
            raise CodecError(
                f"block length {len(view)} does not match header "
                f"({_HEADER.size} + {key_len} + {value_len})"
            )
        key_end = _HEADER.size + key_len
        keys = _decode_keys(view[_HEADER.size : key_end], codec, count)
        try:
            value_lists = pickle.loads(view[key_end:])
        except Exception as exc:
            raise CodecError(
                f"corrupt block value section: {exc}"
            ) from exc
        if not isinstance(value_lists, list) or len(value_lists) != count:
            raise CodecError(
                "block value section does not hold the declared value lists"
            )
        return list(zip(keys, value_lists))
    finally:
        view.release()


def decode_block_groups(buf: Any) -> dict[Hashable, list[Any]]:
    """Decode one block into a bucket dict, preserving item order.

    Keys within one encoded bucket are unique by construction (they came
    out of a dict), so rebuilding a dict cannot merge entries.
    """
    return dict(decode_block(buf))
