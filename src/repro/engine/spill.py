"""Spill-to-disk shuffle: sorted run files plus streaming external merge.

When an :class:`~repro.engine.engine.ExecutionEngine` runs with a
``memory_budget``, map tasks no longer buffer an unbounded number of
key-value pairs: once the buffered pair count reaches the budget, the
task's current groups are hash-partitioned (the same
:func:`~repro.mapreduce.shuffle.partition_groups` the in-memory path uses)
and each non-empty partition is written to disk as a *sorted run* — the
partition's ``(key, values)`` items in sorted-key order, pickled one item
at a time.  Reduce tasks then stream-merge their partition's runs (plus
any in-memory leftovers) with a k-way heap merge, so at any moment a
reduce task holds one key's merged value list, not the whole partition.

Two invariants make the spilled path bit-identical to the in-memory one:

* **Key order** — runs are sorted and merged by key, which is exactly the
  ``sorted(keys)`` order :func:`~repro.mapreduce.shuffle.ordered_keys`
  reduces in.  Keys must therefore be totally orderable; a run over
  unorderable keys raises :class:`~repro.exceptions.SpillError` instead of
  silently diverging (the in-memory path falls back to insertion order,
  which disk-resident runs cannot reproduce).
* **Value order** — for one key, sources are merged in *spill order*:
  map-task order first, then flush order within a task, with the task's
  in-memory leftover last.  That is precisely the record order the
  in-memory path produces by extending value lists slab by slab.

Run files live in a per-run temporary directory owned by the engine
(workers on the ``processes`` backend write to the shared directory and
return file paths; the parent removes the directory when the run
finishes).  A run file is a short pickled header ``("rblk1", item
count)`` followed by encoded blocks (:mod:`repro.engine.codec`) of up to
:data:`RUN_BLOCK_ITEMS` sorted items each, pickled as opaque ``bytes`` —
the same wire format the shuffle ships, so spilling pays one typed batch
encode per block instead of one pickle per item, and the k-way merge
streams one decoded block at a time.  The legacy format (a pickled item
count followed by per-item pickles) is still readable.
"""

from __future__ import annotations

import heapq
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterator

from repro.engine.codec import decode_block, encode_items, select_codec
from repro.exceptions import CodecError, SpillError
from repro.mapreduce.shuffle import partition_groups

#: Sorted items per encoded block in a run file: large enough to amortize
#: the per-block pickle/codec framing, small enough that the streaming
#: merge holds only a sliver of a big partition in memory.
RUN_BLOCK_ITEMS = 512

#: Header tag of block-format run files.
_RUN_HEADER_TAG = "rblk1"

#: A reduce task's input source: an in-memory bucket dict, or the path of
#: a spilled run file (distinguished by ``isinstance(source, str)``).
Source = Any


@dataclass
class MapSpill:
    """What one map task spilled: per-flush run files plus counters.

    ``flushes[f][p]`` is the run-file path partition ``p`` received in
    flush ``f`` (``None`` when the partition had no keys in that flush).
    Flush order is record order, which the reduce-side merge preserves.
    ``flush_windows[f]`` records when flush ``f`` happened —
    ``(monotonic start, duration seconds, bytes written)`` — so the
    tracing layer can render each disk flush as its own span under the
    map task that performed it.
    """

    flushes: list[tuple[str | None, ...]] = field(default_factory=list)
    spilled_bytes: int = 0
    spill_runs: int = 0
    flush_windows: list[tuple[float, float, int]] = field(
        default_factory=list
    )

    def partition_runs(self, partition: int) -> list[str]:
        """This task's run files for one partition, in flush order."""
        return [
            flush[partition]
            for flush in self.flushes
            if flush[partition] is not None
        ]


def _sorted_items(
    groups: dict[Hashable, list[Any]]
) -> list[tuple[Hashable, list[Any]]]:
    """Group items in sorted-key order; unorderable keys are a hard error."""
    try:
        return sorted(groups.items(), key=lambda item: item[0])
    except TypeError as exc:
        raise SpillError(
            "out-of-core shuffle requires totally orderable keys "
            f"(sorting failed: {exc}); run without memory_budget to use "
            "the in-memory insertion-order fallback"
        ) from exc


def write_run(
    groups: dict[Hashable, list[Any]], spill_dir: str
) -> tuple[str, int]:
    """Write one partition's groups as a sorted block-format run file.

    Returns ``(path, bytes_written)``.  The file is a pickled
    ``("rblk1", item count)`` header followed by encoded blocks of up to
    :data:`RUN_BLOCK_ITEMS` ``(key, values)`` items in sorted-key order,
    each pickled as one ``bytes`` object.  The codec is probed once per
    run from the groups' keys; the count header lets :func:`iter_run`
    distinguish a complete run from one truncated at a block boundary
    (which a bare pickle stream would silently read as a shorter run).
    """
    items = _sorted_items(groups)
    codec = select_codec(groups)
    fd, path = tempfile.mkstemp(dir=spill_dir, suffix=".run")
    with os.fdopen(fd, "wb") as handle:
        pickle.dump(
            (_RUN_HEADER_TAG, len(items)),
            handle,
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        for start in range(0, len(items), RUN_BLOCK_ITEMS):
            block = encode_items(
                items[start : start + RUN_BLOCK_ITEMS], codec
            )
            pickle.dump(block, handle, protocol=pickle.HIGHEST_PROTOCOL)
    return path, os.path.getsize(path)


def spill_groups(
    groups: dict[Hashable, list[Any]],
    num_partitions: int,
    spill_dir: str,
    spill: MapSpill,
) -> None:
    """Flush a map task's buffered groups to per-partition sorted runs.

    Appends one flush entry to *spill* (a path per partition, ``None`` for
    partitions with no keys this flush) and updates its byte/run counters
    plus the flush's timing window.  The caller clears the in-memory
    groups afterwards.
    """
    started = time.perf_counter()
    flushed_bytes = 0
    flush: list[str | None] = []
    for bucket in partition_groups(groups, num_partitions):
        if not bucket:
            flush.append(None)
            continue
        path, nbytes = write_run(bucket, spill_dir)
        flush.append(path)
        flushed_bytes += nbytes
        spill.spilled_bytes += nbytes
        spill.spill_runs += 1
    spill.flushes.append(tuple(flush))
    spill.flush_windows.append(
        (started, time.perf_counter() - started, flushed_bytes)
    )


def iter_run(path: str) -> Iterator[tuple[Hashable, list[Any]]]:
    """Stream ``(key, values)`` items back out of one run file.

    Decodes block-format runs one block at a time (memory is bounded by
    one block, not the run) and still reads the legacy per-item-pickle
    format.  Every failure mode — unreadable file, garbage bytes, a
    block that does not decode, or a run holding fewer items than its
    count header promises — raises
    :class:`~repro.exceptions.SpillError`; a truncated run must never be
    silently read as a shorter one (the reduce task would drop keys and
    produce wrong outputs without any error).
    """
    try:
        handle = open(path, "rb")
    except OSError as exc:
        raise SpillError(f"cannot open spill run {path!r}: {exc}") from exc
    with handle:
        try:
            header = pickle.load(handle)
            if (
                isinstance(header, tuple)
                and len(header) == 2
                and header[0] == _RUN_HEADER_TAG
                and isinstance(header[1], int)
                and header[1] >= 0
            ):
                remaining = header[1]
                while remaining > 0:
                    block = pickle.load(handle)
                    if not isinstance(block, bytes):
                        raise SpillError(
                            f"corrupt spill run {path!r}: expected an "
                            f"encoded block, got {type(block).__name__}"
                        )
                    items = decode_block(block)
                    if not items or len(items) > remaining:
                        raise SpillError(
                            f"corrupt spill run {path!r}: block item "
                            "count disagrees with the run header"
                        )
                    yield from items
                    remaining -= len(items)
            elif isinstance(header, int) and header >= 0:
                # Legacy format: per-item pickles after an item count.
                for _ in range(header):
                    yield pickle.load(handle)
            else:
                raise SpillError(
                    f"corrupt spill run {path!r}: bad header {header!r}"
                )
        except CodecError as exc:
            raise SpillError(
                f"corrupt or truncated spill run {path!r}: {exc}"
            ) from exc
        except (EOFError, pickle.UnpicklingError, OSError) as exc:
            raise SpillError(
                f"corrupt or truncated spill run {path!r}: {exc}"
            ) from exc


def _iter_source(source: Source) -> Iterator[tuple[Hashable, list[Any]]]:
    """Sorted item stream for one source (run file or in-memory dict)."""
    if isinstance(source, str):
        return iter_run(source)
    return iter(_sorted_items(source))


def merge_sources(
    sources: list[Source],
) -> Iterator[tuple[Hashable, list[Any]]]:
    """K-way merge of sorted sources, yielding ``(key, merged_values)``.

    Keys come out in globally sorted order; a key appearing in several
    sources has its value lists concatenated in source order (the heap
    breaks key ties on the source index), which reproduces the in-memory
    path's task-order/flush-order value concatenation.  Only the head item
    of each source is held at a time, so memory is bounded by the largest
    single key, not the partition.
    """
    heap: list[tuple[Hashable, int, list[Any], Iterator]] = []
    for index, source in enumerate(sources):
        stream = _iter_source(source)
        head = next(stream, None)
        if head is not None:
            heap.append((head[0], index, head[1], stream))
    try:
        heapq.heapify(heap)
        while heap:
            key, index, values, stream = heapq.heappop(heap)
            merged = list(values)
            head = next(stream, None)
            if head is not None:
                heapq.heappush(heap, (head[0], index, head[1], stream))
            while heap and heap[0][0] == key:
                _, other_index, other_values, other_stream = heapq.heappop(
                    heap
                )
                merged.extend(other_values)
                head = next(other_stream, None)
                if head is not None:
                    heapq.heappush(
                        heap, (head[0], other_index, head[1], other_stream)
                    )
            yield key, merged
    except TypeError as exc:
        raise SpillError(
            "out-of-core shuffle requires totally orderable keys "
            f"(merge comparison failed: {exc})"
        ) from exc


def make_spill_dir(base_dir: str | None = None) -> str:
    """Create the temporary directory one engine run spills into."""
    if base_dir is not None:
        os.makedirs(base_dir, exist_ok=True)
    return tempfile.mkdtemp(prefix="repro-spill-", dir=base_dir)
