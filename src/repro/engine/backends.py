"""Pluggable task-execution backends for the engine.

A backend answers one question: given a task function and a list of task
payloads, run them all and return the results *in task order*.  Everything
schema- or MapReduce-specific lives in :mod:`repro.engine.engine`; backends
are interchangeable executors, so correctness is backend-independent and the
backends can be compared purely on wall clock.

Three backends ship:

* ``serial`` — a plain loop; the reference the others are validated against.
* ``threads`` — :class:`concurrent.futures.ThreadPoolExecutor`; wins when
  task bodies release the GIL (I/O, zlib/hashlib, numpy) and costs little
  otherwise.
* ``processes`` — :class:`concurrent.futures.ProcessPoolExecutor` with
  chunked task batches; wins on CPU-bound reduce work, but requires the
  task function and payloads to be picklable (module-level functions and
  :func:`functools.partial` over them qualify; closures do not).

Backends have an explicit pool lifecycle.  Entering one as a context
manager opens a worker pool that every :meth:`Backend.run_tasks` call
inside the context reuses, so a multi-phase job (map, then reduce) pays
pool startup once instead of once per phase.  :meth:`Backend.open` opens
the pool *persistently*: it survives context exits (the engine wraps every
run in one) until :meth:`Backend.close`, which is how long-lived services
share one pool across many runs.  A pre-built backend handed to the engine
is treated as caller-owned — the engine opens its pool persistently and
never tears it down, so repeated runs on the same instance reuse one pool
(:attr:`Backend.pools_created` counts actual pool constructions, which is
what the regression tests pin).  Outside any of that, pooled backends fall
back to a throwaway pool per call.
The process backend additionally ships the task function *pickled once per
``run_tasks`` call* (workers cache the unpickled callable), rather than once
per task — with schema routing tables bound into the map function, per-task
pickling used to dominate small-task runs.

Fault tolerance lives in a second dispatch path,
:meth:`Backend.run_tasks_resilient`: per-task retry with attempt tracking
(safe because engine tasks are pure over their schema-assigned
partitions), per-task timeouts, a run deadline, and deterministic fault
injection (:mod:`repro.faults`).  The process backend detects a broken
pool (a worker died mid-flight), keeps every result that finished before
the breakage, rebuilds the pool, and replays only the lost tasks.  The
plain :meth:`Backend.run_tasks` path is untouched — zero overhead when
the fault plane is off — and self-heals: a broken pool is torn down and
rebuilt on next use instead of poisoning every later run that shares the
backend.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from functools import partial
from typing import Any, Callable, Iterable, Sequence

from repro.exceptions import (
    InvalidInstanceError,
    TaskRetryExhaustedError,
    TaskTimeoutError,
    UnknownMethodError,
    WorkerLostError,
)
from repro.engine.shm import ShmArena, shm_available
from repro.faults import (
    FaultInjector,
    RetryPolicy,
    check_deadline,
    remaining_time,
)

#: In-flight futures per worker when consuming a streaming task iterable:
#: enough to keep every worker busy without materializing the stream.
_WINDOW_PER_WORKER = 4

#: Livelock backstop for worker-death replay: a task lost to pool
#: breakage consumes no retry attempt (its loss says nothing about the
#: task — one killed worker takes every in-flight neighbour with it), but
#: a task *dispatched* this many times max-attempts over is abandoned so
#: a pool that dies on every round still terminates.
_LOST_DISPATCH_FACTOR = 4


def _windowed_submit(
    pool: Any, fn: Callable[[Any], Any], tasks: Iterable[Any], window: int
) -> list[Any]:
    """Submit tasks from an iterable with a bounded in-flight window.

    ``Executor.map`` consumes its whole iterable up front, which would
    materialize a streaming dataset's chunks in the submission queue;
    this helper keeps at most *window* futures pending, pulling the next
    task only as earlier results are collected.  Results keep task order.
    """
    results: list[Any] = []
    pending: deque[Any] = deque()
    for task in tasks:
        pending.append(pool.submit(fn, task))
        if len(pending) >= window:
            results.append(pending.popleft().result())
    while pending:
        results.append(pending.popleft().result())
    return results


def available_workers() -> int:
    """Worker count the machine can actually run at once.

    Prefers the scheduling affinity (respects container CPU limits) and
    falls back to the raw core count; never less than 1.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def _resilient_call(
    item: tuple[int, int, Any],
    *,
    fn: Callable[[Any], Any],
    injector: FaultInjector | None,
    phase: str,
    allow_kill: bool,
) -> tuple[str, Any]:
    """Worker-side guard around one task attempt.

    *item* is ``(task index, attempt, payload)``.  Returns ``("ok",
    result)`` or ``("err", exception)`` — failures are captured *inside*
    the worker so one bad task cannot abort a whole pool batch; the
    parent's retry loop classifies and replays.  An injected worker kill
    is the one failure that escapes: the worker process exits, the pool
    breaks, and the parent observes the task as lost.  Module-level so
    process-pool workers can unpickle it (configuration bound via
    :func:`functools.partial`, shipped through the once-per-call pickled
    blob like every other task function).
    """
    index, attempt, payload = item
    try:
        if injector is not None:
            injector.maybe_inject(
                phase, index, attempt, allow_kill=allow_kill
            )
        return ("ok", fn(payload))
    except Exception as exc:  # noqa: BLE001 - classified by RetryPolicy
        return ("err", exc)


class Backend(ABC):
    """Executes a batch of independent tasks, preserving task order."""

    #: Registry name; subclasses override.
    name: str = "abstract"

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers <= 0:
            raise InvalidInstanceError(
                f"max_workers must be positive, got {max_workers}"
            )
        self.max_workers = max_workers or available_workers()
        self._pool: Any = None
        self._depth = 0
        self._persistent = False
        self._lifecycle_lock = threading.Lock()
        #: Worker pools constructed over this backend's lifetime.  A
        #: long-lived backend that is reused correctly creates exactly one;
        #: the pool-reuse regression tests pin this counter.
        self.pools_created = 0
        #: Tasks run over this backend's lifetime; the service exports it
        #: as a pool-utilization metric for shared backends.
        self.tasks_dispatched = 0
        #: Pools rebuilt after a worker death broke them (process backend);
        #: the worker-death recovery tests pin this counter.
        self.pool_rebuilds = 0

    @abstractmethod
    def run_tasks(
        self, fn: Callable[[Any], Any], tasks: Iterable[Any]
    ) -> list[Any]:
        """Run ``fn`` over every task payload; results keep task order.

        *tasks* may be any iterable; non-sequence iterables (generators,
        streaming chunk producers) are consumed lazily — the serial
        backend pulls one task at a time, pooled backends keep a bounded
        window of submissions in flight.
        """

    def _count_tasks(self, results: list[Any]) -> list[Any]:
        """Add a completed batch to the dispatch counter (thread-safe —
        shared pools run batches from several jobs concurrently)."""
        with self._lifecycle_lock:
            self.tasks_dispatched += len(results)
        return results

    #: Whether an injected ``kill`` fault may really terminate a worker on
    #: this backend.  True only where workers are disposable OS processes;
    #: elsewhere the injector degrades a kill to a task crash.
    supports_worker_kill: bool = False

    #: Whether task payloads and results cross a process boundary.  The
    #: engine block-encodes shuffle buckets only when they do — on the
    #: in-process backends the dict buckets are handed over by reference,
    #: so encoding would be pure overhead.
    ships_blocks: bool = False

    def block_transport(self) -> ShmArena | None:
        """A fresh block transport for one run, or ``None`` for pipe/inline.

        Backends that do not ship blocks (and process backends without a
        usable shared-memory filesystem) return ``None``: encoded blocks
        then stay inline in the reduce payloads and travel over the
        result pipe like any other pickled payload.
        """
        return None

    def run_tasks_resilient(
        self,
        fn: Callable[[Any], Any],
        tasks: Iterable[Any],
        *,
        policy: RetryPolicy | None = None,
        injector: FaultInjector | None = None,
        phase: str = "tasks",
        task_timeout: float | None = None,
        deadline_at: float | None = None,
        on_retry: Callable[[str, int, int, BaseException, float], None]
        | None = None,
    ) -> list[Any]:
        """Run tasks with per-task retry, timeouts, and a run deadline.

        The fault-tolerant counterpart of :meth:`run_tasks`; same contract
        (results in task order), same task functions.  Differences:

        * *tasks* is materialized up front — retry requires being able to
          replay any payload, so this path trades the streaming window for
          recoverability.
        * Each failed attempt is classified by *policy*
          (:class:`~repro.faults.RetryPolicy`): retryable failures are
          re-dispatched (up to ``max_attempts`` observed failures per
          task, with the policy's deterministic backoff between rounds);
          everything else propagates immediately, so model and user
          errors behave exactly as on the plain path.  A task lost to a
          pool breakage is replayed without consuming an attempt — the
          loss says nothing about the task — subject to a generous
          total-dispatch backstop so a dying pool still terminates.
        * A task attempt that exceeds *task_timeout* seconds is abandoned
          and counts as a retryable failure; *deadline_at* (an absolute
          ``time.monotonic`` instant) bounds the whole call —
          :class:`~repro.exceptions.DeadlineExceededError` once passed.
        * On the process backend, a worker death (e.g. an injected
          ``kill`` from *injector*) breaks the pool: completed results
          are kept, the pool is rebuilt, and only the lost in-flight
          tasks are replayed.
        * *on_retry* is called as ``(phase, task index, failed attempt,
          exception, backoff seconds)`` before each replay — the engine
          wires it to tracer instants and retry counters.

        A task that fails on every allowed attempt raises
        :class:`~repro.exceptions.TaskRetryExhaustedError` carrying the
        last underlying error.
        """
        payloads = list(tasks)
        if not payloads:
            return []
        policy = policy or RetryPolicy()
        call = partial(
            _resilient_call,
            fn=fn,
            injector=injector,
            phase=phase,
            allow_kill=self.supports_worker_kill,
        )
        results: list[Any] = [None] * len(payloads)
        # ``dispatches`` counts every send of a task (it keys the fault
        # injector's per-attempt decisions and the backoff schedule);
        # ``failures`` counts only *observed* task failures, which is what
        # max_attempts bounds — a task lost to pool breakage is replayed
        # without consuming an attempt, because its loss carries no
        # information about the task itself (see _LOST_DISPATCH_FACTOR
        # for the termination backstop).
        dispatches = [0] * len(payloads)
        failures = [0] * len(payloads)
        dispatch_cap = policy.max_attempts * _LOST_DISPATCH_FACTOR
        pending = list(range(len(payloads)))
        with self:
            while pending:
                check_deadline(deadline_at, what=f"{phase} phase")
                batch = []
                for index in pending:
                    dispatches[index] += 1
                    batch.append(
                        (index, dispatches[index], payloads[index])
                    )
                outcomes = self._dispatch_resilient(
                    call,
                    batch,
                    task_timeout=task_timeout,
                    deadline_at=deadline_at,
                )
                with self._lifecycle_lock:
                    self.tasks_dispatched += len(batch)
                retry_indices: list[int] = []
                backoff = 0.0
                for index, (status, value) in zip(pending, outcomes):
                    if status == "ok":
                        results[index] = value
                        continue
                    exc: BaseException
                    if status == "lost":
                        exc = WorkerLostError(
                            f"worker died running {phase} task {index} "
                            f"(dispatch {dispatches[index]})"
                        )
                    else:
                        exc = value
                        failures[index] += 1
                    if not policy.is_retryable(exc):
                        raise exc
                    if (
                        failures[index] >= policy.max_attempts
                        or dispatches[index] >= dispatch_cap
                    ):
                        if failures[index]:
                            message = (
                                f"{phase} task {index} failed on all "
                                f"{failures[index]} attempts "
                                f"({dispatches[index]} dispatches): {exc}"
                            )
                        else:
                            message = (
                                f"{phase} task {index} was lost to worker "
                                f"deaths on all {dispatches[index]} "
                                f"dispatches: {exc}"
                            )
                        raise TaskRetryExhaustedError(
                            message,
                            attempts=max(failures[index], 1),
                            last_error=exc,
                        ) from exc
                    delay = policy.delay_seconds(
                        dispatches[index], key=(phase, index)
                    )
                    if on_retry is not None:
                        on_retry(
                            phase, index, dispatches[index], exc, delay
                        )
                    retry_indices.append(index)
                    backoff = max(backoff, delay)
                pending = retry_indices
                if pending and backoff > 0.0:
                    remaining = remaining_time(deadline_at)
                    if remaining is not None:
                        check_deadline(deadline_at, what=f"{phase} phase")
                        backoff = min(backoff, remaining)
                    time.sleep(backoff)
        return results

    def _dispatch_resilient(
        self,
        call: Callable[[tuple[int, int, Any]], tuple[str, Any]],
        batch: list[tuple[int, int, Any]],
        *,
        task_timeout: float | None,
        deadline_at: float | None,
    ) -> list[tuple[str, Any]]:
        """Run one retry round; returns per-item ``(status, value)``.

        ``status`` is ``"ok"``, ``"err"`` (value is the captured
        exception), or ``"lost"`` (the worker died before producing
        either).  The base implementation runs inline (the serial path):
        nothing can be preempted, so *task_timeout* is enforced post hoc —
        an attempt that measurably overran is discarded and reported as a
        timeout, keeping retry semantics identical to the pooled backends.
        The run deadline is likewise re-checked after each attempt: a
        result that arrived past the deadline is discarded and the run
        fails, exactly as a pooled backend's bounded wait would have.
        """
        outcomes: list[tuple[str, Any]] = []
        for item in batch:
            check_deadline(deadline_at, what="task dispatch")
            started = time.monotonic()
            outcome = call(item)
            check_deadline(deadline_at, what="task dispatch")
            if (
                task_timeout is not None
                and time.monotonic() - started > task_timeout
            ):
                index, attempt, _ = item
                outcome = (
                    "err",
                    TaskTimeoutError(
                        f"task {index} attempt {attempt} exceeded "
                        f"{task_timeout:g}s timeout"
                    ),
                )
            outcomes.append(outcome)
        return outcomes

    def _submit_resilient(
        self,
        pool: Any,
        call: Callable[[tuple[int, int, Any]], tuple[str, Any]],
        batch: list[tuple[int, int, Any]],
        *,
        task_timeout: float | None,
        deadline_at: float | None,
    ) -> list[tuple[str, Any]]:
        """Pooled retry round: per-task futures, timeouts, loss detection.

        Shared by the thread and process backends.  Tasks are submitted
        individually (no chunked ``map``) so the parent knows exactly
        which tasks completed when a pool breaks mid-batch.  Collection
        walks the futures in task order; each future gets up to
        *task_timeout* seconds of patience from the moment the parent
        starts waiting on it (a task queued behind a straggler therefore
        keeps its full allowance), capped by the run deadline.  A future
        that raises :class:`concurrent.futures.BrokenExecutor` — and
        every later future in the batch — is reported ``"lost"``.
        """
        futures: list[Any] = []
        broken = False
        for item in batch:
            if broken:
                futures.append(None)
                continue
            try:
                futures.append(pool.submit(call, item))
            except BrokenExecutor:
                broken = True
                futures.append(None)
        outcomes: list[tuple[str, Any]] = []
        for item, future in zip(batch, futures):
            if future is None:
                outcomes.append(("lost", None))
                continue
            index, attempt, _ = item
            timeout = task_timeout
            remaining = remaining_time(deadline_at)
            if remaining is not None:
                check_deadline(deadline_at, what="task dispatch")
                timeout = (
                    remaining if timeout is None else min(timeout, remaining)
                )
            try:
                outcomes.append(future.result(timeout=timeout))
            except (FuturesTimeoutError, TimeoutError):
                future.cancel()
                check_deadline(deadline_at, what="task dispatch")
                outcomes.append(
                    (
                        "err",
                        TaskTimeoutError(
                            f"task {index} attempt {attempt} exceeded "
                            f"{task_timeout:g}s timeout"
                        ),
                    )
                )
            except BrokenExecutor:
                outcomes.append(("lost", None))
        return outcomes

    def _make_pool(self) -> Any:
        """Build the reusable worker pool; ``None`` for poolless backends."""
        return None

    def _ensure_pool(self) -> None:
        """Construct the reusable pool if it is not already open."""
        if self._pool is None:
            pool = self._make_pool()
            if pool is not None:
                self._pool = pool
                self.pools_created += 1

    def open(self) -> "Backend":
        """Open the worker pool persistently (idempotent).

        A persistently opened pool survives context-manager exits — the
        engine wraps every run in ``with backend:`` — and is only shut
        down by an explicit :meth:`close`.  This is the lifecycle for
        sharing one pool across many runs (services, benchmarks, repeated
        ``execute_schema`` calls on one instance).
        """
        with self._lifecycle_lock:
            self._persistent = True
            self._ensure_pool()
        return self

    @property
    def is_open(self) -> bool:
        """Whether a reusable pool is currently open (always False when
        the backend is poolless, e.g. serial)."""
        return self._pool is not None

    def __enter__(self) -> "Backend":
        with self._lifecycle_lock:
            self._depth += 1
            if self._depth == 1:
                self._ensure_pool()
        return self

    def __exit__(self, *exc_info: object) -> None:
        with self._lifecycle_lock:
            self._depth -= 1
            if self._depth > 0 or self._persistent:
                self._depth = max(self._depth, 0)
                return
            self._depth = 0
        self.close()

    def close(self) -> None:
        """Shut down the reusable pool (no-op when none is open).

        Also clears the persistent flag, so a backend opened with
        :meth:`open` returns to scoped (context-manager) lifecycle.
        """
        with self._lifecycle_lock:
            pool, self._pool = self._pool, None
            self._persistent = False
        if pool is not None:
            pool.shutdown()

    def __del__(self) -> None:
        """GC backstop for persistently opened pools nobody closed.

        A caller that hands a fresh backend instance to the engine and
        drops it without :meth:`close` would otherwise keep its warmed
        pool (processes, pipes) alive until interpreter exit; shut it
        down non-blockingly when the backend is collected.
        """
        pool = getattr(self, "_pool", None)
        if pool is not None:  # pragma: no cover - GC timing dependent
            try:
                pool.shutdown(wait=False)
            except Exception:
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class SerialBackend(Backend):
    """Reference backend: runs every task inline, one after another."""

    name = "serial"

    def __init__(self, max_workers: int | None = None):
        super().__init__(max_workers=1)

    def run_tasks(
        self, fn: Callable[[Any], Any], tasks: Iterable[Any]
    ) -> list[Any]:
        """Run tasks in a plain loop (lazily for streaming iterables)."""
        return self._count_tasks([fn(task) for task in tasks])


class ThreadBackend(Backend):
    """Thread-pool backend built on :class:`ThreadPoolExecutor`."""

    name = "threads"

    def _make_pool(self):
        from concurrent.futures import ThreadPoolExecutor

        return ThreadPoolExecutor(max_workers=self.max_workers)

    def run_tasks(
        self, fn: Callable[[Any], Any], tasks: Iterable[Any]
    ) -> list[Any]:
        """Run tasks on a thread pool; exceptions propagate to the caller."""
        if not isinstance(tasks, Sequence):
            window = self.max_workers * _WINDOW_PER_WORKER
            if self._pool is not None:
                return self._count_tasks(
                    _windowed_submit(self._pool, fn, tasks, window)
                )
            with self._make_pool() as pool:
                return self._count_tasks(
                    _windowed_submit(pool, fn, tasks, window)
                )
        if not tasks:
            return []
        if self._pool is not None:
            return self._count_tasks(list(self._pool.map(fn, tasks)))
        with self._make_pool() as pool:
            return self._count_tasks(list(pool.map(fn, tasks)))

    def _dispatch_resilient(
        self,
        call: Callable[[tuple[int, int, Any]], tuple[str, Any]],
        batch: list[tuple[int, int, Any]],
        *,
        task_timeout: float | None,
        deadline_at: float | None,
    ) -> list[tuple[str, Any]]:
        """Pooled retry round on the thread pool (threads never break —
        a ``lost`` outcome cannot occur here)."""
        return self._submit_resilient(
            self._pool,
            call,
            batch,
            task_timeout=task_timeout,
            deadline_at=deadline_at,
        )


#: Per-worker cache of recently unpickled task functions, keyed by their
#: pickle bytes.  A single engine run sees one distinct function per phase,
#: but a *shared* pool (the job service runs concurrent jobs on one
#: process pool) interleaves tasks from several phases at once — the cache
#: holds a few entries so interleaving doesn't thrash it back to
#: per-task unpickling.
_FN_CACHE: dict[bytes, Callable[[Any], Any]] = {}

#: Entries kept in :data:`_FN_CACHE`; comfortably above the number of
#: distinct phases plausibly in flight on one shared pool.
_FN_CACHE_LIMIT = 8


def _noop() -> None:
    """Warm-up task: forces lazy worker spawn at pool-creation time."""


def _call_pickled(blob: bytes, task: Any) -> Any:
    """Worker-side trampoline: unpickle the task function once, then call it.

    ``blob`` travels with every chunk (it is bound into the mapped partial),
    but the expensive part — unpickling a function with schema routing
    tables attached — happens once per worker per phase thanks to the cache.
    """
    fn = _FN_CACHE.get(blob)
    if fn is None:
        fn = pickle.loads(blob)
        while len(_FN_CACHE) >= _FN_CACHE_LIMIT:
            _FN_CACHE.pop(next(iter(_FN_CACHE)))
        _FN_CACHE[blob] = fn
    return fn(task)


class ProcessBackend(Backend):
    """Process-pool backend with chunked task batches.

    ``chunksize`` controls how many tasks ship to a worker per round trip;
    the default targets four batches per worker, which amortizes payload
    transfer without starving the pool.  The task function is pickled once
    in the parent and cached per worker (see :func:`_call_pickled`); task
    payloads must still be picklable.

    This backend ships shuffle data as encoded blocks
    (:attr:`ships_blocks`), staged through shared memory when the
    platform supports it.  ``use_shm`` overrides the automatic probe:
    ``True`` forces shared-memory staging (benchmarks), ``False`` forces
    the pipe fallback, ``None`` (default) probes once per process.
    Every arena handed out is tracked and swept in :meth:`close`, so a
    run abandoned without reaching the engine's own cleanup still leaves
    zero segments behind.
    """

    name = "processes"
    supports_worker_kill = True
    ships_blocks = True

    def __init__(
        self,
        max_workers: int | None = None,
        chunksize: int | None = None,
        use_shm: bool | None = None,
    ):
        super().__init__(max_workers)
        if chunksize is not None and chunksize <= 0:
            raise InvalidInstanceError(
                f"chunksize must be positive, got {chunksize}"
            )
        self.chunksize = chunksize
        self.use_shm = use_shm
        self._arenas: set[ShmArena] = set()

    def block_transport(self) -> ShmArena | None:
        """A registered :class:`ShmArena`, or ``None`` on the pipe path."""
        use = self.use_shm if self.use_shm is not None else shm_available()
        if not use:
            return None
        arena = ShmArena(on_close=self._forget_arena)
        with self._lifecycle_lock:
            self._arenas.add(arena)
        return arena

    def _forget_arena(self, arena: ShmArena) -> None:
        with self._lifecycle_lock:
            self._arenas.discard(arena)

    def close(self) -> None:
        """Shut down the pool, then sweep any arenas still registered.

        The engine unlinks its arena in its own ``finally``; this sweep
        is the backstop for runs that never got there (a crash between
        staging and dispatch, a caller dropping a shared backend).
        Arenas are closed outside the lifecycle lock — unlinking does
        filesystem work.
        """
        super().close()
        with self._lifecycle_lock:
            arenas = list(self._arenas)
        for arena in arenas:
            arena.close()

    def _make_pool(self):
        from concurrent.futures import ProcessPoolExecutor

        try:
            # Start the resource tracker before the pool forks: workers
            # must inherit the live tracker so their shared-memory
            # attaches register with the parent's tracker (a no-op on a
            # name the parent already registered) instead of each worker
            # lazily spawning its own tracker, which would try to clean
            # up parent-owned segments when the worker exits.
            from multiprocessing.resource_tracker import ensure_running

            ensure_running()
        except Exception:
            pass
        pool = ProcessPoolExecutor(max_workers=self.max_workers)
        # ProcessPoolExecutor spawns workers lazily on first submit, which
        # would bill worker startup to whatever phase runs first; spawn
        # them now so phase timings measure the phases.
        for future in [pool.submit(_noop) for _ in range(self.max_workers)]:
            future.result()
        return pool

    def run_tasks(
        self, fn: Callable[[Any], Any], tasks: Iterable[Any]
    ) -> list[Any]:
        """Run tasks on a process pool in chunked batches.

        Streaming (non-sequence) task iterables go through windowed
        single-task submission instead of chunked ``map`` — the function
        blob is still pickled once and cached per worker.

        A worker death mid-batch breaks the pool; this path cannot tell
        which in-flight tasks were lost (chunked ``map`` shares one
        future per chunk), so it heals the backend — tears down the
        broken pool so the next use builds a fresh one — and raises
        :class:`~repro.exceptions.WorkerLostError`.  Callers that need
        replay instead of an error use :meth:`run_tasks_resilient`.
        """
        try:
            return self._run_tasks_pooled(fn, tasks)
        except BrokenExecutor as exc:
            self._heal_broken_pool()
            raise WorkerLostError(
                "a process-pool worker died mid-batch; the pool was "
                "rebuilt — rerun the job (or enable a retry policy for "
                "in-place replay)"
            ) from exc

    def _run_tasks_pooled(
        self, fn: Callable[[Any], Any], tasks: Iterable[Any]
    ) -> list[Any]:
        """The chunked/windowed dispatch body (see :meth:`run_tasks`)."""
        if not isinstance(tasks, Sequence):
            call = partial(_call_pickled, pickle.dumps(fn))
            window = self.max_workers * _WINDOW_PER_WORKER
            if self._pool is not None:
                return self._count_tasks(
                    _windowed_submit(self._pool, call, tasks, window)
                )
            with self._make_pool() as pool:
                return self._count_tasks(
                    _windowed_submit(pool, call, tasks, window)
                )
        if not tasks:
            return []
        call = partial(_call_pickled, pickle.dumps(fn))
        chunksize = self.chunksize or max(
            1, -(-len(tasks) // (self.max_workers * 4))
        )
        if self._pool is not None:
            return self._count_tasks(
                list(self._pool.map(call, tasks, chunksize=chunksize))
            )
        with self._make_pool() as pool:
            return self._count_tasks(
                list(pool.map(call, tasks, chunksize=chunksize))
            )

    def _heal_broken_pool(self) -> None:
        """Tear down a broken pool and rebuild it if one should be open.

        Keeps the lifecycle flags (persistent / context depth) untouched:
        if a pool is supposed to be open right now it is rebuilt
        immediately, otherwise the next :meth:`_ensure_pool` builds one.
        Either way :attr:`pool_rebuilds` records the breakage.
        """
        with self._lifecycle_lock:
            pool, self._pool = self._pool, None
            self.pool_rebuilds += 1
            rebuild = self._persistent or self._depth > 0
        if pool is not None:
            pool.shutdown(wait=False)
        if rebuild:
            with self._lifecycle_lock:
                self._ensure_pool()

    def _dispatch_resilient(
        self,
        call: Callable[[tuple[int, int, Any]], tuple[str, Any]],
        batch: list[tuple[int, int, Any]],
        *,
        task_timeout: float | None,
        deadline_at: float | None,
    ) -> list[tuple[str, Any]]:
        """Pooled retry round with worker-death recovery.

        Tasks go through the once-per-round pickled-callable trick like
        the plain path, but as individual futures: when a worker death
        breaks the pool, futures that already completed keep their
        results, the unfinished ones come back ``"lost"``, and the pool
        is rebuilt here so the caller's next retry round dispatches onto
        fresh workers immediately.
        """
        wrapped = partial(_call_pickled, pickle.dumps(call))
        outcomes = self._submit_resilient(
            self._pool,
            wrapped,
            batch,
            task_timeout=task_timeout,
            deadline_at=deadline_at,
        )
        if any(status == "lost" for status, _ in outcomes):
            self._heal_broken_pool()
        return outcomes


#: Name -> backend class; the CLI and benches iterate this.
BACKENDS: dict[str, type[Backend]] = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def get_backend(
    spec: str | Backend, *, max_workers: int | None = None
) -> Backend:
    """Resolve a backend name (or pass through an instance).

    ``max_workers`` is forwarded when constructing by name and ignored for
    pre-built instances (they already carry their pool size).
    """
    if isinstance(spec, Backend):
        return spec
    if spec not in BACKENDS:
        raise UnknownMethodError(
            f"unknown backend {spec!r}; choose from {sorted(BACKENDS)}"
        )
    return BACKENDS[spec](max_workers=max_workers)
