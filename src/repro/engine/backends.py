"""Pluggable task-execution backends for the engine.

A backend answers one question: given a task function and a list of task
payloads, run them all and return the results *in task order*.  Everything
schema- or MapReduce-specific lives in :mod:`repro.engine.engine`; backends
are interchangeable executors, so correctness is backend-independent and the
backends can be compared purely on wall clock.

Three backends ship:

* ``serial`` — a plain loop; the reference the others are validated against.
* ``threads`` — :class:`concurrent.futures.ThreadPoolExecutor`; wins when
  task bodies release the GIL (I/O, zlib/hashlib, numpy) and costs little
  otherwise.
* ``processes`` — :class:`concurrent.futures.ProcessPoolExecutor` with
  chunked task batches; wins on CPU-bound reduce work, but requires the
  task function and payloads to be picklable (module-level functions and
  :func:`functools.partial` over them qualify; closures do not).

Backends have an explicit pool lifecycle.  Entering one as a context
manager opens a worker pool that every :meth:`Backend.run_tasks` call
inside the context reuses, so a multi-phase job (map, then reduce) pays
pool startup once instead of once per phase.  :meth:`Backend.open` opens
the pool *persistently*: it survives context exits (the engine wraps every
run in one) until :meth:`Backend.close`, which is how long-lived services
share one pool across many runs.  A pre-built backend handed to the engine
is treated as caller-owned — the engine opens its pool persistently and
never tears it down, so repeated runs on the same instance reuse one pool
(:attr:`Backend.pools_created` counts actual pool constructions, which is
what the regression tests pin).  Outside any of that, pooled backends fall
back to a throwaway pool per call.
The process backend additionally ships the task function *pickled once per
``run_tasks`` call* (workers cache the unpickled callable), rather than once
per task — with schema routing tables bound into the map function, per-task
pickling used to dominate small-task runs.
"""

from __future__ import annotations

import os
import pickle
import threading
from abc import ABC, abstractmethod
from collections import deque
from functools import partial
from typing import Any, Callable, Iterable, Sequence

#: In-flight futures per worker when consuming a streaming task iterable:
#: enough to keep every worker busy without materializing the stream.
_WINDOW_PER_WORKER = 4


def _windowed_submit(
    pool: Any, fn: Callable[[Any], Any], tasks: Iterable[Any], window: int
) -> list[Any]:
    """Submit tasks from an iterable with a bounded in-flight window.

    ``Executor.map`` consumes its whole iterable up front, which would
    materialize a streaming dataset's chunks in the submission queue;
    this helper keeps at most *window* futures pending, pulling the next
    task only as earlier results are collected.  Results keep task order.
    """
    results: list[Any] = []
    pending: deque[Any] = deque()
    for task in tasks:
        pending.append(pool.submit(fn, task))
        if len(pending) >= window:
            results.append(pending.popleft().result())
    while pending:
        results.append(pending.popleft().result())
    return results


def available_workers() -> int:
    """Worker count the machine can actually run at once.

    Prefers the scheduling affinity (respects container CPU limits) and
    falls back to the raw core count; never less than 1.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


class Backend(ABC):
    """Executes a batch of independent tasks, preserving task order."""

    #: Registry name; subclasses override.
    name: str = "abstract"

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers or available_workers()
        self._pool: Any = None
        self._depth = 0
        self._persistent = False
        self._lifecycle_lock = threading.Lock()
        #: Worker pools constructed over this backend's lifetime.  A
        #: long-lived backend that is reused correctly creates exactly one;
        #: the pool-reuse regression tests pin this counter.
        self.pools_created = 0
        #: Tasks run over this backend's lifetime; the service exports it
        #: as a pool-utilization metric for shared backends.
        self.tasks_dispatched = 0

    @abstractmethod
    def run_tasks(
        self, fn: Callable[[Any], Any], tasks: Iterable[Any]
    ) -> list[Any]:
        """Run ``fn`` over every task payload; results keep task order.

        *tasks* may be any iterable; non-sequence iterables (generators,
        streaming chunk producers) are consumed lazily — the serial
        backend pulls one task at a time, pooled backends keep a bounded
        window of submissions in flight.
        """

    def _count_tasks(self, results: list[Any]) -> list[Any]:
        """Add a completed batch to the dispatch counter (thread-safe —
        shared pools run batches from several jobs concurrently)."""
        with self._lifecycle_lock:
            self.tasks_dispatched += len(results)
        return results

    def _make_pool(self) -> Any:
        """Build the reusable worker pool; ``None`` for poolless backends."""
        return None

    def _ensure_pool(self) -> None:
        """Construct the reusable pool if it is not already open."""
        if self._pool is None:
            pool = self._make_pool()
            if pool is not None:
                self._pool = pool
                self.pools_created += 1

    def open(self) -> "Backend":
        """Open the worker pool persistently (idempotent).

        A persistently opened pool survives context-manager exits — the
        engine wraps every run in ``with backend:`` — and is only shut
        down by an explicit :meth:`close`.  This is the lifecycle for
        sharing one pool across many runs (services, benchmarks, repeated
        ``execute_schema`` calls on one instance).
        """
        with self._lifecycle_lock:
            self._persistent = True
            self._ensure_pool()
        return self

    @property
    def is_open(self) -> bool:
        """Whether a reusable pool is currently open (always False when
        the backend is poolless, e.g. serial)."""
        return self._pool is not None

    def __enter__(self) -> "Backend":
        with self._lifecycle_lock:
            self._depth += 1
            if self._depth == 1:
                self._ensure_pool()
        return self

    def __exit__(self, *exc_info: object) -> None:
        with self._lifecycle_lock:
            self._depth -= 1
            if self._depth > 0 or self._persistent:
                self._depth = max(self._depth, 0)
                return
            self._depth = 0
        self.close()

    def close(self) -> None:
        """Shut down the reusable pool (no-op when none is open).

        Also clears the persistent flag, so a backend opened with
        :meth:`open` returns to scoped (context-manager) lifecycle.
        """
        with self._lifecycle_lock:
            pool, self._pool = self._pool, None
            self._persistent = False
        if pool is not None:
            pool.shutdown()

    def __del__(self) -> None:
        """GC backstop for persistently opened pools nobody closed.

        A caller that hands a fresh backend instance to the engine and
        drops it without :meth:`close` would otherwise keep its warmed
        pool (processes, pipes) alive until interpreter exit; shut it
        down non-blockingly when the backend is collected.
        """
        pool = getattr(self, "_pool", None)
        if pool is not None:  # pragma: no cover - GC timing dependent
            try:
                pool.shutdown(wait=False)
            except Exception:
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class SerialBackend(Backend):
    """Reference backend: runs every task inline, one after another."""

    name = "serial"

    def __init__(self, max_workers: int | None = None):
        super().__init__(max_workers=1)

    def run_tasks(
        self, fn: Callable[[Any], Any], tasks: Iterable[Any]
    ) -> list[Any]:
        """Run tasks in a plain loop (lazily for streaming iterables)."""
        return self._count_tasks([fn(task) for task in tasks])


class ThreadBackend(Backend):
    """Thread-pool backend built on :class:`ThreadPoolExecutor`."""

    name = "threads"

    def _make_pool(self):
        from concurrent.futures import ThreadPoolExecutor

        return ThreadPoolExecutor(max_workers=self.max_workers)

    def run_tasks(
        self, fn: Callable[[Any], Any], tasks: Iterable[Any]
    ) -> list[Any]:
        """Run tasks on a thread pool; exceptions propagate to the caller."""
        if not isinstance(tasks, Sequence):
            window = self.max_workers * _WINDOW_PER_WORKER
            if self._pool is not None:
                return self._count_tasks(
                    _windowed_submit(self._pool, fn, tasks, window)
                )
            with self._make_pool() as pool:
                return self._count_tasks(
                    _windowed_submit(pool, fn, tasks, window)
                )
        if not tasks:
            return []
        if self._pool is not None:
            return self._count_tasks(list(self._pool.map(fn, tasks)))
        with self._make_pool() as pool:
            return self._count_tasks(list(pool.map(fn, tasks)))


#: Per-worker cache of recently unpickled task functions, keyed by their
#: pickle bytes.  A single engine run sees one distinct function per phase,
#: but a *shared* pool (the job service runs concurrent jobs on one
#: process pool) interleaves tasks from several phases at once — the cache
#: holds a few entries so interleaving doesn't thrash it back to
#: per-task unpickling.
_FN_CACHE: dict[bytes, Callable[[Any], Any]] = {}

#: Entries kept in :data:`_FN_CACHE`; comfortably above the number of
#: distinct phases plausibly in flight on one shared pool.
_FN_CACHE_LIMIT = 8


def _noop() -> None:
    """Warm-up task: forces lazy worker spawn at pool-creation time."""


def _call_pickled(blob: bytes, task: Any) -> Any:
    """Worker-side trampoline: unpickle the task function once, then call it.

    ``blob`` travels with every chunk (it is bound into the mapped partial),
    but the expensive part — unpickling a function with schema routing
    tables attached — happens once per worker per phase thanks to the cache.
    """
    fn = _FN_CACHE.get(blob)
    if fn is None:
        fn = pickle.loads(blob)
        while len(_FN_CACHE) >= _FN_CACHE_LIMIT:
            _FN_CACHE.pop(next(iter(_FN_CACHE)))
        _FN_CACHE[blob] = fn
    return fn(task)


class ProcessBackend(Backend):
    """Process-pool backend with chunked task batches.

    ``chunksize`` controls how many tasks ship to a worker per round trip;
    the default targets four batches per worker, which amortizes payload
    transfer without starving the pool.  The task function is pickled once
    in the parent and cached per worker (see :func:`_call_pickled`); task
    payloads must still be picklable.
    """

    name = "processes"

    def __init__(self, max_workers: int | None = None, chunksize: int | None = None):
        super().__init__(max_workers)
        if chunksize is not None and chunksize <= 0:
            raise ValueError(f"chunksize must be positive, got {chunksize}")
        self.chunksize = chunksize

    def _make_pool(self):
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(max_workers=self.max_workers)
        # ProcessPoolExecutor spawns workers lazily on first submit, which
        # would bill worker startup to whatever phase runs first; spawn
        # them now so phase timings measure the phases.
        for future in [pool.submit(_noop) for _ in range(self.max_workers)]:
            future.result()
        return pool

    def run_tasks(
        self, fn: Callable[[Any], Any], tasks: Iterable[Any]
    ) -> list[Any]:
        """Run tasks on a process pool in chunked batches.

        Streaming (non-sequence) task iterables go through windowed
        single-task submission instead of chunked ``map`` — the function
        blob is still pickled once and cached per worker.
        """
        if not isinstance(tasks, Sequence):
            call = partial(_call_pickled, pickle.dumps(fn))
            window = self.max_workers * _WINDOW_PER_WORKER
            if self._pool is not None:
                return self._count_tasks(
                    _windowed_submit(self._pool, call, tasks, window)
                )
            with self._make_pool() as pool:
                return self._count_tasks(
                    _windowed_submit(pool, call, tasks, window)
                )
        if not tasks:
            return []
        call = partial(_call_pickled, pickle.dumps(fn))
        chunksize = self.chunksize or max(
            1, -(-len(tasks) // (self.max_workers * 4))
        )
        if self._pool is not None:
            return self._count_tasks(
                list(self._pool.map(call, tasks, chunksize=chunksize))
            )
        with self._make_pool() as pool:
            return self._count_tasks(
                list(pool.map(call, tasks, chunksize=chunksize))
            )


#: Name -> backend class; the CLI and benches iterate this.
BACKENDS: dict[str, type[Backend]] = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def get_backend(
    spec: str | Backend, *, max_workers: int | None = None
) -> Backend:
    """Resolve a backend name (or pass through an instance).

    ``max_workers`` is forwarded when constructing by name and ignored for
    pre-built instances (they already carry their pool size).
    """
    if isinstance(spec, Backend):
        return spec
    if spec not in BACKENDS:
        raise ValueError(
            f"unknown backend {spec!r}; choose from {sorted(BACKENDS)}"
        )
    return BACKENDS[spec](max_workers=max_workers)
