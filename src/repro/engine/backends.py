"""Pluggable task-execution backends for the engine.

A backend answers one question: given a task function and a list of task
payloads, run them all and return the results *in task order*.  Everything
schema- or MapReduce-specific lives in :mod:`repro.engine.engine`; backends
are interchangeable executors, so correctness is backend-independent and the
backends can be compared purely on wall clock.

Three backends ship:

* ``serial`` — a plain loop; the reference the others are validated against.
* ``threads`` — :class:`concurrent.futures.ThreadPoolExecutor`; wins when
  task bodies release the GIL (I/O, numpy) and costs little otherwise.
* ``processes`` — :class:`concurrent.futures.ProcessPoolExecutor` with
  chunked task batches; wins on CPU-bound reduce work, but requires the
  task function and payloads to be picklable (module-level functions and
  :func:`functools.partial` over them qualify; closures do not).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Any, Callable, Sequence


def available_workers() -> int:
    """Worker count the machine can actually run at once.

    Prefers the scheduling affinity (respects container CPU limits) and
    falls back to the raw core count; never less than 1.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


class Backend(ABC):
    """Executes a batch of independent tasks, preserving task order."""

    #: Registry name; subclasses override.
    name: str = "abstract"

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers or available_workers()

    @abstractmethod
    def run_tasks(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any]
    ) -> list[Any]:
        """Run ``fn`` over every task payload; results keep task order."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class SerialBackend(Backend):
    """Reference backend: runs every task inline, one after another."""

    name = "serial"

    def __init__(self, max_workers: int | None = None):
        super().__init__(max_workers=1)

    def run_tasks(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any]
    ) -> list[Any]:
        """Run tasks in a plain loop."""
        return [fn(task) for task in tasks]


class ThreadBackend(Backend):
    """Thread-pool backend built on :class:`ThreadPoolExecutor`."""

    name = "threads"

    def run_tasks(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any]
    ) -> list[Any]:
        """Run tasks on a thread pool; exceptions propagate to the caller."""
        if not tasks:
            return []
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(fn, tasks))


class ProcessBackend(Backend):
    """Process-pool backend with chunked task batches.

    ``chunksize`` controls how many tasks ship to a worker per round trip;
    the default targets four batches per worker, which amortizes pickling
    without starving the pool.  Task functions and payloads must be
    picklable.
    """

    name = "processes"

    def __init__(self, max_workers: int | None = None, chunksize: int | None = None):
        super().__init__(max_workers)
        if chunksize is not None and chunksize <= 0:
            raise ValueError(f"chunksize must be positive, got {chunksize}")
        self.chunksize = chunksize

    def run_tasks(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any]
    ) -> list[Any]:
        """Run tasks on a process pool in chunked batches."""
        if not tasks:
            return []
        from concurrent.futures import ProcessPoolExecutor

        chunksize = self.chunksize or max(
            1, -(-len(tasks) // (self.max_workers * 4))
        )
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(fn, tasks, chunksize=chunksize))


#: Name -> backend class; the CLI and benches iterate this.
BACKENDS: dict[str, type[Backend]] = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def get_backend(
    spec: str | Backend, *, max_workers: int | None = None
) -> Backend:
    """Resolve a backend name (or pass through an instance).

    ``max_workers`` is forwarded when constructing by name and ignored for
    pre-built instances (they already carry their pool size).
    """
    if isinstance(spec, Backend):
        return spec
    if spec not in BACKENDS:
        raise ValueError(
            f"unknown backend {spec!r}; choose from {sorted(BACKENDS)}"
        )
    return BACKENDS[spec](max_workers=max_workers)
