"""Cross-validation of the engine against the reference simulator.

The simulator (:class:`repro.mapreduce.job.MapReduceJob`) is the ground
truth for the paper's metrics; the engine must agree with it exactly — same
outputs in the same order, same :class:`~repro.mapreduce.metrics.JobMetrics`
— before its parallel backends mean anything.  This module runs both
executors on identical inputs and diffs every observable.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Sequence

from repro.core.schema import A2ASchema, X2YSchema
from repro.engine.backends import Backend
from repro.engine.engine import EngineResult, execute_schema
from repro.engine.routing import build_schema_plan
from repro.mapreduce.job import JobResult, MapReduceJob
from repro.mapreduce.metrics import JobMetrics
from repro.mapreduce.types import ReduceFn


@dataclass(frozen=True)
class CrossValidationReport:
    """Diff between an engine run and a simulator run on the same inputs."""

    outputs_match: bool
    metrics_match: bool
    mismatches: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """True when outputs and every metric field agree exactly."""
        return self.outputs_match and self.metrics_match

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.ok:
            return "engine == simulator (outputs and metrics identical)"
        return "engine != simulator: " + "; ".join(self.mismatches)


#: JobMetrics fields that describe the *physical* execution rather than
#: the paper's analytical model.  The simulator never spills, so an
#: out-of-core engine run legitimately differs here; everything else must
#: match exactly.
_EXECUTION_ONLY_FIELDS = frozenset(
    {"spilled_bytes", "spill_runs", "peak_buffered_pairs"}
)


def compare_results(
    engine_result: EngineResult, job_result: JobResult
) -> CrossValidationReport:
    """Diff outputs (order-sensitive) and every analytical
    :class:`JobMetrics` field (spill counters are execution facts and are
    excluded from the diff)."""
    mismatches: list[str] = []
    outputs_match = engine_result.outputs == job_result.outputs
    if not outputs_match:
        mismatches.append(
            f"outputs differ ({len(engine_result.outputs)} engine vs "
            f"{len(job_result.outputs)} simulator records)"
        )
    metrics_match = True
    for spec in fields(JobMetrics):
        if spec.name in _EXECUTION_ONLY_FIELDS:
            continue
        mine = getattr(engine_result.metrics, spec.name)
        theirs = getattr(job_result.metrics, spec.name)
        if mine != theirs:
            metrics_match = False
            mismatches.append(f"metrics.{spec.name}: {mine!r} != {theirs!r}")
    return CrossValidationReport(
        outputs_match=outputs_match,
        metrics_match=metrics_match,
        mismatches=tuple(mismatches),
    )


def validate_against_simulator(
    schema: A2ASchema | X2YSchema,
    records: Sequence[Any] | tuple[Sequence[Any], Sequence[Any]],
    reduce_fn: ReduceFn,
    *,
    combiner_fn: ReduceFn | None = None,
    backend: str | Backend = "serial",
    num_workers: int | None = None,
    memory_budget: int | None = None,
) -> tuple[EngineResult, JobResult, CrossValidationReport]:
    """Run a schema-driven job on both executors and diff the results.

    The simulator is fed the *same* wrapped records and the same routing
    map function the engine uses (both come from
    :func:`repro.engine.routing.build_schema_plan`), so any disagreement is
    an executor bug rather than an encoding difference.  A *memory_budget*
    routes the engine through the spill-to-disk shuffle, proving the
    out-of-core path produces the simulator's exact outputs and analytical
    metrics.
    """
    engine_result = execute_schema(
        schema,
        records,
        reduce_fn,
        combiner_fn=combiner_fn,
        backend=backend,
        num_workers=num_workers,
        memory_budget=memory_budget,
    )

    map_fn, size_of, wrapped = build_schema_plan(schema, records)
    job = MapReduceJob(
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        combiner_fn=combiner_fn,
        size_of=size_of,
        reducer_capacity=schema.instance.q,
        strict_capacity=True,
    )
    job_result = job.run(wrapped)
    return engine_result, job_result, compare_results(engine_result, job_result)
