"""Parallel execution engine: run mapping schemas on pluggable backends.

This package turns a solved :class:`~repro.core.schema.A2ASchema` or
:class:`~repro.core.schema.X2YSchema` into an actually-executed MapReduce
job: records are replicated to exactly the reducers the schema assigns
their input to, map tasks pre-partition their output by reduce task
(mapper-side partitioned shuffle), and the phases run on a pluggable
backend (``serial``, ``threads``, ``processes``) sharing one worker pool
per run.  The serial backend is validated to be byte-identical to the
reference simulator (:mod:`repro.mapreduce`); the parallel backends
translate schema quality into wall-clock speedups.

Quickstart::

    from repro import A2AInstance, solve_a2a
    from repro.engine import execute_schema

    instance = A2AInstance(sizes=[3, 5, 2, 7, 4], q=12)
    schema = solve_a2a(instance).require_valid()
    records = ["payload-%d" % i for i in range(instance.m)]

    def reduce_fn(reducer, values):   # values are (input_index, record)
        yield reducer, sorted(i for i, _ in values)

    result = execute_schema(schema, records, reduce_fn, backend="threads")
    print(result.outputs, result.engine.as_row())
"""

from repro.engine.backends import (
    BACKENDS,
    Backend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_workers,
    get_backend,
)
from repro.engine.codec import (
    decode_block,
    decode_block_groups,
    encode_groups,
    encode_items,
    select_codec,
)
from repro.engine.config import ExecutionConfig, resolve_execution
from repro.engine.crossval import (
    CrossValidationReport,
    compare_results,
    validate_against_simulator,
)
from repro.engine.engine import EngineResult, ExecutionEngine, execute_schema
from repro.engine.metrics import EngineMetrics, PhaseTimings
from repro.engine.shm import ShmSlice, shm_available
from repro.engine.routing import (
    a2a_memberships,
    a2a_meeting_table,
    canonical_meeting,
    x2y_memberships,
    x2y_meeting_table,
)

__all__ = [
    "ExecutionEngine",
    "ExecutionConfig",
    "resolve_execution",
    "EngineResult",
    "execute_schema",
    "Backend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "BACKENDS",
    "get_backend",
    "available_workers",
    "EngineMetrics",
    "PhaseTimings",
    "select_codec",
    "encode_items",
    "encode_groups",
    "decode_block",
    "decode_block_groups",
    "ShmSlice",
    "shm_available",
    "CrossValidationReport",
    "compare_results",
    "validate_against_simulator",
    "a2a_memberships",
    "a2a_meeting_table",
    "x2y_memberships",
    "x2y_meeting_table",
    "canonical_meeting",
]
