"""The execution engine: parallel map/shuffle/reduce over pluggable backends.

Where :class:`repro.mapreduce.job.MapReduceJob` *simulates* a job to define
the paper's metrics, the engine *executes* the same model as physical tasks
with a **partitioned shuffle**:

* A *map task* takes a chunk of records and returns its pairs already
  grouped by key and bucketed by reduce partition (plus its pair count and
  communication cost), so the parent never re-hashes or re-groups
  individual pairs.  The number of reduce partitions is fixed before the
  map phase, exactly like a real MapReduce deployment.
* The parent's "shuffle" is just a transpose: for each partition it
  collects the per-map-task buckets, in task order.
* A *reduce task* receives its partition's pre-grouped buckets, merges them
  (task order = record order, so value order matches the simulator), checks
  the capacity per key, and reduces — the final merge happens inside the
  parallel task, not on the parent's critical path.

Both phases run inside one backend context, so pooled backends pay pool
startup once per run (phase timings exclude that startup).  The serial
backend remains semantically identical to the simulator — same outputs in
the same order, same :class:`~repro.mapreduce.metrics.JobMetrics` — which is
what the cross-validation in :mod:`repro.engine.crossval` checks, and the
parallel backends produce the same observables for any orderable key space.

:func:`execute_schema` is the schema-driven entry point: it takes a solved
:class:`~repro.core.schema.A2ASchema` or :class:`~repro.core.schema.X2YSchema`
plus per-input records and replicates each record to exactly the reducers
the schema assigns its input to.

Two knobs make the engine *out-of-core*: records may arrive as a streaming
:class:`~repro.dataset.Dataset` (consumed chunk by chunk, never
materialized in the parent), and a ``memory_budget`` bounds the pairs a map
task buffers before spilling sorted runs to disk
(:mod:`repro.engine.spill`), which reduce tasks stream-merge back in
sorted-key order.  Outputs and strict-mode exceptions are identical to the
in-memory path; only the spill counters in the job metrics differ.
"""

from __future__ import annotations

import shutil
import time
from dataclasses import dataclass
from functools import partial
from typing import Any, Hashable, Iterable, Iterator, Sequence

from repro.core.schema import A2ASchema, X2YSchema
from repro.dataset import Dataset, as_dataset, iter_chunks
from repro.engine.backends import Backend, SerialBackend, get_backend
from repro.engine.codec import (
    decode_block_groups,
    encode_groups,
    select_codec,
)
from repro.engine.config import ExecutionConfig
from repro.engine.metrics import EngineMetrics, PhaseTimings
from repro.engine.routing import build_schema_plan
from repro.engine.shm import SegmentReader, ShmSlice
from repro.engine.spill import (
    MapSpill,
    make_spill_dir,
    merge_sources,
    spill_groups,
)
from repro.exceptions import (
    CapacityExceededError,
    InvalidInstanceError,
    ReproError,
    TaskRetryExhaustedError,
    WorkerLostError,
)
from repro.faults import FaultInjector, FaultSpec, RetryPolicy, as_fault_spec
from repro.mapreduce.metrics import JobMetrics
from repro.obs.profiler import PhaseProfiler, as_profiler, profile_worker_task
from repro.obs.trace import Tracer, as_tracer, worker_span
from repro.mapreduce.shuffle import (
    map_record,
    ordered_keys,
    partition_groups,
)
from repro.mapreduce.types import MapFn, ReduceFn, SizeFn, default_size

#: Records below this count are not worth splitting into more map tasks —
#: per-task dispatch overhead would dominate the mapping work.
_MIN_MAP_CHUNK = 16

#: Target number of tasks per pool worker; enough slack for load balancing
#: without drowning the run in task overhead.
_TASKS_PER_WORKER = 4

#: Map chunk size when the record count is unknown (streaming datasets):
#: large enough to amortize dispatch, small enough to bound the number of
#: records in flight per task.
_STREAM_CHUNK = 1024

#: Graceful-degradation order: when ``fallback=True`` and a named backend
#: cannot run (pool construction fails, or workers keep dying past the
#: retry budget), the run is replayed on the next backend in this chain.
_FALLBACK_CHAIN = ("processes", "threads", "serial")


def _should_fall_back(exc: BaseException) -> bool:
    """Whether a failed run is worth replaying on a weaker backend.

    Only *backend* failures qualify: the pool's workers keep dying
    (directly, or as the last error of an exhausted retry budget) or the
    pool cannot be built at all (``OSError`` — resource limits, spawn
    failures).  A blown deadline, a model error, or a user exception
    would fail identically on any backend, so those propagate.
    """
    if isinstance(exc, WorkerLostError):
        return True
    if isinstance(exc, TaskRetryExhaustedError):
        return isinstance(exc.last_error, WorkerLostError)
    if isinstance(exc, ReproError):
        # Everything else the library raises (deadlines, per-task
        # timeouts, injected faults, model errors) fails the same way on
        # any backend — several of these inherit OSError through
        # TimeoutError/ConnectionError, so this check must come first.
        return False
    return isinstance(exc, OSError)


@dataclass(frozen=True)
class EngineResult:
    """Outputs plus metrics of one engine run.

    ``metrics`` carries the paper's analytical quantities (identical to the
    simulator's on the same inputs); ``engine`` carries the physical
    execution facts (phase timings, task counts, backend).
    """

    outputs: list
    metrics: JobMetrics
    engine: EngineMetrics


def _run_map_task(
    chunk: list[Any],
    *,
    map_fn: MapFn,
    combiner_fn: ReduceFn | None,
    size_of: SizeFn,
    num_partitions: int,
    memory_budget: int | None = None,
    spill_dir: str | None = None,
    check_keys: bool = True,
    encode: bool = False,
) -> tuple[Any, int, int, int, int, MapSpill | None, int, float]:
    """One map task: map (and combine) a chunk into partition-bucketed groups.

    Returns ``(buckets, pair_count, comm, record_count, peak_buffered,
    spill, encoded_bytes, encode_seconds)`` where ``buckets[p]`` maps
    each key of reduce partition ``p`` to its value list in record order.
    Pair counting and size accounting happen here, in the (parallel)
    task, so the parent does no per-pair work at all.  Module-level so
    process-pool workers can unpickle it; the configuration is bound via
    :func:`functools.partial` and pickled once per phase.

    With *encode* (set exactly when the backend ships results across a
    process boundary), each non-empty bucket is returned as one encoded
    block (:mod:`repro.engine.codec`) instead of a dict — the codec is
    probed once from this task's keys, never per record — and empty
    buckets as ``None``.  ``encoded_bytes``/``encode_seconds`` report
    that work; both are 0 on the in-process backends, whose dict buckets
    are handed over by reference.

    With a *memory_budget*, the task flushes its buffered groups to
    per-partition sorted run files in *spill_dir* whenever the buffered
    pair count reaches the budget; whatever remains at the end of the
    chunk is returned in-memory as usual, so unbudgeted runs take this
    exact code path with zero flushes.  *check_keys* rejects keys that are
    not equal to themselves (NaN floats and friends): such keys cannot be
    grouped consistently by any shuffle — each NaN object becomes its own
    dict entry — and would silently diverge between the dict-based and the
    sorted spill-file merge.
    """
    groups: dict[Hashable, list[Any]] = {}
    pair_count = 0
    comm = 0
    record_count = 0
    buffered = 0
    peak_buffered = 0
    spill = MapSpill() if memory_budget is not None else None
    for record in chunk:
        record_count += 1
        emitted = map_record(record, map_fn, combiner_fn)
        pair_count += len(emitted)
        buffered += len(emitted)
        for key, value in emitted:
            comm += size_of(value)
            values = groups.get(key)
            if values is None:
                if check_keys and key != key:
                    raise InvalidInstanceError(
                        f"map emitted a non-self-equal key {key!r} (e.g. "
                        "NaN): such keys cannot be grouped consistently; "
                        "use a self-equal surrogate key instead"
                    )
                groups[key] = [value]
            else:
                values.append(value)
        if spill is not None:
            # Peak tracking is tied to the budget: unbounded runs report 0
            # so their JobMetrics stay identical across backends (the
            # unbounded peak would just echo the backend's chunking).
            if buffered > peak_buffered:
                peak_buffered = buffered
            if buffered >= memory_budget and groups:
                spill_groups(groups, num_partitions, spill_dir, spill)
                groups = {}
                buffered = 0
    buckets: Any = partition_groups(groups, num_partitions)
    encoded_bytes = 0
    encode_seconds = 0.0
    if encode:
        encode_started = time.perf_counter()
        codec = select_codec(groups)
        blocks: list[bytes | None] = []
        for bucket in buckets:
            if bucket:
                block = encode_groups(bucket, codec)
                encoded_bytes += len(block)
                blocks.append(block)
            else:
                blocks.append(None)
        buckets = blocks
        encode_seconds = time.perf_counter() - encode_started
    return (
        buckets,
        pair_count,
        comm,
        record_count,
        peak_buffered,
        spill,
        encoded_bytes,
        encode_seconds,
    )


def _resolve_sources(
    sources: list[Any],
) -> tuple[list[Any], float]:
    """Decode a reduce task's block sources back into bucket dicts.

    ``bytes`` sources (pipe-shipped blocks) and :class:`ShmSlice`
    descriptors (shared-memory staged blocks) become dicts in place;
    dict buckets and spill-run paths pass through untouched.  Shm
    segments are attached once per segment, read zero-copy, and detached
    before returning — decoded objects never reference the mapping.
    Returns ``(resolved sources, decode seconds)``.
    """
    if not any(
        isinstance(source, (bytes, ShmSlice)) for source in sources
    ):
        return sources, 0.0
    decode_started = time.perf_counter()
    reader: SegmentReader | None = None
    resolved: list[Any] = []
    try:
        for source in sources:
            if isinstance(source, bytes):
                resolved.append(decode_block_groups(source))
            elif isinstance(source, ShmSlice):
                if reader is None:
                    reader = SegmentReader()
                view = reader.view(source)
                try:
                    resolved.append(decode_block_groups(view))
                finally:
                    view.release()
            else:
                resolved.append(source)
    finally:
        if reader is not None:
            reader.close()
    return resolved, time.perf_counter() - decode_started


def _run_reduce_task(
    sources: list[Any],
    *,
    reduce_fn: ReduceFn,
    size_of: SizeFn,
    capacity: int | None,
    strict: bool,
) -> tuple[
    list[tuple[Hashable, list[Any]]] | None,
    list[tuple[Hashable, int]],
    float,
]:
    """One reduce task: merge a partition's sources and reduce each key.

    ``sources`` holds, in spill order (map-task order, then flush order
    within a task, with each task's in-memory leftover last), bucket
    dicts, encoded blocks (``bytes`` or :class:`ShmSlice` descriptors —
    decoded here, in the parallel task), or paths of sorted run files.
    Extending value lists in that order reproduces the simulator's global
    record order.  When every source is in-memory the merge is the
    dict-based fast path; as soon as one source lives on disk the whole
    partition goes through the streaming external merge, which holds one
    key's merged values at a time.  Returns ``(results, loads,
    decode_seconds)``: per-key outputs plus per-key loads plus the time
    spent decoding block sources.  Under strict capacity, a task whose
    partition contains an overloaded key discards its outputs and returns
    ``results=None`` — the parent merges all loads and raises for the
    globally smallest offending key, so the strict-mode exception is
    identical to the simulator's.
    """
    sources, decode_seconds = _resolve_sources(sources)
    stream: Iterable[tuple[Hashable, list[Any]]]
    if any(isinstance(source, str) for source in sources):
        stream = merge_sources(sources)
    else:
        merged: dict[Hashable, list[Any]] = {}
        for slab in sources:
            for key, values in slab.items():
                existing = merged.get(key)
                if existing is None:
                    merged[key] = values
                else:
                    existing.extend(values)
        stream = ((key, merged[key]) for key in ordered_keys(merged))
    loads: list[tuple[Hashable, int]] = []
    overloaded = False
    results: list[tuple[Hashable, list[Any]]] = []
    for key, values in stream:
        load = sum(size_of(value) for value in values)
        loads.append((key, load))
        if capacity is not None and load > capacity:
            overloaded = True
        if not (strict and overloaded):
            results.append((key, list(reduce_fn(key, values))))
    if strict and overloaded:
        return None, loads, decode_seconds
    return results, loads, decode_seconds


def _traced_task(
    payload: Any,
    *,
    inner: Any,
    ctx: tuple[str, str | None],
    name: str,
) -> tuple[Any, dict[str, Any]]:
    """Run one task under a worker-side span; returns ``(result, span)``.

    Installed around the map/reduce task partials *only when tracing is
    enabled*, so the task functions keep their exact signatures and
    return shapes for the disabled path (and for the tests that unpack
    them directly).  ``ctx`` is the pickled ``(trace id, parent span id)``
    from :meth:`Tracer.worker_context`; the span travels home as a plain
    dict next to the task result and the parent merges it into the trace.
    """
    started = time.perf_counter()
    result = inner(payload)
    return result, worker_span(
        ctx, name, started, time.perf_counter() - started
    )


def _chunk(records: list[Any], chunk_size: int) -> list[list[Any]]:
    """Split records into consecutive chunks of at most *chunk_size*."""
    return [
        records[start : start + chunk_size]
        for start in range(0, len(records), chunk_size)
    ]


@dataclass
class ExecutionEngine:
    """Runs a MapReduce job as parallel tasks on a pluggable backend.

    Attributes:
        map_fn: record -> iterable of (key, value); must be picklable for
            the ``processes`` backend (module-level function or a
            :func:`functools.partial` over one).
        reduce_fn: (key, values) -> iterable of outputs; same picklability
            caveat.
        combiner_fn: optional mapper-side combiner, applied per record.
        size_of: value-size function for capacity/communication accounting;
            picklability caveat again (it runs inside map and reduce tasks).
        reducer_capacity: the paper's ``q``; checked per key, exactly like
            the simulator.
        strict_capacity: raise on overflow (True) or record violations.
        backend: backend name from :data:`repro.engine.backends.BACKENDS`
            or a pre-built :class:`Backend` instance.  A named backend's
            pool lives for exactly one run; a pre-built instance is
            caller-owned — its pool is opened persistently on first use,
            reused by every subsequent run, and released only by
            :meth:`Backend.close` (or the instance's context manager).
        num_workers: worker-pool size (defaults to the machine's cores).
        map_chunk_size: records per map task (default: adaptive — about
            four tasks per worker, but never chunks smaller than 16
            records; a single task on the serial backend).
        num_reduce_tasks: reduce partition count, fixed before the map
            phase so map tasks can pre-partition their output (default:
            four partitions per worker; one on the serial backend).  Empty
            partitions are dropped, so this is an upper bound on dispatched
            reduce tasks.
        memory_budget: maximum key-value pairs a map task buffers before
            spilling its groups to sorted on-disk runs (``None`` keeps the
            fully in-memory shuffle).  Outputs, metrics, and strict-mode
            exceptions are identical either way; the budget only bounds
            memory, at the cost of disk traffic (reported in the job
            metrics' spill counters).
        spill_dir: base directory for spill files (``None``: the system
            temporary directory).  Each run spills into its own
            subdirectory, which is removed when the run finishes.
        tracer: optional :class:`~repro.obs.trace.Tracer`; when given,
            the run emits ``map``/``shuffle``/``reduce``/``post`` phase
            spans plus per-task worker spans (propagated through the
            pickling path on pooled backends) and per-flush ``spill``
            spans.  ``None`` (the default) disables tracing at zero cost.
        profiler: optional :class:`~repro.obs.profiler.PhaseProfiler`;
            when given, each phase additionally records CPU seconds and
            peak RSS (from the profiler's background sampler) plus
            deterministic ``cProfile`` function tables — captured inside
            worker tasks for map/reduce (stats ride the same pickling
            path as worker spans) and parent-side for shuffle/post.
            ``None`` (the default) disables profiling at zero cost,
            exactly like *tracer*.
        retry: per-task :class:`~repro.faults.RetryPolicy`.  Any
            fault-plane knob (retry, faults, task_timeout, deadline)
            routes map/reduce dispatch through
            :meth:`Backend.run_tasks_resilient`; with all of them off the
            engine takes the exact plain dispatch path at zero cost.
            Retry is safe here by construction: map and reduce tasks are
            pure functions of their schema-assigned partitions, so a
            replayed task recomputes identical output.
        faults: deterministic fault injection
            (:class:`~repro.faults.FaultSpec` or spec string) for chaos
            testing; decisions are a pure function of the spec's seed and
            the task coordinates, so outputs under injection are
            byte-identical to a fault-free run on every backend.
        task_timeout: seconds one task attempt may run before being
            abandoned and retried.
        deadline: seconds the whole run may take
            (:class:`~repro.exceptions.DeadlineExceededError` once
            passed; checked between tasks, never preempting one).
        fallback: opt-in graceful degradation for *named* backends: when
            the configured backend cannot run (pool construction fails,
            or workers keep dying past the retry budget), replay the
            whole run down ``processes → threads → serial``.  Requires a
            re-iterable record source (lists, factory-backed datasets).
    """

    map_fn: MapFn
    reduce_fn: ReduceFn
    combiner_fn: ReduceFn | None = None
    size_of: SizeFn = default_size
    reducer_capacity: int | None = None
    strict_capacity: bool = True
    backend: str | Backend = "serial"
    num_workers: int | None = None
    map_chunk_size: int | None = None
    num_reduce_tasks: int | None = None
    memory_budget: int | None = None
    spill_dir: str | None = None
    tracer: Tracer | None = None
    profiler: PhaseProfiler | None = None
    retry: RetryPolicy | None = None
    faults: FaultSpec | str | None = None
    task_timeout: float | None = None
    deadline: float | None = None
    fallback: bool = False

    @classmethod
    def from_config(
        cls,
        config: ExecutionConfig,
        *,
        map_fn: MapFn,
        reduce_fn: ReduceFn,
        **kwargs: Any,
    ) -> "ExecutionEngine":
        """Build an engine from an :class:`ExecutionConfig` plus job fields."""
        return cls(
            map_fn=map_fn, reduce_fn=reduce_fn, **config.engine_kwargs(), **kwargs
        )

    def run(self, records: Iterable[Any] | Dataset) -> EngineResult:
        """Execute the job end-to-end and return outputs plus metrics.

        *records* may be any iterable or a :class:`~repro.dataset.Dataset`;
        non-materialized datasets are consumed chunk by chunk, so the full
        input is never held in the parent at once (pooled backends keep a
        bounded submission window of chunks in flight).  With the fault
        plane active the map phase materializes its chunks instead — a
        retried task must be replayable — and the run deadline starts
        counting here.
        """
        if self.memory_budget is not None and self.memory_budget <= 0:
            raise InvalidInstanceError(
                f"memory_budget must be positive, got {self.memory_budget}"
            )
        for name in ("task_timeout", "deadline"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise InvalidInstanceError(
                    f"{name} must be positive, got {value}"
                )
        deadline_at = (
            time.monotonic() + self.deadline
            if self.deadline is not None
            else None
        )
        dataset = as_dataset(records)
        chain = self._backend_chain()
        last_exc: BaseException | None = None
        for position, backend_spec in enumerate(chain):
            if position:
                as_tracer(self.tracer).instant(
                    "fallback",
                    category="faults",
                    from_backend=str(chain[0]),
                    to_backend=str(backend_spec),
                    error=type(last_exc).__name__,
                )
            try:
                return self._run_on(
                    backend_spec,
                    dataset,
                    deadline_at,
                    fallback_from=chain[0] if position else None,
                )
            except BaseException as exc:  # noqa: BLE001 - reraised below
                if position + 1 >= len(chain) or not _should_fall_back(exc):
                    raise
                last_exc = exc
        raise last_exc  # pragma: no cover - loop always returns or raises

    def _backend_chain(self) -> list[str | Backend]:
        """The backends this run may try, strongest first.

        A single entry unless :attr:`fallback` is on; live
        :class:`Backend` instances never fall back (their pool lifecycle
        belongs to the caller).
        """
        if not self.fallback or not isinstance(self.backend, str):
            return [self.backend]
        if self.backend not in _FALLBACK_CHAIN:
            return [self.backend]
        start = _FALLBACK_CHAIN.index(self.backend)
        return list(_FALLBACK_CHAIN[start:])

    def _run_on(
        self,
        backend_spec: str | Backend,
        dataset: Dataset,
        deadline_at: float | None,
        fallback_from: str | Backend | None = None,
    ) -> EngineResult:
        """One attempt of the whole run on one backend."""
        backend = get_backend(backend_spec, max_workers=self.num_workers)
        if isinstance(backend_spec, Backend) and not backend.is_open:
            # A pre-built backend is caller-owned: open its pool
            # persistently so consecutive runs on the same instance reuse
            # one pool instead of spawning (and tearing down) a pool per
            # run.  The caller releases it with Backend.close().  A pool
            # the caller already opened (open() or an enclosing context)
            # keeps the caller's lifecycle untouched.
            backend.open()
        num_partitions = self.num_reduce_tasks or self._default_partitions(
            backend
        )
        run_spill_dir = (
            make_spill_dir(self.spill_dir)
            if self.memory_budget is not None
            else None
        )
        # The block transport (a shared-memory arena on the processes
        # backend, None for pipe/inline shipping) is owned here: closing
        # it in the finally guarantees every staged segment is unlinked on
        # success, failure, and fallback alike.  Worker loss cannot leak
        # segments either way — they are created and unlinked only in this
        # parent process, so a replayed reduce task just re-attaches.
        transport = backend.block_transport() if backend.ships_blocks else None
        try:
            return self._run_phases(
                backend,
                dataset,
                num_partitions,
                run_spill_dir,
                deadline_at,
                fallback_from,
                transport,
            )
        finally:
            if transport is not None:
                transport.close()
            if run_spill_dir is not None:
                shutil.rmtree(run_spill_dir, ignore_errors=True)

    def _fault_plane(
        self, backend: Backend, tracer: Tracer, deadline_at: float | None
    ) -> tuple[Any, list[int]]:
        """Build the resilient-dispatch closure for this run, or ``None``.

        Returns ``(dispatch, retry_counter)`` where *dispatch* is ``None``
        when every fault-plane knob is off — the phases then call
        :meth:`Backend.run_tasks` directly, keeping the happy path free
        of any fault-plane work.
        """
        spec = as_fault_spec(self.faults)
        injection = spec is not None and spec.enabled
        retries = [0]
        if not (
            self.retry is not None
            or injection
            or self.task_timeout is not None
            or deadline_at is not None
        ):
            return None, retries
        policy = self.retry or RetryPolicy()
        injector = FaultInjector(spec) if injection else None

        def on_retry(
            phase: str,
            index: int,
            attempt: int,
            exc: BaseException,
            delay: float,
        ) -> None:
            retries[0] += 1
            tracer.instant(
                "retry",
                category="faults",
                phase=phase,
                task=index,
                attempt=attempt,
                error=type(exc).__name__,
                backoff_s=round(delay, 4),
            )

        def dispatch(
            fn: Any, tasks: Iterable[Any], phase: str
        ) -> list[Any]:
            return backend.run_tasks_resilient(
                fn,
                tasks,
                policy=policy,
                injector=injector,
                phase=phase,
                task_timeout=self.task_timeout,
                deadline_at=deadline_at,
                on_retry=on_retry,
            )

        return dispatch, retries

    def _run_phases(
        self,
        backend: Backend,
        dataset: Dataset,
        num_partitions: int,
        run_spill_dir: str | None,
        deadline_at: float | None = None,
        fallback_from: str | Backend | None = None,
        transport: Any = None,
    ) -> EngineResult:
        """The three phases plus the post-pass (spill dir and block
        transport are owned by :meth:`_run_on`)."""
        tracer = as_tracer(self.tracer)
        profiler = as_profiler(self.profiler)
        resilient, retry_counter = self._fault_plane(
            backend, tracer, deadline_at
        )
        rebuilds_before = backend.pool_rebuilds

        def run_phase(fn: Any, tasks: Iterable[Any], phase: str) -> list[Any]:
            if resilient is not None:
                return resilient(fn, tasks, phase)
            return backend.run_tasks(fn, tasks)

        with backend:
            # --- map phase: chunk records into tasks; each task returns its
            # pairs pre-grouped by key and bucketed by reduce partition
            # (overflow beyond the memory budget goes to sorted spill runs).
            with tracer.span(
                "map", category="engine", backend=backend.name
            ) as map_span, profiler.phase("map"):
                map_started = time.perf_counter()
                chunk_size = self.map_chunk_size or self._default_chunk(
                    dataset.length, backend, self.memory_budget
                )
                chunks: Iterable[list[Any]]
                if dataset.is_materialized:
                    materialized = dataset.materialize()
                    chunks = (
                        _chunk(materialized, chunk_size)
                        if materialized
                        else []
                    )
                else:
                    chunks = iter_chunks(dataset, chunk_size)
                map_task = partial(
                    _run_map_task,
                    map_fn=self.map_fn,
                    combiner_fn=self.combiner_fn,
                    size_of=self.size_of,
                    num_partitions=num_partitions,
                    memory_budget=self.memory_budget,
                    spill_dir=run_spill_dir,
                    check_keys=(
                        self.strict_capacity or self.memory_budget is not None
                    ),
                    encode=backend.ships_blocks,
                )
                ctx = tracer.worker_context()
                pctx = profiler.worker_context()
                task_fn: Any = map_task
                if ctx is not None:
                    task_fn = partial(
                        _traced_task, inner=task_fn, ctx=ctx, name="map_task"
                    )
                if pctx is not None:
                    task_fn = partial(profile_worker_task, inner=task_fn)
                raw_map = run_phase(task_fn, chunks, "map")
                if pctx is not None:
                    raw_map = profiler.merge_worker_results("map", raw_map)
                if ctx is not None:
                    map_results = self._merge_map_spans(tracer, raw_map)
                else:
                    map_results = raw_map
                map_span.set("tasks", len(map_results))
                map_seconds = time.perf_counter() - map_started

            # --- shuffle: a transpose.  Collect each partition's sources
            # across map tasks — spilled runs in flush order, then the
            # task's in-memory leftover (a dict bucket, or an opaque
            # encoded block on block-shipping backends) — and drop empty
            # partitions; no per-pair or per-key work happens here.  With
            # a shared-memory transport, each partition's blocks are then
            # staged into one segment and replaced by slice descriptors.
            with tracer.span(
                "shuffle", category="engine"
            ) as shuffle_span, profiler.phase("shuffle", capture=True):
                shuffle_started = time.perf_counter()
                map_inputs = sum(result[3] for result in map_results)
                map_pairs = sum(result[1] for result in map_results)
                comm = sum(result[2] for result in map_results)
                peak_buffered = max(
                    (result[4] for result in map_results), default=0
                )
                spilled_bytes = sum(
                    result[5].spilled_bytes
                    for result in map_results
                    if result[5] is not None
                )
                spill_runs = sum(
                    result[5].spill_runs
                    for result in map_results
                    if result[5] is not None
                )
                encoded_bytes = sum(result[6] for result in map_results)
                encode_seconds = sum(result[7] for result in map_results)
                partitions: list[list[Any]] = []
                for p in range(num_partitions):
                    sources: list[Any] = []
                    for result in map_results:
                        spill = result[5]
                        if spill is not None:
                            sources.extend(spill.partition_runs(p))
                        if result[0][p]:
                            sources.append(result[0][p])
                    if sources:
                        if transport is not None:
                            sources = transport.stage(sources)
                        partitions.append(sources)
                shm_segments = (
                    transport.segments_created
                    if transport is not None
                    else 0
                )
                shuffle_span.set("pairs", map_pairs)
                shuffle_span.set("partitions", len(partitions))
                shuffle_span.set("spilled_bytes", spilled_bytes)
                if encoded_bytes:
                    shuffle_span.set("encoded_bytes", encoded_bytes)
                if shm_segments:
                    shuffle_span.set("shm_segments", shm_segments)
                if spill_runs and profiler.enabled:
                    profiler.record(
                        "spill",
                        sum(
                            duration
                            for result in map_results
                            if result[5] is not None
                            for _, duration, _ in result[5].flush_windows
                        ),
                        bytes=spilled_bytes,
                        runs=spill_runs,
                    )
                shuffle_seconds = time.perf_counter() - shuffle_started

            # --- reduce phase: each task merges its partition's sources,
            # accounts per-key loads, and reduces.
            with tracer.span(
                "reduce", category="engine"
            ) as reduce_span, profiler.phase("reduce"):
                reduce_started = time.perf_counter()
                reduce_task = partial(
                    _run_reduce_task,
                    reduce_fn=self.reduce_fn,
                    size_of=self.size_of,
                    capacity=self.reducer_capacity,
                    strict=self.strict_capacity,
                )
                ctx = tracer.worker_context()
                pctx = profiler.worker_context()
                task_fn = reduce_task
                if ctx is not None:
                    task_fn = partial(
                        _traced_task,
                        inner=task_fn,
                        ctx=ctx,
                        name="reduce_task",
                    )
                if pctx is not None:
                    task_fn = partial(profile_worker_task, inner=task_fn)
                raw_reduce = run_phase(task_fn, partitions, "reduce")
                if pctx is not None:
                    raw_reduce = profiler.merge_worker_results(
                        "reduce", raw_reduce
                    )
                if ctx is not None:
                    task_results = self._merge_reduce_spans(
                        tracer, raw_reduce
                    )
                else:
                    task_results = raw_reduce
                reduce_span.set("tasks", len(partitions))
                reduce_run_seconds = time.perf_counter() - reduce_started

        # --- post-pass (pool already released; its shutdown is not timed):
        # merge per-task loads, enforce capacity in global sorted-key order
        # (identical to the simulator), and reassemble outputs in that same
        # order.
        post_started = time.perf_counter()
        with tracer.span(
            "post", category="engine"
        ) as post_span, profiler.phase("post", capture=True):
            loads: dict[Hashable, int] = {}
            outputs_by_key: dict[Hashable, list[Any]] = {}
            task_loads: list[int] = []
            decode_seconds = 0.0
            for results, partition_loads, task_decode in task_results:
                task_loads.append(sum(load for _, load in partition_loads))
                loads.update(partition_loads)
                decode_seconds += task_decode
                if results is not None:
                    for key, outs in results:
                        outputs_by_key[key] = outs
            keys = ordered_keys(loads)
            violations: list[Hashable] = []
            if self.reducer_capacity is not None:
                for key in keys:
                    if loads[key] > self.reducer_capacity:
                        if self.strict_capacity:
                            raise CapacityExceededError(
                                f"reducer for key {key!r} received load "
                                f"{loads[key]} > capacity "
                                f"{self.reducer_capacity}",
                                key=key,
                                load=loads[key],
                                capacity=self.reducer_capacity,
                            )
                        violations.append(key)
            outputs = [out for key in keys for out in outputs_by_key[key]]
            post_span.set("outputs", len(outputs))
        reduce_seconds = reduce_run_seconds + (
            time.perf_counter() - post_started
        )

        metrics = JobMetrics(
            map_input_records=map_inputs,
            map_output_pairs=map_pairs,
            communication_cost=comm,
            num_reducers=len(loads),
            reducer_loads=loads,
            max_reducer_load=max(loads.values(), default=0),
            capacity=self.reducer_capacity,
            capacity_violations=tuple(violations),
            output_records=len(outputs),
            spilled_bytes=spilled_bytes,
            spill_runs=spill_runs,
            peak_buffered_pairs=peak_buffered,
        )
        engine_metrics = EngineMetrics(
            backend=backend.name,
            num_workers=backend.max_workers,
            num_map_tasks=len(map_results),
            num_reduce_tasks=len(partitions),
            timings=PhaseTimings(
                map_seconds=map_seconds,
                shuffle_seconds=shuffle_seconds,
                reduce_seconds=reduce_seconds,
            ),
            bytes_moved=comm,
            task_loads=tuple(task_loads),
            capacity=self.reducer_capacity,
            task_retries=retry_counter[0],
            pool_rebuilds=backend.pool_rebuilds - rebuilds_before,
            fallback_backend=(
                backend.name if fallback_from is not None else None
            ),
            encoded_bytes=encoded_bytes,
            encode_seconds=encode_seconds,
            decode_seconds=decode_seconds,
            shm_segments=shm_segments,
        )
        return EngineResult(
            outputs=outputs, metrics=metrics, engine=engine_metrics
        )

    @staticmethod
    def _merge_map_spans(
        tracer: Tracer, raw: list[tuple[Any, dict[str, Any]]]
    ) -> list[Any]:
        """Unwrap traced map-task results and fold their spans into the trace.

        Each worker span is enriched with the task's measured counters
        before merging; a map task that spilled additionally contributes
        one ``spill`` child span per flush window, so disk pressure shows
        up on the timeline exactly where it occurred.
        """
        results: list[Any] = []
        worker_spans: list[dict[str, Any]] = []
        for result, span_dict in raw:
            args = span_dict["args"]
            args["records"] = result[3]
            args["pairs"] = result[1]
            if result[6]:
                args["encoded_bytes"] = result[6]
            spill = result[5]
            if spill is not None and spill.flush_windows:
                args["spilled_bytes"] = spill.spilled_bytes
                for start, duration, nbytes in spill.flush_windows:
                    tracer.record(
                        "spill",
                        start=start,
                        duration=duration,
                        category="engine",
                        parent=span_dict["id"],
                        trace_id=span_dict["trace"],
                        bytes=nbytes,
                    )
            results.append(result)
            worker_spans.append(span_dict)
        tracer.add_worker_spans(worker_spans)
        return results

    @staticmethod
    def _merge_reduce_spans(
        tracer: Tracer, raw: list[tuple[Any, dict[str, Any]]]
    ) -> list[Any]:
        """Unwrap traced reduce-task results and fold spans into the trace."""
        results: list[Any] = []
        worker_spans: list[dict[str, Any]] = []
        for result, span_dict in raw:
            span_dict["args"]["keys"] = len(result[1])
            results.append(result)
            worker_spans.append(span_dict)
        tracer.add_worker_spans(worker_spans)
        return results

    @staticmethod
    def _default_chunk(
        num_records: int | None,
        backend: Backend,
        memory_budget: int | None = None,
    ) -> int:
        """Adaptive map chunk size: ~4 tasks per worker, floored at 16
        records per task so dispatch overhead never dominates.

        With an unknown record count (streaming dataset) the chunk is a
        fixed :data:`_STREAM_CHUNK`; with a memory budget it is
        additionally capped at the budget, so a budgeted serial run never
        materializes the whole input as one giant chunk.
        """
        if num_records is None:
            chunk = _STREAM_CHUNK
        elif num_records <= 0:
            return 1
        elif isinstance(backend, SerialBackend):
            chunk = num_records
        else:
            target = -(
                -num_records // (backend.max_workers * _TASKS_PER_WORKER)
            )
            chunk = min(num_records, max(_MIN_MAP_CHUNK, target))
        if memory_budget is not None:
            chunk = min(chunk, max(_MIN_MAP_CHUNK, memory_budget))
        return chunk

    @staticmethod
    def _default_partitions(backend: Backend) -> int:
        """Default reduce partition count: ~4 per worker, 1 when serial."""
        if isinstance(backend, SerialBackend):
            return 1
        return backend.max_workers * _TASKS_PER_WORKER


def execute_schema(
    schema: A2ASchema | X2YSchema,
    records: Sequence[Any] | Dataset | tuple[Sequence[Any], Sequence[Any]],
    reduce_fn: ReduceFn,
    *,
    combiner_fn: ReduceFn | None = None,
    backend: str | Backend = "serial",
    num_workers: int | None = None,
    strict_capacity: bool = True,
    map_chunk_size: int | None = None,
    num_reduce_tasks: int | None = None,
    memory_budget: int | None = None,
    spill_dir: str | None = None,
    config: ExecutionConfig | None = None,
    tracer: Tracer | None = None,
    profiler: PhaseProfiler | None = None,
) -> EngineResult:
    """Execute a solved mapping schema over per-input records.

    For an :class:`A2ASchema`, *records* is a sequence (or streaming
    :class:`~repro.dataset.Dataset`) aligned with the instance's inputs
    (record ``i`` has size ``sizes[i]``); reducers receive values wrapped
    as ``(i, record)``.  For an :class:`X2YSchema`, *records* is a
    ``(x_records, y_records)`` pair and values arrive as
    ``(side, i, record)``.  Each record is replicated to exactly the
    reducers the schema assigns its input to; reduce keys are the schema's
    reducer indices; capacity ``q`` is enforced with the instance's declared
    sizes, so a valid schema can never overflow.

    Execution knobs can be given individually or bundled in *config* (an
    :class:`~repro.engine.config.ExecutionConfig`), which takes precedence
    over the individual keyword arguments when both are supplied.
    *tracer* and *profiler* ride alongside either form: they are live
    objects, never part of the serializable config, and ``None`` keeps
    each disabled.
    """
    map_fn, size_of, wrapped = build_schema_plan(schema, records)
    if config is None:
        config = ExecutionConfig(
            backend=backend,
            num_workers=num_workers,
            map_chunk_size=map_chunk_size,
            num_reduce_tasks=num_reduce_tasks,
            memory_budget=memory_budget,
            spill_dir=spill_dir,
        )
    engine = ExecutionEngine.from_config(
        config,
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        combiner_fn=combiner_fn,
        size_of=size_of,
        reducer_capacity=schema.instance.q,
        strict_capacity=strict_capacity,
        tracer=tracer,
        profiler=profiler,
    )
    return engine.run(wrapped)
