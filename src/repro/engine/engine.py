"""The execution engine: parallel map/shuffle/reduce over pluggable backends.

Where :class:`repro.mapreduce.job.MapReduceJob` *simulates* a job to define
the paper's metrics, the engine *executes* the same model as physical tasks:
records are chunked into map tasks, the shuffle hash-partitions reduce keys
into batched reduce tasks, and both phases run on a
:class:`repro.engine.backends.Backend`.  The serial backend is
semantically identical to the simulator — same outputs in the same order,
same :class:`~repro.mapreduce.metrics.JobMetrics` — which is what the
cross-validation in :mod:`repro.engine.crossval` checks.

:func:`execute_schema` is the schema-driven entry point: it takes a solved
:class:`~repro.core.schema.A2ASchema` or :class:`~repro.core.schema.X2YSchema`
plus per-input records and replicates each record to exactly the reducers
the schema assigns its input to.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Sequence

from repro.core.schema import A2ASchema, X2YSchema
from repro.engine.backends import Backend, SerialBackend, get_backend
from repro.engine.metrics import EngineMetrics, PhaseTimings
from repro.engine.routing import build_schema_plan
from repro.exceptions import CapacityExceededError
from repro.mapreduce.metrics import JobMetrics
from repro.mapreduce.shuffle import (
    group_pairs,
    hash_partition,
    map_record,
    ordered_keys,
)
from repro.mapreduce.types import MapFn, ReduceFn, SizeFn, default_size


@dataclass(frozen=True)
class EngineResult:
    """Outputs plus metrics of one engine run.

    ``metrics`` carries the paper's analytical quantities (identical to the
    simulator's on the same inputs); ``engine`` carries the physical
    execution facts (phase timings, task counts, backend).
    """

    outputs: list
    metrics: JobMetrics
    engine: EngineMetrics


def _run_map_task(
    task: tuple[list[Any], MapFn, ReduceFn | None],
) -> list[tuple[Hashable, Any]]:
    """One map task: map (and combine) a chunk of records into pairs.

    Module-level so process-pool workers can unpickle it; the map function
    travels inside the task payload.
    """
    chunk, map_fn, combiner_fn = task
    pairs: list[tuple[Hashable, Any]] = []
    for record in chunk:
        pairs.extend(map_record(record, map_fn, combiner_fn))
    return pairs


def _run_reduce_task(
    task: tuple[list[tuple[Hashable, list[Any]]], ReduceFn],
) -> list[tuple[Hashable, list[Any]]]:
    """One reduce task: reduce a batch of keys, returning per-key outputs.

    Per-key outputs (rather than a flat list) let the parent reassemble the
    global output in sorted-key order regardless of how keys were batched.
    """
    items, reduce_fn = task
    return [(key, list(reduce_fn(key, values))) for key, values in items]


def _chunk(records: list[Any], chunk_size: int) -> list[list[Any]]:
    """Split records into consecutive chunks of at most *chunk_size*."""
    return [
        records[start : start + chunk_size]
        for start in range(0, len(records), chunk_size)
    ]


@dataclass
class ExecutionEngine:
    """Runs a MapReduce job as parallel tasks on a pluggable backend.

    Attributes:
        map_fn: record -> iterable of (key, value); must be picklable for
            the ``processes`` backend (module-level function or a
            :func:`functools.partial` over one).
        reduce_fn: (key, values) -> iterable of outputs; same picklability
            caveat.
        combiner_fn: optional mapper-side combiner, applied per record.
        size_of: value-size function for capacity/communication accounting.
        reducer_capacity: the paper's ``q``; checked per key, exactly like
            the simulator.
        strict_capacity: raise on overflow (True) or record violations.
        backend: backend name from :data:`repro.engine.backends.BACKENDS`
            or a pre-built :class:`Backend` instance.
        num_workers: worker-pool size (defaults to the machine's cores).
        map_chunk_size: records per map task (default: spread records over
            roughly four tasks per worker).
        reduce_batch_size: keys per reduce task (default: roughly four
            tasks per worker) — the "chunked task batches" knob.
    """

    map_fn: MapFn
    reduce_fn: ReduceFn
    combiner_fn: ReduceFn | None = None
    size_of: SizeFn = default_size
    reducer_capacity: int | None = None
    strict_capacity: bool = True
    backend: str | Backend = "serial"
    num_workers: int | None = None
    map_chunk_size: int | None = None
    reduce_batch_size: int | None = None

    def run(self, records: Iterable[Any]) -> EngineResult:
        """Execute the job end-to-end and return outputs plus metrics."""
        backend = get_backend(self.backend, max_workers=self.num_workers)
        materialized = list(records)

        # --- map phase: chunk records into tasks, run on the backend.
        map_started = time.perf_counter()
        chunk_size = self.map_chunk_size or self._default_batch(
            len(materialized), backend
        )
        chunks = _chunk(materialized, chunk_size) if materialized else []
        map_tasks = [(chunk, self.map_fn, self.combiner_fn) for chunk in chunks]
        pair_lists = backend.run_tasks(_run_map_task, map_tasks)
        map_seconds = time.perf_counter() - map_started

        # --- shuffle: merge in task order (= record order), group by key,
        # account sizes, and enforce the capacity exactly as the simulator
        # does: per key, in sorted-key order.
        shuffle_started = time.perf_counter()
        groups: dict[Hashable, list[Any]] = {}
        map_pairs = 0
        comm = 0
        for pairs in pair_lists:
            map_pairs += len(pairs)
            comm += sum(self.size_of(value) for _, value in pairs)
            group_pairs(pairs, groups)

        keys = ordered_keys(groups)
        loads: dict[Hashable, int] = {}
        violations: list[Hashable] = []
        for key in keys:
            load = sum(self.size_of(v) for v in groups[key])
            loads[key] = load
            if self.reducer_capacity is not None and load > self.reducer_capacity:
                if self.strict_capacity:
                    raise CapacityExceededError(
                        f"reducer for key {key!r} received load {load} "
                        f"> capacity {self.reducer_capacity}",
                        key=key,
                        load=load,
                        capacity=self.reducer_capacity,
                    )
                violations.append(key)

        batch_size = self.reduce_batch_size or self._default_batch(
            len(keys), backend
        )
        num_partitions = max(1, -(-len(keys) // batch_size)) if keys else 0
        partitions = [
            bucket
            for bucket in hash_partition(keys, num_partitions or 1)
            if bucket
        ]
        reduce_tasks = [
            ([(key, groups[key]) for key in bucket], self.reduce_fn)
            for bucket in partitions
        ]
        task_loads = tuple(
            sum(loads[key] for key in bucket) for bucket in partitions
        )
        shuffle_seconds = time.perf_counter() - shuffle_started

        # --- reduce phase: run the batches, then reassemble outputs in
        # sorted-key order so results are byte-identical to the simulator.
        reduce_started = time.perf_counter()
        task_results = backend.run_tasks(_run_reduce_task, reduce_tasks)
        outputs_by_key: dict[Hashable, list[Any]] = {}
        for result in task_results:
            for key, outs in result:
                outputs_by_key[key] = outs
        outputs = [out for key in keys for out in outputs_by_key[key]]
        reduce_seconds = time.perf_counter() - reduce_started

        metrics = JobMetrics(
            map_input_records=len(materialized),
            map_output_pairs=map_pairs,
            communication_cost=comm,
            num_reducers=len(groups),
            reducer_loads=loads,
            max_reducer_load=max(loads.values(), default=0),
            capacity=self.reducer_capacity,
            capacity_violations=tuple(violations),
            output_records=len(outputs),
        )
        engine_metrics = EngineMetrics(
            backend=backend.name,
            num_workers=backend.max_workers,
            num_map_tasks=len(map_tasks),
            num_reduce_tasks=len(reduce_tasks),
            timings=PhaseTimings(
                map_seconds=map_seconds,
                shuffle_seconds=shuffle_seconds,
                reduce_seconds=reduce_seconds,
            ),
            bytes_moved=comm,
            task_loads=task_loads,
            capacity=self.reducer_capacity,
        )
        return EngineResult(
            outputs=outputs, metrics=metrics, engine=engine_metrics
        )

    @staticmethod
    def _default_batch(num_items: int, backend: Backend) -> int:
        """Default batch size: about four tasks per worker, at least 1."""
        if num_items <= 0:
            return 1
        if isinstance(backend, SerialBackend):
            return num_items
        return max(1, -(-num_items // (backend.max_workers * 4)))


def execute_schema(
    schema: A2ASchema | X2YSchema,
    records: Sequence[Any] | tuple[Sequence[Any], Sequence[Any]],
    reduce_fn: ReduceFn,
    *,
    combiner_fn: ReduceFn | None = None,
    backend: str | Backend = "serial",
    num_workers: int | None = None,
    strict_capacity: bool = True,
    map_chunk_size: int | None = None,
    reduce_batch_size: int | None = None,
) -> EngineResult:
    """Execute a solved mapping schema over per-input records.

    For an :class:`A2ASchema`, *records* is a sequence aligned with the
    instance's inputs (record ``i`` has size ``sizes[i]``); reducers receive
    values wrapped as ``(i, record)``.  For an :class:`X2YSchema`, *records*
    is a ``(x_records, y_records)`` pair and values arrive as
    ``(side, i, record)``.  Each record is replicated to exactly the
    reducers the schema assigns its input to; reduce keys are the schema's
    reducer indices; capacity ``q`` is enforced with the instance's declared
    sizes, so a valid schema can never overflow.
    """
    map_fn, size_of, wrapped = build_schema_plan(schema, records)
    engine = ExecutionEngine(
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        combiner_fn=combiner_fn,
        size_of=size_of,
        reducer_capacity=schema.instance.q,
        strict_capacity=strict_capacity,
        backend=backend,
        num_workers=num_workers,
        map_chunk_size=map_chunk_size,
        reduce_batch_size=reduce_batch_size,
    )
    return engine.run(wrapped)
