"""Execution-side metrics: phase wall times and task-level loads.

The simulator's :class:`repro.mapreduce.metrics.JobMetrics` measures the
paper's *analytical* quantities (communication cost, reducer loads vs the
capacity ``q``).  The engine additionally measures *execution* quantities —
how long each phase actually took on a backend, how many physical tasks ran,
and how loaded each reduce task was — so schema quality can be read off as
wall-clock speedups rather than only cost numbers.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PhaseTimings:
    """Wall-clock seconds spent in each phase of one engine run.

    With the partitioned shuffle, ``shuffle_seconds`` covers only the
    parent's bucket transpose (grouping and size accounting happen inside
    map tasks; the final merge and capacity accounting inside reduce
    tasks), and ``reduce_seconds`` includes the parent's post-pass that
    reassembles outputs in sorted-key order.  Worker-pool startup happens
    outside all three phases and is not counted.
    """

    map_seconds: float = 0.0
    shuffle_seconds: float = 0.0
    reduce_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Sum of all phase times (the engine's end-to-end wall time)."""
        return self.map_seconds + self.shuffle_seconds + self.reduce_seconds


@dataclass(frozen=True)
class EngineMetrics:
    """Physical execution facts for one engine run.

    Attributes:
        backend: name of the backend that ran the job.
        num_workers: worker-pool size the backend was configured with
            (1 for the serial backend).
        num_map_tasks: map tasks (record chunks) dispatched.
        num_reduce_tasks: reduce tasks dispatched — the non-empty hash
            partitions out of the fixed partition count chosen before the
            map phase.
        timings: per-phase wall times.
        bytes_moved: total value size shipped through the shuffle, in the
            same size units the schema counts — equal to the job's
            communication cost by construction.
        task_loads: total value size per reduce *task* (a task batches one
            hash partition of keys, so its load is the sum of its keys'
            reducer loads).
        capacity: the reducer capacity ``q`` the job enforced, if any.
        task_retries: task attempts replayed by the fault plane (0 on
            every run with the fault plane off — the plain dispatch path
            cannot retry).
        pool_rebuilds: worker pools rebuilt after a worker death during
            this run.
        fallback_backend: set to the backend that actually completed the
            run when the graceful-degradation chain demoted it (``None``
            when the configured backend ran it).
        encoded_bytes: total size of the shuffle blocks map tasks encoded
            (:mod:`repro.engine.codec`); 0 on in-process backends, which
            hand buckets over by reference.
        encode_seconds: wall time map tasks spent encoding blocks (summed
            across tasks, so it can exceed the map phase wall time on a
            parallel backend).
        decode_seconds: wall time reduce tasks spent decoding block
            sources (same summation caveat).
        shm_segments: shared-memory segments the run staged its reduce
            partitions through (0 on the pipe/inline transport).
    """

    backend: str
    num_workers: int
    num_map_tasks: int
    num_reduce_tasks: int
    timings: PhaseTimings
    bytes_moved: int
    task_loads: tuple[int, ...]
    capacity: int | None = None
    task_retries: int = 0
    pool_rebuilds: int = 0
    fallback_backend: str | None = None
    encoded_bytes: int = 0
    encode_seconds: float = 0.0
    decode_seconds: float = 0.0
    shm_segments: int = 0

    @property
    def max_task_load(self) -> int:
        """Largest reduce-task load (bounds reduce-phase stragglers)."""
        return max(self.task_loads, default=0)

    @property
    def load_per_capacity(self) -> float:
        """Max task load / q — how far the heaviest task is above one
        reducer's worth of work (0.0 when no capacity was set)."""
        if not self.capacity:
            return 0.0
        return self.max_task_load / self.capacity

    def as_row(self) -> dict[str, object]:
        """Flat dict for table rendering."""
        return {
            "backend": self.backend,
            "workers": self.num_workers,
            "map_tasks": self.num_map_tasks,
            "reduce_tasks": self.num_reduce_tasks,
            "map_s": round(self.timings.map_seconds, 4),
            "shuffle_s": round(self.timings.shuffle_seconds, 4),
            "reduce_s": round(self.timings.reduce_seconds, 4),
            "total_s": round(self.timings.total_seconds, 4),
            "bytes_moved": self.bytes_moved,
            "max_task_load": self.max_task_load,
            "retries": self.task_retries,
            "encoded_bytes": self.encoded_bytes,
            "encode_s": round(self.encode_seconds, 4),
            "decode_s": round(self.decode_seconds, 4),
            "shm_segments": self.shm_segments,
        }
