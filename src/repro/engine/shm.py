"""Zero-copy shared-memory transport for encoded shuffle blocks.

On the ``processes`` backend, map tasks return their partition buckets as
encoded blocks (:mod:`repro.engine.codec`) through the result pipe — a
``bytes`` pickle is a straight memcpy, already far cheaper than pickling
the dict it replaced.  The reduce phase is where shared memory pays: the
parent *stages* each reduce partition's blocks into one
:class:`multiprocessing.shared_memory.SharedMemory` segment and ships the
workers only tiny :class:`ShmSlice` descriptors (segment name, offset,
length).  A reduce worker attaches the named segment, decodes its blocks
directly from a ``memoryview`` of the mapping — the block bytes are never
copied through a pipe and never duplicated in the worker — and detaches.

Lifecycle and crash-safety:

* Segments are **parent-owned**.  The engine closes (and unlinks) its
  arena in a ``finally`` as soon as the reduce phase ends, success or
  failure.  Because ownership never transfers, a worker killed mid-task
  cannot leak a segment: the descriptors it held stay valid and the
  retried task simply re-attaches.
* The :class:`~repro.engine.backends.ProcessBackend` additionally keeps a
  registry of every arena it handed out and sweeps it in
  ``Backend.close()`` — a backstop for runs torn down by an exception
  path that never reached the engine's ``finally``.
* Segment names are deterministic per parent process:
  ``rp{pid}_{seq}_{n}`` (short enough for macOS's 31-character shm name
  limit).  A name collision with a stale segment from a recycled pid is
  resolved by retrying under the next sequence number.
* Worker-side attaches must not register with ``resource_tracker`` — on
  CPython < 3.13 attaching registers the segment for cleanup-at-exit,
  which would unlink a parent-owned segment early and spew warnings.
  Python 3.13+ has ``track=False``; older versions get an explicit
  ``resource_tracker.unregister`` straight after attaching.

When ``/dev/shm`` (or the platform equivalent) is unavailable, the probe
in :func:`shm_available` fails once per process and the transport
degrades to the pipe path: blocks simply stay inline in the reduce
payloads.  Correctness is identical either way; only the copy count
changes.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from typing import Any

#: Attempts to find an unused segment name before giving up on shm for
#: the run (names collide only with stale segments from a recycled pid).
_NAME_ATTEMPTS = 8

#: Per-process sequence for segment names; combined with the pid this
#: makes names unique among live processes.
_SEGMENT_SEQ = itertools.count()

#: Cached result of the one-time availability probe (None = not probed).
_SHM_OK: bool | None = None


@dataclass(frozen=True)
class ShmSlice:
    """A reduce-task source living in a shared-memory segment.

    Picklable and tiny — this is what crosses the pipe instead of the
    block bytes.  ``segment`` is the :class:`SharedMemory` name; the
    block occupies ``[offset, offset + length)`` of its mapping.
    """

    segment: str
    offset: int
    length: int


def shm_available() -> bool:
    """Whether this platform can create shared-memory segments (cached).

    Creates and immediately unlinks a 1-byte probe segment once per
    process; any failure (no ``/dev/shm``, seccomp, missing ``_posixshmem``)
    marks shm unavailable and the data plane stays on pipe transport.
    """
    global _SHM_OK
    if _SHM_OK is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=1)
            probe.close()
            probe.unlink()
            _SHM_OK = True
        except Exception:
            _SHM_OK = False
    return _SHM_OK


def attach_segment(name: str) -> Any:
    """Attach an existing segment without disturbing its parent ownership.

    Python 3.13+ has ``track=False``, which keeps the attach invisible to
    the resource tracker.  Before 3.13, attaching always registers the
    segment, and the right correction depends on the start method:
    fork-started workers share the parent's tracker process — the name is
    already registered from the parent's create (registrations are a
    set, so the attach is a no-op) and the parent's unlink unregisters it
    exactly once, so the worker must *not* unregister.  Spawn/forkserver
    workers run their own tracker, which would unlink the parent-owned
    segment when the worker exits — there the attach is unregistered
    immediately.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Python < 3.13: no ``track`` parameter.
        pass
    segment = shared_memory.SharedMemory(name=name)
    try:
        import multiprocessing

        if multiprocessing.get_start_method(allow_none=True) != "fork":
            from multiprocessing import resource_tracker

            resource_tracker.unregister(
                getattr(segment, "_name", "/" + segment.name),
                "shared_memory",
            )
    except Exception:
        pass
    return segment


class ShmArena:
    """Parent-side owner of one run's shared-memory segments.

    :meth:`stage` packs a partition's encoded blocks into one fresh
    segment and rewrites the source list with :class:`ShmSlice`
    descriptors; :meth:`close` unmaps and unlinks everything (idempotent,
    called from the engine's ``finally`` and again from the backend's
    registry sweep).
    """

    def __init__(self, on_close: Any = None):
        self._segments: list[Any] = []
        self._on_close = on_close
        self.closed = False
        #: Set when segment allocation failed mid-run: the arena stops
        #: staging and the remaining blocks ship inline over the pipe.
        self.degraded = False
        #: Segments created so far (reported as ``shm_segments``).
        self.segments_created = 0
        #: Total block bytes staged into shared memory.
        self.staged_bytes = 0

    def _create_segment(self, size: int) -> Any:
        """Allocate one named segment, or ``None`` when shm gives out.

        A name collision (stale segment from a recycled pid) retries
        under the next sequence number; any other failure (``/dev/shm``
        full, resource limits) degrades the arena — correctness never
        depends on shared memory.
        """
        from multiprocessing import shared_memory

        for _ in range(_NAME_ATTEMPTS):
            name = f"rp{os.getpid()}_{next(_SEGMENT_SEQ)}"
            try:
                segment = shared_memory.SharedMemory(
                    name=name, create=True, size=size
                )
            except FileExistsError:
                continue
            except OSError:
                return None
            self._segments.append(segment)
            self.segments_created += 1
            return segment
        return None

    def stage(self, sources: list[Any]) -> list[Any]:
        """Move a partition's block sources into one shared segment.

        Only ``bytes`` blocks are staged; dict buckets and spill-run
        paths pass through untouched, and a partition with no blocks
        allocates nothing.  Source order — the shuffle's task order — is
        preserved exactly.  When allocation fails the sources are
        returned unchanged (and the arena degrades to a pass-through):
        inline blocks over the pipe are the universal fallback.
        """
        if self.degraded:
            return sources
        total = sum(
            len(source) for source in sources if isinstance(source, bytes)
        )
        if total == 0:
            return sources
        segment = self._create_segment(total)
        if segment is None:
            self.degraded = True
            return sources
        staged: list[Any] = []
        offset = 0
        buf = segment.buf
        for source in sources:
            if isinstance(source, bytes):
                end = offset + len(source)
                buf[offset:end] = source
                staged.append(ShmSlice(segment.name, offset, len(source)))
                offset = end
            else:
                staged.append(source)
        self.staged_bytes += total
        return staged

    def close(self) -> None:
        """Unmap and unlink every segment (idempotent)."""
        if self.closed:
            return
        self.closed = True
        segments, self._segments = self._segments, []
        for segment in segments:
            try:
                segment.close()
            except Exception:
                pass
            try:
                segment.unlink()
            except Exception:
                pass
        if self._on_close is not None:
            self._on_close(self)
            self._on_close = None


class SegmentReader:
    """Worker-side cache of attached segments for one reduce task.

    A task's sources may reference the same segment several times; attach
    once per segment, hand out in-place views, and detach everything in
    :meth:`close` (the task's ``finally``).
    """

    def __init__(self) -> None:
        self._attached: dict[str, Any] = {}

    def view(self, source: ShmSlice) -> memoryview:
        """A zero-copy view of one staged block (valid until :meth:`close`)."""
        segment = self._attached.get(source.segment)
        if segment is None:
            segment = attach_segment(source.segment)
            self._attached[source.segment] = segment
        return segment.buf[source.offset : source.offset + source.length]

    def close(self) -> None:
        """Detach every cached segment (never unlinks — parent owns them)."""
        attached, self._attached = self._attached, {}
        for segment in attached.values():
            try:
                segment.close()
            except Exception:
                pass
