"""Schema-driven routing: from a solved schema to per-record reducer fan-out.

The engine's contract with the paper is that a record of input *i* is
replicated to *exactly* the reducers the mapping schema assigns *i* to.
This module turns a schema into the data structures that implement that —
per-input membership lists — and provides the picklable map/size functions
the engine uses, so schema-driven jobs run unchanged on the ``processes``
backend (closures would not survive pickling).

Records routed by these helpers are wrapped with their input index:
``(i, record)`` for A2A, ``(side, i, record)`` with ``side in {"x", "y"}``
for X2Y.  Reduce functions receive those wrapped values and can recover
exactly-once semantics through :func:`canonical_meeting`, or — cheaper when
a meeting is tested per output pair — through a per-schema lookup table
precomputed once by :func:`a2a_meeting_table` / :func:`x2y_meeting_table`.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Hashable, Iterable, Iterator, Sequence

from repro.core.schema import A2ASchema, X2YSchema
from repro.dataset import Dataset
from repro.exceptions import InvalidInstanceError, InvalidSchemaError


def a2a_memberships(schema: A2ASchema) -> list[list[int]]:
    """Per-input sorted list of reducer indices (one pass over the schema)."""
    memberships: list[list[int]] = [[] for _ in range(schema.instance.m)]
    for r, members in enumerate(schema.reducers):
        for i in members:
            memberships[i].append(r)
    return memberships


def x2y_memberships(schema: X2YSchema) -> tuple[list[list[int]], list[list[int]]]:
    """Per-input reducer lists for both sides of an X2Y schema."""
    x_memberships: list[list[int]] = [[] for _ in range(schema.instance.m)]
    y_memberships: list[list[int]] = [[] for _ in range(schema.instance.n)]
    for r, (x_part, y_part) in enumerate(schema.reducers):
        for i in x_part:
            x_memberships[i].append(r)
        for j in y_part:
            y_memberships[j].append(r)
    return x_memberships, y_memberships


def canonical_meeting(
    reducers_a: Iterable[int], reducers_b: Iterable[int]
) -> int:
    """The canonical reducer of a pair: the smallest shared reducer index.

    A valid schema guarantees the intersection is non-empty; emitting a
    pair's output only when the executing reducer equals this index makes
    the distributed result exactly-once despite replication.

    Membership lists built by :func:`a2a_memberships` and
    :func:`x2y_memberships` are sorted ascending, so the smallest common
    index is found by a linear two-pointer merge — no per-pair set
    construction.  Unsorted inputs still get the correct answer through a
    set-intersection fallback.  Apps that test a meeting per *output* pair
    should precompute :func:`a2a_meeting_table` / :func:`x2y_meeting_table`
    once per schema instead of calling this in the hot loop.
    """
    seq_a = reducers_a if isinstance(reducers_a, (list, tuple)) else list(reducers_a)
    seq_b = reducers_b if isinstance(reducers_b, (list, tuple)) else list(reducers_b)
    pos_a = pos_b = 0
    len_a, len_b = len(seq_a), len(seq_b)
    while pos_a < len_a and pos_b < len_b:
        item_a, item_b = seq_a[pos_a], seq_b[pos_b]
        if item_a == item_b:
            return item_a
        if item_a < item_b:
            pos_a += 1
        else:
            pos_b += 1
    # The merge can only miss a common element when a list was unsorted;
    # fall back to the exact set intersection before declaring failure.
    common = set(seq_a) & set(seq_b)
    if not common:
        raise InvalidSchemaError(
            "inputs share no reducer; schema is invalid for this pair"
        )
    return min(common)  # pragma: no cover - unsorted-input fallback


def a2a_meeting_table(schema: A2ASchema) -> dict[tuple[int, int], int]:
    """Canonical meeting reducer for every covered A2A pair, ``i < j``.

    Iterating reducers in ascending index order means the first reducer a
    pair is seen at *is* its smallest shared reducer, so one pass over the
    schema replaces a :func:`canonical_meeting` call per output pair with a
    dict lookup.  The table is plain data, hence picklable into reduce
    tasks on the ``processes`` backend.
    """
    owners: dict[tuple[int, int], int] = {}
    for r, members in enumerate(schema.reducers):
        for a_pos, i in enumerate(members):
            for j in members[a_pos + 1 :]:
                pair = (i, j) if i < j else (j, i)
                if pair not in owners:
                    owners[pair] = r
    return owners


def x2y_meeting_table(schema: X2YSchema) -> dict[tuple[int, int], int]:
    """Canonical meeting reducer for every X2Y cross pair ``(x_i, y_j)``.

    Same one-pass construction as :func:`a2a_meeting_table`; keys are
    ``(x_index, y_index)``.
    """
    owners: dict[tuple[int, int], int] = {}
    for r, (x_part, y_part) in enumerate(schema.reducers):
        for i in x_part:
            for j in y_part:
                if (i, j) not in owners:
                    owners[(i, j)] = r
    return owners


def route_a2a(
    record: tuple[int, Any], memberships: tuple[tuple[int, ...], ...]
) -> list[tuple[Hashable, Any]]:
    """Map function for A2A schemas: replicate ``(i, payload)`` to every
    reducer input *i* belongs to.  Module-level, hence picklable under
    :func:`functools.partial`."""
    index, _ = record
    return [(r, record) for r in memberships[index]]


def route_x2y(
    record: tuple[str, int, Any],
    x_memberships: tuple[tuple[int, ...], ...],
    y_memberships: tuple[tuple[int, ...], ...],
) -> list[tuple[Hashable, Any]]:
    """Map function for X2Y schemas: route ``(side, i, payload)`` by its
    side's membership list."""
    side, index, _ = record
    members = x_memberships if side == "x" else y_memberships
    return [(r, record) for r in members[index]]


def indexed_size(record: tuple[int, Any], sizes: tuple[int, ...]) -> int:
    """Size function for A2A-wrapped records: the instance size of input i.

    Using the instance's declared sizes (not a measurement of the payload)
    keeps the engine's capacity accounting identical to the schema's.
    """
    return sizes[record[0]]


def tagged_size(
    record: tuple[str, int, Any],
    x_sizes: tuple[int, ...],
    y_sizes: tuple[int, ...],
) -> int:
    """Size function for X2Y-wrapped records: the side's instance size."""
    side, index, _ = record
    return (x_sizes if side == "x" else y_sizes)[index]


def _enumerate_checked(
    records: Iterable[Any], expected: int
) -> Iterator[tuple[int, Any]]:
    """``enumerate`` that enforces the instance's record count lazily.

    Streaming datasets of unknown length cannot be counted before the run,
    so the count check happens as records flow past: an extra or missing
    record raises :class:`InvalidInstanceError` instead of a confusing
    ``IndexError`` deep inside the membership lookup.
    """
    count = 0
    for index, record in enumerate(records):
        if index >= expected:
            raise InvalidInstanceError(
                f"schema expects {expected} records, got more"
            )
        yield index, record
        count += 1
    if count != expected:
        raise InvalidInstanceError(
            f"schema expects {expected} records, got {count}"
        )


def build_schema_plan(
    schema: A2ASchema | X2YSchema,
    records: Sequence[Any] | Dataset | tuple[Sequence[Any], Sequence[Any]],
) -> tuple[Callable, Callable, list[Any] | Dataset]:
    """Turn a schema plus per-input records into ``(map_fn, size_of, wrapped)``.

    This is the single source of the schema-to-execution encoding: both the
    engine (:func:`repro.engine.engine.execute_schema`) and the simulator
    side of cross-validation (:mod:`repro.engine.crossval`) build their jobs
    from it, so the two executors cannot drift in how records are wrapped,
    routed, or sized.  Validates record counts against the instance.

    An A2A *records* source may be a :class:`~repro.dataset.Dataset`; the
    wrapping then stays lazy (``wrapped`` is itself a dataset), so the
    engine can stream the records without materializing them.  X2Y takes
    its two sides as sequences (datasets per side are materialized — the
    sides are concatenated and tagged, which needs their lengths anyway).
    """
    if isinstance(schema, A2ASchema):
        if isinstance(records, Dataset):
            if (
                records.length is not None
                and records.length != schema.instance.m
            ):
                raise InvalidInstanceError(
                    f"schema expects {schema.instance.m} records, "
                    f"got {records.length}"
                )
            memberships = tuple(tuple(m) for m in a2a_memberships(schema))
            map_fn = partial(route_a2a, memberships=memberships)
            size_of = partial(indexed_size, sizes=schema.instance.sizes)
            return map_fn, size_of, Dataset.from_factory(
                partial(_enumerate_checked, records, schema.instance.m),
                length=records.length,
            )
        if len(records) != schema.instance.m:
            raise InvalidInstanceError(
                f"schema expects {schema.instance.m} records, got {len(records)}"
            )
        memberships = tuple(tuple(m) for m in a2a_memberships(schema))
        map_fn = partial(route_a2a, memberships=memberships)
        size_of = partial(indexed_size, sizes=schema.instance.sizes)
        wrapped: list[Any] = list(enumerate(records))
        return map_fn, size_of, wrapped
    if isinstance(schema, X2YSchema):
        try:
            x_records, y_records = records
        except (TypeError, ValueError) as exc:
            raise InvalidInstanceError(
                "X2Y execution takes records as an (x_records, y_records) pair"
            ) from exc
        if isinstance(x_records, Dataset):
            x_records = x_records.materialize()
        if isinstance(y_records, Dataset):
            y_records = y_records.materialize()
        if len(x_records) != schema.instance.m or len(y_records) != schema.instance.n:
            raise InvalidInstanceError(
                f"schema expects {schema.instance.m} X records and "
                f"{schema.instance.n} Y records, got "
                f"{len(x_records)} and {len(y_records)}"
            )
        x_members, y_members = x2y_memberships(schema)
        map_fn = partial(
            route_x2y,
            x_memberships=tuple(tuple(m) for m in x_members),
            y_memberships=tuple(tuple(m) for m in y_members),
        )
        size_of = partial(
            tagged_size,
            x_sizes=schema.instance.x_sizes,
            y_sizes=schema.instance.y_sizes,
        )
        wrapped = [("x", i, record) for i, record in enumerate(x_records)]
        wrapped += [("y", j, record) for j, record in enumerate(y_records)]
        return map_fn, size_of, wrapped
    raise TypeError(
        f"expected an A2ASchema or X2YSchema, got {type(schema).__name__}"
    )
