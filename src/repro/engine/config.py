"""Execution configuration: one object for all engine knobs.

The engine grew its tuning surface one keyword at a time (backend, worker
count, chunk size, partition count, and now the out-of-core memory
budget).  :class:`ExecutionConfig` bundles them so applications and the
CLI pass a single validated object instead of threading five keyword
arguments through every layer.  The individual keyword arguments remain
on :class:`~repro.engine.engine.ExecutionEngine` and
:func:`~repro.engine.engine.execute_schema` for backwards compatibility;
:func:`resolve_execution` is the shared shim that lets an application
accept either style.

The fault-plane knobs (``retry``, ``faults``, ``task_timeout``,
``deadline``, ``fallback``) ride in the same object.  They are runtime
policy, not plan decisions: the planner never serializes them, and the
service applies a submission's per-job retry/deadline on top of whatever
config the plan resolved.  All of them default to off, and the engine
takes the exact pre-fault-plane dispatch path when every one is off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.backends import Backend
from repro.exceptions import InvalidInstanceError
from repro.faults import FaultSpec, RetryPolicy, as_fault_spec


@dataclass(frozen=True)
class ExecutionConfig:
    """Validated engine tuning knobs.

    Attributes:
        backend: backend name (``serial``/``threads``/``processes``) or a
            pre-built :class:`~repro.engine.backends.Backend`.
        num_workers: worker-pool size (``None`` = machine default).
        map_chunk_size: records per map task (``None`` = adaptive).
        num_reduce_tasks: reduce partition count (``None`` = adaptive).
        memory_budget: maximum key-value pairs a map task buffers before
            spilling its groups to sorted on-disk runs; ``None`` keeps the
            fully in-memory shuffle.  The budget is counted in *pairs*
            (post-combiner), not bytes, so it is deterministic across
            backends and platforms.
        spill_dir: base directory for spill files (``None`` = the system
            temporary directory); each run gets its own subdirectory,
            removed when the run finishes.
        retry: per-task :class:`~repro.faults.RetryPolicy`; ``None``
            disables retrying (one attempt, failures propagate).  When
            any other fault-plane knob is set without an explicit policy
            the engine uses the default ``RetryPolicy()``.
        faults: deterministic fault injection for chaos testing — a
            :class:`~repro.faults.FaultSpec`, a spec string (parsed and
            validated here, e.g. ``"crash=0.2,seed=7"``), or ``None``
            for no injection.
        task_timeout: seconds a single task attempt may run before it is
            abandoned and retried (``None`` = no per-task timeout).
        deadline: seconds the whole run may take; dispatch stops with
            :class:`~repro.exceptions.DeadlineExceededError` once passed
            (``None`` = no deadline).
        fallback: opt-in graceful degradation — when a named backend
            cannot run (its pool cannot be built, or workers keep dying
            past the retry budget), retry the whole run down the chain
            ``processes → threads → serial``.
    """

    backend: str | Backend = "serial"
    num_workers: int | None = None
    map_chunk_size: int | None = None
    num_reduce_tasks: int | None = None
    memory_budget: int | None = None
    spill_dir: str | None = None
    retry: RetryPolicy | None = None
    faults: FaultSpec | str | None = None
    task_timeout: float | None = None
    deadline: float | None = None
    fallback: bool = False

    def __post_init__(self) -> None:
        for name in ("num_workers", "map_chunk_size", "num_reduce_tasks",
                     "memory_budget", "task_timeout", "deadline"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise InvalidInstanceError(
                    f"{name} must be positive, got {value}"
                )
        # Normalize a spec string into a validated FaultSpec right away so
        # a malformed --inject-faults fails at construction, not mid-run.
        object.__setattr__(self, "faults", as_fault_spec(self.faults))

    @property
    def fault_plane_active(self) -> bool:
        """Whether any knob requires the resilient dispatch path."""
        faults = self.faults
        return (
            self.retry is not None
            or (faults is not None and faults.enabled)
            or self.task_timeout is not None
            or self.deadline is not None
        )

    def engine_kwargs(self) -> dict[str, object]:
        """The config as keyword arguments for ``ExecutionEngine``.

        Built by hand rather than :func:`dataclasses.asdict` because the
        backend field may be a live :class:`Backend` holding a worker
        pool, which must be passed by reference, not deep-copied.
        """
        return {
            "backend": self.backend,
            "num_workers": self.num_workers,
            "map_chunk_size": self.map_chunk_size,
            "num_reduce_tasks": self.num_reduce_tasks,
            "memory_budget": self.memory_budget,
            "spill_dir": self.spill_dir,
            "retry": self.retry,
            "faults": self.faults,
            "task_timeout": self.task_timeout,
            "deadline": self.deadline,
            "fallback": self.fallback,
        }


def resolve_execution(
    config: ExecutionConfig | None,
    backend: str | Backend | None = None,
    num_workers: int | None = None,
) -> ExecutionConfig | None:
    """Reconcile an app's ``config=`` with its legacy ``backend=`` kwargs.

    Returns ``None`` when neither is given — the applications read that as
    "run on the reference simulator".  An explicit *config* wins over the
    legacy keywords.
    """
    if config is not None:
        return config
    if backend is None:
        return None
    return ExecutionConfig(backend=backend, num_workers=num_workers)
