"""Quick, self-contained engine benchmarks: scenarios plus a speedup table.

Three synthetic scenarios stress the engine's three phases one at a time —
the workload shapes E18 measures — and a small skew join reproduces E17's
shape.  Everything here is module-level and picklable, so every scenario
runs unchanged on the ``processes`` backend, and the map/reduce functions
live in ``src`` (not ``benchmarks/``) so worker processes can import them
regardless of how the interpreter was launched.

* ``map_heavy`` — the mapper compresses a 64 KiB payload per record
  (``zlib`` releases the GIL, so the ``threads`` backend scales on real
  cores); the reduce is a trivial sum.
* ``reduce_heavy`` — trivial mapper; each reducer compresses the payload
  once per value.
* ``shuffle_heavy`` — each record fans out to 24 keys across a 509-key
  space with a trivial sum reduce, so wall clock is dominated by
  partitioning, merging, and task plumbing rather than user code.

:func:`run_scenarios` and :func:`run_join_bench` both return plain row
dicts (one per scenario × backend) ready for
:func:`repro.utils.tables.format_table`; ``repro bench`` prints them and
``benchmarks/bench_e18_engine_scenarios.py`` persists them.
"""

from __future__ import annotations

import time
import zlib
from functools import partial
from typing import Any, Iterable, Iterator

from repro.dataset import Dataset
from repro.engine.backends import BACKENDS
from repro.engine.engine import EngineResult, ExecutionEngine
from repro.obs.trace import Tracer

#: 64 KiB of incompressible-ish payload the GIL-releasing scenarios chew on.
_BLOB = bytes(range(256)) * 256

#: Default record counts per scenario at ``scale=1.0`` — each lands the
#: serial wall clock in the few-hundred-millisecond range.
_SCENARIO_RECORDS = {
    "map_heavy": 400,
    "reduce_heavy": 800,
    "shuffle_heavy": 4000,
}


def compress_map(record: int) -> Iterator[tuple[int, int]]:
    """Map-heavy mapper: two GIL-releasing compressions per record."""
    digest = zlib.crc32(zlib.compress(_BLOB, 6))
    digest = zlib.crc32(zlib.compress(_BLOB[::-1], 6), digest)
    yield record % 32, (record + digest) & 0xFFFF


def tag_map(record: int) -> Iterator[tuple[int, int]]:
    """Trivial mapper: tag each record with one of 48 keys."""
    yield record % 48, record


def fanout_map(record: int) -> list[tuple[int, int]]:
    """Shuffle-heavy mapper: 24 small pairs across a 509-key space."""
    base = record * 31
    return [((base + f * 67) % 509, 1) for f in range(24)]


def sum_reduce(key: Any, values: Iterable[int]) -> Iterator[tuple[Any, int]]:
    """Trivial reducer: sum the values."""
    yield key, sum(values)


def compress_reduce(key: Any, values: Iterable[int]) -> Iterator[tuple[Any, int]]:
    """Reduce-heavy reducer: one GIL-releasing compression per value."""
    acc = 0
    for value in values:
        acc = zlib.crc32(zlib.compress(_BLOB, 6), acc + (value & 0xFF))
    yield key, acc


#: Scenario name -> (map_fn, reduce_fn).
SCENARIOS = {
    "map_heavy": (compress_map, sum_reduce),
    "reduce_heavy": (tag_map, compress_reduce),
    "shuffle_heavy": (fanout_map, sum_reduce),
}

#: Pairs each scenario's mapper emits per record.  The spill trigger fires
#: between records, so a budgeted run's peak buffered pairs can overshoot
#: the budget by up to one record's fan-out; :func:`run_out_of_core` turns
#: this into the per-row ``peak_bound`` that :func:`check_spill` enforces.
_SCENARIO_FANOUT = {
    "map_heavy": 1,
    "reduce_heavy": 1,
    "shuffle_heavy": 24,
}


def _ordered_backends(backends: Iterable[str] | None) -> list[str]:
    """Backend run order with ``serial`` first, so every later backend has
    a baseline for its speedup column and an output set to check against."""
    names = list(backends) if backends else list(BACKENDS)
    if "serial" in names:
        names.remove("serial")
        names.insert(0, "serial")
    return names


def run_scenario(
    name: str,
    backend: str,
    *,
    scale: float = 1.0,
    num_workers: int | None = None,
    memory_budget: int | None = None,
    map_chunk_size: int | None = None,
    num_reduce_tasks: int | None = None,
    retry: Any = None,
    faults: Any = None,
    tracer: Tracer | None = None,
    profiler: Any = None,
) -> tuple[EngineResult, float]:
    """Run one scenario on one backend; returns the result and wall seconds.

    Records are fed as a streaming :class:`~repro.dataset.Dataset` (a
    range factory), so the engine's out-of-core data path — lazy chunking
    plus, with a *memory_budget*, the spill-to-disk shuffle — is what gets
    measured.  A *tracer* records the run's phase and task spans; a
    *profiler* (:class:`~repro.obs.profiler.PhaseProfiler`) attributes
    CPU/RSS and function time to the phases.
    *retry*/*faults* (with pinned *map_chunk_size*/*num_reduce_tasks*, so
    the task decomposition — and therefore the injected fault pattern —
    is identical on every backend) drive the fault-injection bench.
    """
    map_fn, reduce_fn = SCENARIOS[name]
    count = max(1, int(_SCENARIO_RECORDS[name] * scale))
    records = Dataset.from_factory(partial(range, count), length=count)
    engine = ExecutionEngine(
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        backend=backend,
        num_workers=num_workers,
        memory_budget=memory_budget,
        map_chunk_size=map_chunk_size,
        num_reduce_tasks=num_reduce_tasks,
        retry=retry,
        faults=faults,
        tracer=tracer,
        profiler=profiler,
    )
    started = time.perf_counter()
    result = engine.run(records)
    return result, time.perf_counter() - started


def run_scenarios(
    *,
    scenarios: Iterable[str] | None = None,
    backends: Iterable[str] | None = None,
    scale: float = 1.0,
    repeat: int = 1,
    num_workers: int | None = None,
    memory_budget: int | None = None,
    tracer: Tracer | None = None,
    profiler: Any = None,
) -> list[dict[str, object]]:
    """Benchmark scenarios × backends; best-of-*repeat* wall per cell.

    Each scenario's serial run is the speedup baseline; every backend's
    outputs are asserted identical to serial's, so a row in the table is
    also a correctness check.  With a *memory_budget* every cell runs the
    spill-to-disk shuffle (and the serial baseline proves budgeted output
    identity across backends).
    """
    rows: list[dict[str, object]] = []
    for name in scenarios or sorted(SCENARIOS):
        serial_wall: float | None = None
        serial_outputs: list | None = None
        for backend in _ordered_backends(backends):
            best: tuple[EngineResult, float] | None = None
            for _ in range(max(1, repeat)):
                result, wall = run_scenario(
                    name,
                    backend,
                    scale=scale,
                    num_workers=num_workers,
                    memory_budget=memory_budget,
                    tracer=tracer,
                    profiler=profiler,
                )
                if best is None or wall < best[1]:
                    best = (result, wall)
            result, wall = best
            if backend == "serial":
                serial_wall, serial_outputs = wall, result.outputs
            elif serial_outputs is not None:
                assert result.outputs == serial_outputs, (name, backend)
            rows.append(
                {
                    "scenario": name,
                    "backend": backend,
                    "wall_s": round(wall, 3),
                    "speedup_vs_serial": (
                        round(serial_wall / wall, 2) if serial_wall else ""
                    ),
                    "map_s": round(result.engine.timings.map_seconds, 3),
                    "shuffle_s": round(
                        result.engine.timings.shuffle_seconds, 3
                    ),
                    "reduce_s": round(result.engine.timings.reduce_seconds, 3),
                    "reduce_tasks": result.engine.num_reduce_tasks,
                    "outputs": len(result.outputs),
                }
            )
    return rows


def run_join_bench(
    *,
    tuples: int = 500,
    keys: int = 8,
    q: int = 120,
    skew: float = 1.3,
    seed: int = 7,
    method: str = "auto",
    backends: Iterable[str] | None = None,
    repeat: int = 1,
    num_workers: int | None = None,
    memory_budget: int | None = None,
) -> list[dict[str, object]]:
    """A fast subset of E17: the schema skew join across backends."""
    from repro.apps.skew_join import schema_skew_join
    from repro.engine.config import ExecutionConfig
    from repro.workloads.relations import generate_join_workload

    x, y = generate_join_workload(tuples, tuples, keys, skew, seed=seed)
    rows: list[dict[str, object]] = []
    serial_wall: float | None = None
    serial_triples = None
    for backend in _ordered_backends(backends):
        config = ExecutionConfig(
            backend=backend,
            num_workers=num_workers,
            memory_budget=memory_budget,
        )
        best_wall: float | None = None
        best_run = None
        for _ in range(max(1, repeat)):
            started = time.perf_counter()
            run = schema_skew_join(x, y, q, method=method, config=config)
            wall = time.perf_counter() - started
            if best_wall is None or wall < best_wall:
                best_wall, best_run = wall, run
        if backend == "serial":
            serial_wall, serial_triples = best_wall, best_run.triple_set()
        elif serial_triples is not None:
            assert best_run.triple_set() == serial_triples, backend
        rows.append(
            {
                "scenario": "skew_join",
                "backend": backend,
                "wall_s": round(best_wall, 3),
                "speedup_vs_serial": (
                    round(serial_wall / best_wall, 2) if serial_wall else ""
                ),
                "map_s": round(best_run.engine.timings.map_seconds, 3),
                "shuffle_s": round(
                    best_run.engine.timings.shuffle_seconds, 3
                ),
                "reduce_s": round(best_run.engine.timings.reduce_seconds, 3),
                "reduce_tasks": best_run.engine.num_reduce_tasks,
                "outputs": len(best_run.triples),
            }
        )
    return rows


def run_planned_join(
    *,
    tuples: int = 500,
    keys: int = 8,
    q: int = 120,
    skew: float = 1.3,
    seed: int = 7,
    objective: str = "min-reducers",
    repeat: int = 1,
) -> list[dict[str, object]]:
    """One planner-driven row for the join bench (``bench --plan auto``).

    Runs the skew join with ``method="planned"``: every heavy key's
    schema is chosen cost-based under *objective* and the execution
    configuration is resolved from the environment probe, so the row
    shows what the planner would pick against the fixed backend sweep.
    """
    from repro.apps.skew_join import schema_skew_join
    from repro.workloads.relations import generate_join_workload

    x, y = generate_join_workload(tuples, tuples, keys, skew, seed=seed)
    best_wall: float | None = None
    best_run = None
    for _ in range(max(1, repeat)):
        started = time.perf_counter()
        run = schema_skew_join(x, y, q, method="planned", objective=objective)
        wall = time.perf_counter() - started
        if best_wall is None or wall < best_wall:
            best_wall, best_run = wall, run
    engine = best_run.engine
    return [
        {
            "scenario": "skew_join",
            "backend": f"planned[{engine.backend}]",
            "wall_s": round(best_wall, 3),
            "speedup_vs_serial": "",
            "map_s": round(engine.timings.map_seconds, 3),
            "shuffle_s": round(engine.timings.shuffle_seconds, 3),
            "reduce_s": round(engine.timings.reduce_seconds, 3),
            "reduce_tasks": engine.num_reduce_tasks,
            "outputs": len(best_run.triples),
        }
    ]


def run_out_of_core(
    *,
    scenario: str = "shuffle_heavy",
    backends: Iterable[str] | None = None,
    scale: float = 1.0,
    memory_budget: int = 512,
    repeat: int = 1,
    num_workers: int | None = None,
) -> list[dict[str, object]]:
    """E19: one scenario, unbounded vs memory-budgeted, per backend.

    For every backend the scenario runs twice — fully in-memory and with
    *memory_budget* — and the two output lists are asserted identical, so
    each pair of rows is a correctness proof of the spill path on that
    backend.  Rows carry the spill counters (bytes, runs, peak buffered
    pairs) next to the wall clocks, which is the bench's point: what does
    bounding memory cost in time, and how much actually hit disk.
    """
    rows: list[dict[str, object]] = []
    for backend in _ordered_backends(backends):
        per_mode: dict[str, tuple[EngineResult, float]] = {}
        for mode, budget in (("unbounded", None), ("budgeted", memory_budget)):
            best: tuple[EngineResult, float] | None = None
            for _ in range(max(1, repeat)):
                result, wall = run_scenario(
                    scenario,
                    backend,
                    scale=scale,
                    num_workers=num_workers,
                    memory_budget=budget,
                )
                if best is None or wall < best[1]:
                    best = (result, wall)
            per_mode[mode] = best
        unbounded, budgeted = per_mode["unbounded"], per_mode["budgeted"]
        assert budgeted[0].outputs == unbounded[0].outputs, (
            scenario,
            backend,
            "spilled outputs diverged from in-memory outputs",
        )
        for mode, (result, wall) in per_mode.items():
            metrics = result.metrics
            rows.append(
                {
                    "scenario": scenario,
                    "backend": backend,
                    "mode": mode,
                    "memory_budget": (
                        memory_budget if mode == "budgeted" else ""
                    ),
                    "wall_s": round(wall, 3),
                    "spill_runs": metrics.spill_runs,
                    "spilled_bytes": metrics.spilled_bytes,
                    "peak_buffered": metrics.peak_buffered_pairs,
                    "peak_bound": (
                        memory_budget - 1 + _SCENARIO_FANOUT[scenario]
                        if mode == "budgeted"
                        else ""
                    ),
                    "outputs": len(result.outputs),
                }
            )
    return rows


def run_trace_overhead(
    *,
    scenario: str = "map_heavy",
    backend: str = "serial",
    scale: float = 1.0,
    repeat: int = 3,
    num_workers: int | None = None,
) -> list[dict[str, object]]:
    """E22: tracing overhead on one scenario — off, null tracer, enabled.

    Runs the scenario three ways, best-of-*repeat* each: with no tracer at
    all (the default code path), with :data:`~repro.obs.trace.NULL_TRACER`
    passed explicitly (proves the disabled object costs nothing beyond the
    ``None`` default), and with a live :class:`~repro.obs.trace.Tracer`
    (every phase and task span recorded).  Rows carry the wall clock, the
    span count, and the overhead ratio against the untraced run — the
    numbers E22 commits and the observability docs quote.
    """
    from repro.obs.trace import NULL_TRACER

    rows: list[dict[str, object]] = []
    base_wall: float | None = None
    for mode in ("off", "null", "on"):
        best_wall: float | None = None
        best_spans = 0
        for _ in range(max(1, repeat)):
            tracer = {"off": None, "null": NULL_TRACER, "on": Tracer()}[mode]
            _, wall = run_scenario(
                scenario,
                backend,
                scale=scale,
                num_workers=num_workers,
                tracer=tracer,
            )
            spans = len(tracer) if tracer is not None and tracer.enabled else 0
            if best_wall is None or wall < best_wall:
                best_wall, best_spans = wall, spans
        if mode == "off":
            base_wall = best_wall
        rows.append(
            {
                "scenario": scenario,
                "backend": backend,
                "tracing": mode,
                "wall_s": round(best_wall, 3),
                "overhead_vs_off": (
                    round(best_wall / base_wall, 3) if base_wall else ""
                ),
                "spans": best_spans,
            }
        )
    return rows


def run_profile_overhead(
    *,
    scenario: str = "map_heavy",
    backend: str = "serial",
    scale: float = 1.0,
    repeat: int = 3,
    num_workers: int | None = None,
) -> list[dict[str, object]]:
    """E25: profiler overhead on one scenario — off, null profiler, enabled.

    The profiling twin of :func:`run_trace_overhead`: best-of-*repeat*
    with no profiler at all (the default code path), with
    :data:`~repro.obs.profiler.NULL_PROFILER` passed explicitly (proves
    the disabled object costs nothing beyond the ``None`` default), and
    with a live :class:`~repro.obs.profiler.PhaseProfiler` (background
    sampler plus worker-side ``cProfile``).  Rows carry the wall clock,
    the overhead ratio against the unprofiled run, and — for the enabled
    row — the phase count, profiled-function count, and peak RSS, so the
    committed artifact also documents what enabling profiling buys.
    """
    from repro.obs.profiler import NULL_PROFILER, PhaseProfiler

    rows: list[dict[str, object]] = []
    base_wall: float | None = None
    for mode in ("off", "null", "on"):
        best_wall: float | None = None
        best_phases = 0
        best_functions = 0
        best_rss = 0
        for _ in range(max(1, repeat)):
            profiler = {
                "off": None,
                "null": NULL_PROFILER,
                "on": PhaseProfiler(),
            }[mode]
            _, wall = run_scenario(
                scenario,
                backend,
                scale=scale,
                num_workers=num_workers,
                profiler=profiler,
            )
            phases = functions = rss = 0
            if profiler is not None and profiler.enabled:
                profiler.stop()
                payload = profiler.to_dict()
                phases = len(payload["phases"])
                functions = sum(
                    len(entry["functions"])
                    for entry in payload["phases"].values()
                )
                rss = payload["peak_rss_bytes"]
            if best_wall is None or wall < best_wall:
                best_wall = wall
                best_phases, best_functions, best_rss = phases, functions, rss
        if mode == "off":
            base_wall = best_wall
        rows.append(
            {
                "scenario": scenario,
                "backend": backend,
                "profiling": mode,
                "wall_s": round(best_wall, 3),
                "overhead_vs_off": (
                    round(best_wall / base_wall, 3) if base_wall else ""
                ),
                "phases": best_phases,
                "functions": best_functions,
                "peak_rss_mb": round(best_rss / (1024 * 1024), 1),
            }
        )
    return rows


#: Pinned task geometry for the fault-injection bench: identical task
#: decomposition on every backend means identical injector decisions, so
#: one spec tests the *same* failure scenario on serial, threads, and
#: processes (the cross-backend byte-identity claim of E23).
_FAULT_GEOMETRY = {"map_chunk_size": 32, "num_reduce_tasks": 8}

#: Retry budget the fault-injection bench runs under; rows carry the
#: resulting per-run bound so :func:`check_faults` can assert retries
#: stayed inside it.
_FAULT_MAX_ATTEMPTS = 6


def run_fault_injection(
    *,
    scenario: str = "shuffle_heavy",
    backends: Iterable[str] | None = None,
    spec: Any = "crash=0.2,seed=7",
    rates: Iterable[float] | None = None,
    scale: float = 1.0,
    repeat: int = 1,
    num_workers: int | None = None,
) -> list[dict[str, object]]:
    """E23: completion time under deterministic fault injection.

    For every backend the scenario first runs with the fault plane fully
    off (mode ``faults-off`` — the plain dispatch path, which is also the
    overhead baseline), then once per injected mode: *spec* as given, or,
    with *rates*, *spec* with its crash rate swept over the non-zero
    rates.  Every injected run's outputs are asserted identical to the
    same backend's fault-free outputs **and** to serial's — recovery must
    be invisible in the results — and each row carries the retry/rebuild
    counters plus the documented retry bound.

    Task geometry is pinned (:data:`_FAULT_GEOMETRY`) so the injector's
    deterministic decisions hit the same tasks on every backend.
    """
    from dataclasses import replace as dc_replace

    from repro.faults import RetryPolicy, as_fault_spec

    base = as_fault_spec(spec)
    modes: list[tuple[str, Any]] = [("faults-off", None)]
    if rates is None:
        modes.append((base.format(), base))
    else:
        for rate in rates:
            if rate <= 0:
                continue
            modes.append(
                (f"crash={rate:g}", dc_replace(base, crash=float(rate)))
            )
    # Small backoff: the bench measures recovery work, not sleep time,
    # and determinism comes from the seed, not the backoff schedule.
    policy = RetryPolicy(
        max_attempts=_FAULT_MAX_ATTEMPTS, backoff_base=0.002, backoff_max=0.02
    )
    rows: list[dict[str, object]] = []
    serial_off_outputs: list | None = None
    for backend in _ordered_backends(backends):
        off_wall: float | None = None
        off_outputs: list | None = None
        for mode, fault_spec in modes:
            injected = fault_spec is not None
            best: tuple[EngineResult, float] | None = None
            for _ in range(max(1, repeat)):
                result, wall = run_scenario(
                    scenario,
                    backend,
                    scale=scale,
                    num_workers=num_workers,
                    retry=policy if injected else None,
                    faults=fault_spec,
                    **_FAULT_GEOMETRY,
                )
                if best is None or wall < best[1]:
                    best = (result, wall)
            result, wall = best
            if not injected:
                off_wall, off_outputs = wall, result.outputs
                if backend == "serial":
                    serial_off_outputs = result.outputs
                elif serial_off_outputs is not None:
                    assert result.outputs == serial_off_outputs, (
                        scenario,
                        backend,
                        "fault-free outputs diverged from serial",
                    )
            else:
                assert result.outputs == off_outputs, (
                    scenario,
                    backend,
                    mode,
                    "outputs under injected faults diverged from the "
                    "fault-free run",
                )
            total_tasks = (
                result.engine.num_map_tasks + result.engine.num_reduce_tasks
            )
            rows.append(
                {
                    "scenario": scenario,
                    "backend": backend,
                    "mode": mode,
                    "wall_s": round(wall, 3),
                    "overhead_vs_off": (
                        round(wall / off_wall, 2)
                        if injected and off_wall
                        else ""
                    ),
                    "retries": result.engine.task_retries,
                    "retry_bound": (
                        total_tasks * (_FAULT_MAX_ATTEMPTS - 1)
                        if injected
                        else ""
                    ),
                    "pool_rebuilds": result.engine.pool_rebuilds,
                    "outputs": len(result.outputs),
                }
            )
    return rows


def check_faults(rows: Iterable[dict[str, object]]) -> list[str]:
    """Smoke check for the fault-injection rows (the chaos gate).

    Injected rows must show the fault plane actually working — retries
    observed (a 5%+ crash rate over a hundred-plus tasks that retries
    nothing means injection silently stopped) — and working *boundedly*:
    retries within the row's documented bound, and outputs matching the
    fault-free run's count (the full identity assert already ran inside
    :func:`run_fault_injection`).  Returns failure strings (empty = pass).
    """
    failures: list[str] = []
    checked = 0
    off_outputs: dict[str, int] = {}
    for row in rows:
        if row.get("mode") == "faults-off":
            off_outputs[str(row["backend"])] = int(row["outputs"])
    for row in rows:
        if row.get("mode") == "faults-off":
            continue
        checked += 1
        label = f"{row['scenario']}/{row['backend']}/{row['mode']}"
        retries = int(row["retries"])
        bound = int(row["retry_bound"])
        if retries < 1:
            failures.append(
                f"{label}: injected faults produced no retries — "
                "injection or retry accounting is broken"
            )
        if retries > bound:
            failures.append(
                f"{label}: {retries} retries exceed the bound {bound}"
            )
        expected = off_outputs.get(str(row["backend"]))
        if expected is not None and int(row["outputs"]) != expected:
            failures.append(
                f"{label}: {row['outputs']} outputs != fault-free "
                f"{expected}"
            )
    if not checked:
        failures.append("fault check compared nothing: no injected rows")
    return failures


def check_baseline(
    rows: Iterable[dict[str, object]],
    baseline: dict[str, object],
    *,
    workers: int | None = None,
    params: dict[str, object] | None = None,
    max_slowdown: float = 1.3,
    min_wall: float = 0.02,
) -> tuple[list[str], list[str]]:
    """Regression gate: current bench rows against a committed baseline.

    *baseline* is a previously committed ``bench --json-out`` payload
    (``{"workers": ..., "params": ..., "rows": [...]}``; a
    ``fault_rows`` list, when present, is gated the same way so the
    no-faults E23 configuration stays covered).  Rows are
    matched by ``(scenario, backend, mode)`` and a match fails when its
    wall clock exceeds *max_slowdown* × the baseline's.  The gate only
    bites for same-hardware-class runs: when the baseline was recorded
    with a different worker count or different bench parameters, every
    comparison is skipped with an explanatory note instead of a flaky
    failure.  Baseline cells under *min_wall* seconds are skipped too
    (millisecond ratios are noise), but a same-class run in which
    *nothing* could be compared fails rather than passing vacuously.

    Returns ``(failures, notes)`` — both human-readable; empty failures
    means pass.
    """
    failures: list[str] = []
    notes: list[str] = []
    if workers is None:
        from repro.engine.backends import available_workers

        workers = available_workers()
    base_workers = baseline.get("workers")
    if base_workers != workers:
        notes.append(
            f"baseline check skipped: baseline recorded with "
            f"{base_workers} workers, this machine has {workers}"
        )
        return failures, notes
    base_params = baseline.get("params")
    if params is not None and base_params is not None and params != base_params:
        notes.append(
            f"baseline check skipped: bench params differ "
            f"(baseline {base_params}, run {params})"
        )
        return failures, notes

    def _key(row: dict[str, object]) -> tuple[str, str, str]:
        return (
            str(row.get("scenario", "")),
            str(row.get("backend", "")),
            str(row.get("mode", "")),
        )

    base_rows = list(baseline.get("rows", [])) + list(
        baseline.get("fault_rows", [])
    )
    base_walls = {
        _key(row): float(row["wall_s"]) for row in base_rows if "wall_s" in row
    }
    compared = 0
    for row in rows:
        base = base_walls.get(_key(row))
        if base is None:
            continue
        label = "/".join(part for part in _key(row) if part)
        if base < min_wall:
            notes.append(
                f"{label}: baseline wall {base:.3f}s under the "
                f"{min_wall}s floor, skipped"
            )
            continue
        compared += 1
        wall = float(row["wall_s"])
        if wall > base * max_slowdown:
            failures.append(
                f"{label}: wall {wall:.3f}s > {max_slowdown}x "
                f"baseline {base:.3f}s"
            )
    if not compared:
        failures.append(
            "baseline check compared nothing: no overlapping rows at or "
            "above the wall floor (same hardware class, "
            f"{len(base_walls)} baseline rows)"
        )
    return failures, notes


def check_spill(rows: Iterable[dict[str, object]]) -> list[str]:
    """Smoke check for the out-of-core rows: budgeted cells must spill.

    A budgeted run that wrote zero runs means the budget never bound —
    the scenario was sized wrong or the spill trigger regressed — and a
    peak above the row's ``peak_bound`` (budget plus one record's fan-out,
    the documented overshoot of the between-records flush trigger) means
    the budget did not actually bound memory.  Returns human-readable
    failure strings (empty = pass).
    """
    failures: list[str] = []
    checked = 0
    for row in rows:
        if row.get("mode") != "budgeted":
            continue
        checked += 1
        label = f"{row['scenario']}/{row['backend']}"
        if int(row["spill_runs"]) < 1:
            failures.append(
                f"{label}: budgeted run spilled no runs "
                f"(budget {row['memory_budget']})"
            )
        bound = row.get("peak_bound")
        if bound not in (None, "") and int(row["peak_buffered"]) > int(bound):
            failures.append(
                f"{label}: peak buffered pairs {row['peak_buffered']} "
                f"exceeds bound {bound} "
                f"(budget {row['memory_budget']} + one record's fan-out)"
            )
    if not checked:
        failures.append("spill check compared nothing: no budgeted rows")
    return failures


#: Key generators for the codec bench, one per key kind the data plane
#: distinguishes (the ``tuple`` kind exercises the pickle fallback).
def _int_keys(count: int) -> list:
    return list(range(count))


def _str_keys(count: int) -> list:
    return [f"key-{index:08d}" for index in range(count)]


def _bytes_keys(count: int) -> list:
    return [b"key-%08d" % index for index in range(count)]


def _tuple_keys(count: int) -> list:
    return [("join", index % 97, index) for index in range(count)]


_CODEC_KEYSETS = {
    "int": _int_keys,
    "str": _str_keys,
    "bytes": _bytes_keys,
    "tuple": _tuple_keys,
}


def run_codec_bench(
    *,
    items: int = 20000,
    values_per_key: int = 4,
    repeat: int = 3,
    block_items: Iterable[int] = (128, 512, 2048),
    transport_scale: float = 0.5,
    include_transport: bool = True,
) -> list[dict[str, object]]:
    """E24: block-codec throughput, block-size sweep, and shm-vs-pipe.

    Three row families, all best-of-*repeat*:

    * ``codec`` — encode/decode one *items*-key bucket per key kind
      (int/str/bytes, plus tuples for the pickle fallback), next to a
      plain whole-dict pickle round-trip of the same bucket (the data
      plane this codec replaced).  Each row round-trip-verifies before
      it reports a number.
    * ``block_sweep`` — the same int bucket encoded in blocks of each
      *block_items* size: how block granularity trades framing overhead
      against streaming-decode batch size (the spill path's knob).
    * ``shuffle_heavy`` transport rows (``include_transport``) — the
      shuffle-heavy scenario on the ``processes`` backend with the
      shared-memory transport forced on and off; outputs are asserted
      identical, so the pair is also a correctness check of both paths.
    """
    import pickle

    from repro.engine.codec import (
        decode_block,
        decode_block_groups,
        encode_groups,
        encode_items,
        select_codec,
    )

    rows: list[dict[str, object]] = []
    reps = max(1, repeat)
    for kind, make_keys in _CODEC_KEYSETS.items():
        keys = make_keys(items)
        groups = {
            key: list(range(index, index + values_per_key))
            for index, key in enumerate(keys)
        }
        codec = select_codec(groups)
        block = encode_groups(groups, codec)
        encode_wall = min(
            _timed(encode_groups, groups, codec) for _ in range(reps)
        )
        decode_wall = min(_timed(decode_block_groups, block) for _ in range(reps))
        pickled = pickle.dumps(groups, protocol=pickle.HIGHEST_PROTOCOL)
        pickle_wall = min(
            _timed(pickle.dumps, groups, pickle.HIGHEST_PROTOCOL)
            + _timed(pickle.loads, pickled)
            for _ in range(reps)
        )
        rows.append(
            {
                "scenario": "codec",
                "kind": kind,
                "codec": codec.decode("ascii"),
                "items": items,
                "encoded_bytes": len(block),
                "pickled_bytes": len(pickled),
                "encode_s": round(encode_wall, 4),
                "decode_s": round(decode_wall, 4),
                "roundtrip_s": round(encode_wall + decode_wall, 4),
                "pickle_roundtrip_s": round(pickle_wall, 4),
                "ok": decode_block_groups(block) == groups,
            }
        )
    int_items = [
        (key, [key]) for key in _CODEC_KEYSETS["int"](items)
    ]
    int_codec = select_codec(key for key, _ in int_items)
    for size in block_items:
        size = max(1, int(size))
        blocks = [
            encode_items(int_items[start : start + size], int_codec)
            for start in range(0, len(int_items), size)
        ]

        def _encode_all() -> None:
            for start in range(0, len(int_items), size):
                encode_items(int_items[start : start + size], int_codec)

        def _decode_all() -> None:
            for encoded in blocks:
                decode_block(encoded)

        encode_wall = min(_timed(_encode_all) for _ in range(reps))
        decode_wall = min(_timed(_decode_all) for _ in range(reps))
        decoded = [item for encoded in blocks for item in decode_block(encoded)]
        rows.append(
            {
                "scenario": "block_sweep",
                "kind": "int",
                "block_items": size,
                "blocks": len(blocks),
                "items": len(int_items),
                "encoded_bytes": sum(len(b) for b in blocks),
                "encode_s": round(encode_wall, 4),
                "decode_s": round(decode_wall, 4),
                "ok": decoded == int_items,
            }
        )
    if include_transport:
        rows.extend(_run_transport_bench(scale=transport_scale, repeat=reps))
    return rows


def _timed(fn: Any, *args: Any) -> float:
    """Wall seconds of one ``fn(*args)`` call."""
    started = time.perf_counter()
    fn(*args)
    return time.perf_counter() - started


def _run_transport_bench(
    *, scale: float, repeat: int
) -> list[dict[str, object]]:
    """Shuffle-heavy on ``processes`` with the shm transport on vs off."""
    from repro.engine.backends import ProcessBackend
    from repro.engine.shm import shm_available

    serial_result, _ = run_scenario("shuffle_heavy", "serial", scale=scale)
    variants = [("pipe", False)]
    if shm_available():
        variants.append(("shm", True))
    rows: list[dict[str, object]] = []
    for label, use_shm in variants:
        best: tuple[EngineResult, float] | None = None
        with ProcessBackend(use_shm=use_shm) as backend:
            for _ in range(repeat):
                result, wall = run_scenario(
                    "shuffle_heavy", backend, scale=scale
                )
                if best is None or wall < best[1]:
                    best = (result, wall)
        result, wall = best
        assert result.outputs == serial_result.outputs, (
            "transport",
            label,
            "processes outputs diverged from serial",
        )
        rows.append(
            {
                "scenario": "shuffle_heavy",
                "kind": "transport",
                "backend": f"processes[{label}]",
                "wall_s": round(wall, 3),
                "encoded_bytes": result.engine.encoded_bytes,
                "encode_s": round(result.engine.encode_seconds, 4),
                "decode_s": round(result.engine.decode_seconds, 4),
                "shm_segments": result.engine.shm_segments,
                "outputs": len(result.outputs),
                "ok": True,
            }
        )
    return rows


def check_codec(rows: Iterable[dict[str, object]]) -> list[str]:
    """Smoke check for the codec-bench rows (the E24 gate).

    Every row must have round-trip-verified (``ok``); the typed kinds
    must actually have selected their typed codec (int→``i``, str→``s``,
    bytes→``b``) with tuples on the pickle fallback — a silent fallback
    would quietly bench the wrong code path; and transport rows, when
    present, must agree on the output count.  Returns failure strings
    (empty = pass).
    """
    failures: list[str] = []
    expected_codec = {"int": "i", "str": "s", "bytes": "b", "tuple": "p"}
    codec_rows = 0
    transport_outputs: dict[str, int] = {}
    for row in rows:
        label = f"{row.get('scenario')}/{row.get('kind')}"
        if not row.get("ok", False):
            failures.append(f"{label}: block round-trip failed")
        if row.get("scenario") == "codec":
            codec_rows += 1
            kind = str(row.get("kind"))
            want = expected_codec.get(kind)
            if want is not None and row.get("codec") != want:
                failures.append(
                    f"{label}: selected codec {row.get('codec')!r}, "
                    f"expected {want!r}"
                )
            if int(row.get("encoded_bytes", 0)) <= 0:
                failures.append(f"{label}: encoded zero bytes")
        if row.get("kind") == "transport":
            transport_outputs[str(row.get("backend"))] = int(
                row.get("outputs", 0)
            )
            if int(row.get("encoded_bytes", 0)) <= 0:
                failures.append(
                    f"{label}/{row.get('backend')}: processes run encoded "
                    "zero bytes — the block data plane is not engaged"
                )
    if codec_rows < len(expected_codec):
        failures.append(
            f"codec check compared only {codec_rows} codec rows, "
            f"expected {len(expected_codec)} key kinds"
        )
    if transport_outputs and len(set(transport_outputs.values())) > 1:
        failures.append(
            f"transport variants disagree on outputs: {transport_outputs}"
        )
    return failures


def check_regression(
    rows: Iterable[dict[str, object]],
    *,
    max_threads_slowdown: float = 1.3,
    min_serial_seconds: float = 0.02,
) -> list[str]:
    """Perf smoke check: threads must not be grossly slower than serial.

    Returns human-readable failure strings (empty = pass).  The bound is
    deliberately generous — it catches engine-level regressions (a serial
    bottleneck reappearing in the parallel path) without flaking on
    scheduler noise or single-core machines, where threads ≈ serial.
    Scenarios whose serial wall is under *min_serial_seconds* are skipped
    (at millisecond scale the ratio is rounding noise, not signal), and a
    run in which *no* scenario could be compared — missing serial/threads
    rows, or everything too fast — fails rather than passing vacuously.
    """
    failures: list[str] = []
    compared = 0
    by_scenario: dict[str, dict[str, float]] = {}
    for row in rows:
        by_scenario.setdefault(str(row["scenario"]), {})[
            str(row["backend"])
        ] = float(row["wall_s"])
    for scenario, walls in by_scenario.items():
        serial = walls.get("serial")
        threads = walls.get("threads")
        if serial is None or threads is None or serial < min_serial_seconds:
            continue
        compared += 1
        if threads > serial * max_threads_slowdown:
            failures.append(
                f"{scenario}: threads {threads:.3f}s > "
                f"{max_threads_slowdown}x serial {serial:.3f}s"
            )
    if not compared:
        failures.append(
            "perf check compared nothing: need serial and threads rows "
            f"with serial >= {min_serial_seconds}s (got scenarios: "
            f"{sorted(by_scenario) or 'none'})"
        )
    return failures
