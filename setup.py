"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` falls back to `setup.py develop`
through this shim when PEP 660 editable builds are unavailable offline.
"""
from setuptools import setup

setup()
