"""Packaging for the ``repro`` library.

The version is sourced from ``src/repro/__init__.py`` (single source of
truth) without importing the package, so ``pip install .`` works in a
build sandbox where the package's dependencies are not yet present.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup


def read_version() -> str:
    """Extract ``__version__`` from the package without importing it."""
    text = (Path(__file__).parent / "src" / "repro" / "__init__.py").read_text()
    match = re.search(r'^__version__ = "([^"]+)"', text, re.MULTILINE)
    if not match:
        raise RuntimeError("__version__ not found in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro-mapping-schemas",
    version=read_version(),
    description=(
        "Mapping schemas for different-sized MapReduce inputs "
        "(Afrati et al., EDBT 2015): solvers, simulator, and a parallel "
        "execution engine"
    ),
    long_description=(Path(__file__).parent / "README.md").read_text(),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
