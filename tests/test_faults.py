"""Unit tests for the fault plane: specs, injector, retry policy, deadlines.

The injector's promise is determinism — every decision a pure function of
``(seed, kind, phase, task index, attempt)`` — so these tests pin exact
replayability, picklability (process-pool workers must agree with the
parent), and the retry policy's semantics-preserving classification.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.exceptions import (
    DeadlineExceededError,
    InjectedFaultError,
    InvalidInstanceError,
    TaskTimeoutError,
    TransientFaultError,
    WorkerLostError,
)
from repro.faults import (
    DEFAULT_DELAY_SECONDS,
    FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    RetryPolicy,
    as_fault_spec,
    check_deadline,
    remaining_time,
)


class TestFaultSpec:
    def test_parse_full_grammar(self):
        spec = FaultSpec.parse(
            "crash=0.2,kill=0.05,delay=0.1:0.02,transient=0.1,seed=7"
        )
        assert spec.crash == 0.2
        assert spec.kill == 0.05
        assert spec.delay == 0.1
        assert spec.delay_seconds == 0.02
        assert spec.transient == 0.1
        assert spec.seed == 7
        assert spec.enabled

    def test_format_round_trips(self):
        spec = FaultSpec.parse(
            "crash=0.2,kill=0.05,delay=0.1:0.02,transient=0.1,seed=7"
        )
        assert FaultSpec.parse(spec.format()) == spec

    def test_noop_spec(self):
        spec = FaultSpec()
        assert not spec.enabled
        assert FaultSpec.parse(spec.format()) == spec

    def test_delay_without_seconds_uses_default(self):
        assert FaultSpec.parse("delay=0.5").delay_seconds == (
            DEFAULT_DELAY_SECONDS
        )

    def test_whitespace_and_empty_entries_tolerated(self):
        assert FaultSpec.parse(" crash = 0.2 , ,seed= 3 ") == FaultSpec(
            crash=0.2, seed=3
        )

    @pytest.mark.parametrize(
        "text",
        [
            "cosmic=0.5",  # unknown kind
            "crash",  # no '='
            "crash=",  # empty value
            "crash=abc",  # not a number
            "crash=1.5",  # out of range
            "crash=-0.1",  # out of range
            "delay=0.1:-1",  # negative sleep
        ],
    )
    def test_parse_rejects(self, text):
        with pytest.raises(InvalidInstanceError):
            FaultSpec.parse(text)

    def test_constructor_validates_rates(self):
        with pytest.raises(InvalidInstanceError):
            FaultSpec(kill=2.0)

    def test_scaled_caps_at_one_and_keeps_seed(self):
        spec = FaultSpec(crash=0.4, kill=0.2, seed=9, delay_seconds=0.01)
        scaled = spec.scaled(5.0)
        assert scaled.crash == 1.0
        assert scaled.kill == 1.0
        assert scaled.seed == 9
        assert scaled.delay_seconds == 0.01
        assert not spec.scaled(0.0).enabled

    def test_as_fault_spec_normalizes(self):
        spec = FaultSpec(crash=0.1)
        assert as_fault_spec(None) is None
        assert as_fault_spec(spec) is spec
        assert as_fault_spec("crash=0.1,seed=0") == FaultSpec(crash=0.1)


class TestFaultInjector:
    def test_decisions_are_deterministic(self):
        injector = FaultInjector(FaultSpec(crash=0.5, seed=7))
        grid = [
            (kind, phase, index, attempt)
            for kind in FAULT_KINDS
            for phase in ("map", "reduce")
            for index in range(8)
            for attempt in (1, 2)
        ]
        first = [injector.decides(*coords) for coords in grid]
        again = [injector.decides(*coords) for coords in grid]
        assert first == again

    def test_rolls_are_uniform_coordinates(self):
        injector = FaultInjector(FaultSpec(seed=3))
        rolls = {
            injector.roll("crash", "map", index, attempt)
            for index in range(16)
            for attempt in (1, 2)
        }
        assert all(0.0 <= roll < 1.0 for roll in rolls)
        # Distinct coordinates hash to distinct rolls.
        assert len(rolls) == 32

    def test_rate_zero_never_fires(self):
        injector = FaultInjector(FaultSpec())
        for index in range(50):
            injector.maybe_inject("map", index, 1)  # must not raise

    def test_crash_at_rate_one_carries_coordinates(self):
        injector = FaultInjector(FaultSpec(crash=1.0, seed=1))
        with pytest.raises(InjectedFaultError) as excinfo:
            injector.maybe_inject("reduce", 5, 2)
        assert excinfo.value.kind == "crash"
        assert excinfo.value.phase == "reduce"
        assert excinfo.value.task_index == 5
        assert excinfo.value.attempt == 2

    def test_retries_see_fresh_rolls(self):
        injector = FaultInjector(FaultSpec(crash=0.5, seed=0))
        decisions = {
            injector.decides("crash", "map", 0, attempt)
            for attempt in range(1, 30)
        }
        assert decisions == {True, False}

    def test_kill_degrades_to_crash_without_killable_workers(self):
        injector = FaultInjector(FaultSpec(kill=1.0, seed=2))
        with pytest.raises(InjectedFaultError) as excinfo:
            injector.maybe_inject("map", 0, 1, allow_kill=False)
        assert excinfo.value.kind == "kill"

    def test_transient_is_a_connection_error(self):
        injector = FaultInjector(FaultSpec(transient=1.0))
        with pytest.raises(TransientFaultError) as excinfo:
            injector.maybe_inject("map", 3, 1)
        assert isinstance(excinfo.value, ConnectionError)

    def test_delay_sleeps_then_crash_still_fires(self, monkeypatch):
        sleeps: list[float] = []
        monkeypatch.setattr(
            "repro.faults.injector.time.sleep", sleeps.append
        )
        injector = FaultInjector(
            FaultSpec(delay=1.0, delay_seconds=0.02, crash=1.0)
        )
        with pytest.raises(InjectedFaultError):
            injector.maybe_inject("map", 0, 1)
        assert sleeps == [0.02]

    def test_injector_pickles_to_identical_decisions(self):
        injector = FaultInjector(FaultSpec(crash=0.3, kill=0.1, seed=11))
        clone = pickle.loads(pickle.dumps(injector))
        coords = [("map", i, a) for i in range(10) for a in (1, 2, 3)]
        for kind in FAULT_KINDS:
            assert [clone.decides(kind, *c) for c in coords] == [
                injector.decides(kind, *c) for c in coords
            ]


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "exc",
        [
            InjectedFaultError("boom"),
            WorkerLostError("died"),
            TaskTimeoutError("slow"),
            TimeoutError(),
            ConnectionError(),
            OSError(),
        ],
    )
    def test_default_retryable(self, exc):
        assert RetryPolicy().is_retryable(exc)

    @pytest.mark.parametrize(
        "exc", [ValueError("user bug"), InvalidInstanceError("bad model")]
    )
    def test_user_and_model_errors_not_retryable(self, exc):
        assert not RetryPolicy().is_retryable(exc)

    def test_deadline_exceeded_never_retryable(self):
        # DeadlineExceededError subclasses TimeoutError, but retrying
        # cannot un-blow a per-job deadline — even an explicit allowlist
        # naming TimeoutError must not resurrect it.
        exc = DeadlineExceededError("too late")
        assert not RetryPolicy().is_retryable(exc)
        assert not RetryPolicy(retryable=(TimeoutError,)).is_retryable(exc)

    def test_validation(self):
        with pytest.raises(InvalidInstanceError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(InvalidInstanceError):
            RetryPolicy(backoff_base=-0.5)

    def test_backoff_without_jitter_is_exact(self):
        policy = RetryPolicy(
            max_attempts=5,
            backoff_base=0.1,
            backoff_multiplier=2.0,
            backoff_max=0.5,
            jitter=0.0,
        )
        assert [policy.delay_seconds(a) for a in (1, 2, 3, 4)] == [
            0.1,
            0.2,
            0.4,
            0.5,  # capped
        ]

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(backoff_base=0.1, jitter=0.2, seed=4)
        delays = [policy.delay_seconds(1, key=("map", i)) for i in range(20)]
        assert delays == [
            policy.delay_seconds(1, key=("map", i)) for i in range(20)
        ]
        for delay in delays:
            assert 0.1 <= delay <= 0.1 * 1.2
        # Distinct task keys de-synchronize the schedule.
        assert len(set(delays)) > 1

    def test_none_policy_never_retries(self):
        policy = RetryPolicy.none()
        assert policy.max_attempts == 1
        assert policy.delay_seconds(1) == 0.0

    def test_policy_pickles(self):
        policy = RetryPolicy(max_attempts=3, seed=5)
        clone = pickle.loads(pickle.dumps(policy))
        assert clone == policy


class TestDeadlineHelpers:
    def test_none_disables(self):
        check_deadline(None)  # must not raise
        assert remaining_time(None) is None

    def test_future_deadline_passes(self):
        deadline_at = time.monotonic() + 60.0
        check_deadline(deadline_at, what="map phase")
        remaining = remaining_time(deadline_at)
        assert remaining is not None and 0.0 < remaining <= 60.0

    def test_past_deadline_raises_with_context(self):
        with pytest.raises(DeadlineExceededError, match="reduce phase"):
            check_deadline(time.monotonic() - 1.0, what="reduce phase")
        assert remaining_time(time.monotonic() - 1.0) == 0.0
