"""Unit tests for repro.utils.rng and repro.utils.tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.tables import format_series, format_table


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42).integers(0, 1000, size=10)
        b = make_rng(42).integers(0, 1000, size=10)
        assert list(a) == list(b)

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 10**9)
        b = make_rng(2).integers(0, 10**9)
        assert a != b

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_are_independent_streams(self):
        children = spawn_rngs(7, 3)
        draws = [g.integers(0, 10**9) for g in children]
        assert len(set(draws)) == 3

    def test_deterministic_given_seed(self):
        a = [g.integers(0, 10**6) for g in spawn_rngs(3, 4)]
        b = [g.integers(0, 10**6) for g in spawn_rngs(3, 4)]
        assert a == b

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestFormatTable:
    def test_renders_header_and_rows(self):
        text = format_table([{"a": 1, "b": 2}, {"a": 10, "b": 20}])
        lines = text.splitlines()
        assert lines[0].split("|")[0].strip() == "a"
        assert "10" in lines[-1]

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_title_prepended(self):
        text = format_table([{"a": 1}], title="T1")
        assert text.startswith("T1")

    def test_missing_column_renders_empty(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "2" in text

    def test_float_formatting(self):
        text = format_table([{"r": 1.23456}])
        assert "1.235" in text

    def test_alignment_consistent_width(self):
        text = format_table([{"col": 1}, {"col": 1000}])
        lines = text.splitlines()
        assert len(lines[-1]) == len(lines[-2])


class TestFormatSeries:
    def test_x_column_first(self):
        text = format_series("q", [10, 20], {"alg": [5, 3]})
        assert text.splitlines()[0].lstrip().startswith("q")

    def test_all_series_present(self):
        text = format_series("q", [1], {"a": [2], "b": [3]})
        header = text.splitlines()[0]
        assert "a" in header and "b" in header

    def test_short_series_pads(self):
        text = format_series("q", [1, 2], {"a": [9]})
        assert "9" in text
