"""Tests for workload size statistics."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import InvalidInstanceError
from repro.workloads.stats import gini_coefficient, size_stats
from repro.workloads.distributions import sample_sizes


class TestGini:
    def test_equal_sizes_zero(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_single_value_zero(self):
        assert gini_coefficient([7]) == pytest.approx(0.0)

    def test_extreme_inequality_near_one(self):
        sizes = [1] * 99 + [100_000]
        assert gini_coefficient(sizes) > 0.9

    def test_known_two_point_value(self):
        # [1, 3]: G = (2*(1*1 + 2*3))/(2*4) - 3/2 = 14/8 - 1.5 = 0.25.
        assert gini_coefficient([1, 3]) == pytest.approx(0.25)

    def test_scale_invariant(self):
        a = gini_coefficient([1, 2, 3, 4])
        b = gini_coefficient([10, 20, 30, 40])
        assert a == pytest.approx(b)

    def test_rejects_empty(self):
        with pytest.raises(InvalidInstanceError):
            gini_coefficient([])

    @given(st.lists(st.integers(1, 1000), min_size=1, max_size=60))
    def test_always_in_range(self, sizes):
        g = gini_coefficient(sizes)
        assert -1e-9 <= g < 1.0

    def test_zipf_more_unequal_than_uniform(self):
        zipf = sample_sizes("zipf", 400, 200, seed=1)
        uniform = sample_sizes("uniform", 400, 200, seed=1)
        assert gini_coefficient(zipf) > gini_coefficient(uniform)


class TestSizeStats:
    def test_basic_fields(self):
        stats = size_stats([2, 4, 6], q=10)
        assert stats.count == 3
        assert stats.total == 12
        assert stats.minimum == 2
        assert stats.maximum == 6
        assert stats.average == pytest.approx(4.0)

    def test_cv_zero_for_constant(self):
        assert size_stats([3, 3, 3], 9).cv == pytest.approx(0.0)

    def test_big_fraction(self):
        stats = size_stats([2, 6, 7], q=10)  # > 5 counts as big
        assert stats.big_fraction == pytest.approx(2 / 3)

    def test_max_per_reducer(self):
        stats = size_stats([1, 2, 3, 4, 5], q=6)
        assert stats.max_per_reducer == 3  # 1 + 2 + 3

    def test_as_row_keys(self):
        row = size_stats([1, 2], 4).as_row()
        assert {"count", "gini", "cv", "big_frac", "t_max"} <= set(row)

    def test_rejects_bad_input(self):
        with pytest.raises(InvalidInstanceError):
            size_stats([], 4)
        with pytest.raises(InvalidInstanceError):
            size_stats([1], 0)
