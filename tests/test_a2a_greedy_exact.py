"""Unit tests for the A2A greedy cover and exact solver."""

from __future__ import annotations

import pytest

from repro.core.a2a.exact import solve_min_reducers
from repro.core.a2a.greedy import greedy_cover
from repro.core.bounds import a2a_reducer_lower_bound
from repro.core.instance import A2AInstance
from repro.exceptions import InfeasibleInstanceError, SolverLimitError


class TestGreedyCover:
    def test_valid_on_mixed_sizes(self, small_a2a):
        schema = greedy_cover(small_a2a)
        assert schema.verify().valid

    def test_valid_with_big_inputs(self, big_a2a):
        schema = greedy_cover(big_a2a)
        assert schema.verify().valid

    def test_single_input(self):
        schema = greedy_cover(A2AInstance([4], 8))
        assert schema.num_reducers == 1

    def test_single_reducer_when_everything_fits(self):
        schema = greedy_cover(A2AInstance([1, 1, 1, 1], 10))
        assert schema.num_reducers == 1

    def test_raises_on_infeasible(self):
        with pytest.raises(InfeasibleInstanceError):
            greedy_cover(A2AInstance([8, 8], 12))

    def test_max_reducers_cap_stops_early(self):
        instance = A2AInstance([3] * 10, 6)  # needs C(10,2)=45 reducers
        schema = greedy_cover(instance, max_reducers=5)
        assert schema.num_reducers == 5
        assert not schema.verify().valid  # intentionally truncated

    def test_loads_bounded(self, small_a2a):
        schema = greedy_cover(small_a2a)
        assert schema.max_load <= small_a2a.q

    def test_equal_sizes_reasonable_count(self):
        instance = A2AInstance.equal_sized(12, 1, 4)
        schema = greedy_cover(instance)
        assert schema.verify().valid
        bound = a2a_reducer_lower_bound(instance)
        assert schema.num_reducers <= 5 * bound + 5


class TestExactSolver:
    def test_single_input(self):
        schema = solve_min_reducers(A2AInstance([4], 8))
        assert schema.num_reducers == 1

    def test_everything_fits_one_reducer(self):
        schema = solve_min_reducers(A2AInstance([2, 2, 2], 6))
        assert schema.num_reducers == 1

    def test_known_optimum_pairs_only(self):
        # q=2 with unit sizes: reducers are exactly pairs -> C(4,2)=6.
        schema = solve_min_reducers(A2AInstance([1, 1, 1, 1], 2))
        assert schema.num_reducers == 6
        assert schema.verify().valid

    def test_known_optimum_k3(self):
        # m=6, w=1, q=3: each reducer covers <= 3 pairs; 15 pairs -> >= 5;
        # a resolvable design (Kirkman triple) achieves 5... exact finds
        # the true optimum, which must be >= 5 and <= 7 (grouping bound).
        schema = solve_min_reducers(A2AInstance([1] * 6, 3), max_nodes=2_000_000)
        assert schema.verify().valid
        assert 5 <= schema.num_reducers <= 7

    def test_optimum_with_mixed_sizes(self):
        instance = A2AInstance([3, 3, 2, 2], 6)
        schema = solve_min_reducers(instance)
        assert schema.verify().valid
        assert schema.num_reducers >= a2a_reducer_lower_bound(instance)

    def test_never_beats_lower_bound(self):
        instance = A2AInstance([2, 3, 4, 5], 9)
        schema = solve_min_reducers(instance)
        assert schema.num_reducers >= a2a_reducer_lower_bound(instance)

    def test_beats_or_ties_heuristics(self):
        from repro.core.a2a.big_small import big_small

        instance = A2AInstance([4, 3, 3, 2, 2], 8)
        exact = solve_min_reducers(instance)
        heuristic = big_small(instance)
        assert exact.verify().valid
        assert exact.num_reducers <= heuristic.num_reducers

    def test_node_limit(self):
        instance = A2AInstance([1] * 9, 3)
        with pytest.raises(SolverLimitError):
            solve_min_reducers(instance, max_nodes=5)

    def test_raises_on_infeasible(self):
        with pytest.raises(InfeasibleInstanceError):
            solve_min_reducers(A2AInstance([5, 5], 8))
