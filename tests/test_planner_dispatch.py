"""Selector/planner dispatch boundaries (satellite of the planner PR).

Pins the big/small cutoff at exactly ``q // 2`` vs ``q // 2 + 1``,
single-input and all-equal-sizes instances, and — the compatibility
contract — that the planner's fast path makes the same choice as the
historical ``method="auto"`` heuristic on a sweep of instance shapes
(the heuristic is reimplemented verbatim in this file as the oracle).
"""

from __future__ import annotations

import pytest

from repro.core.a2a import (
    big_small,
    equal_sized_grouping,
    ffd_pairing,
    grouped_covering,
)
from repro.core.instance import A2AInstance, X2YInstance
from repro.core.selector import solve_a2a, solve_x2y
from repro.core.x2y import best_split_grid, big_small_x2y, equal_sized_grid
from repro.planner import Environment, JobSpec, fast_path_a2a, fast_path_x2y, plan

ENV = Environment(num_workers=2, memory_bytes=1 << 30)


def legacy_auto_a2a(instance: A2AInstance):
    """The pre-planner ``solve_a2a(..., "auto")`` body, kept as the oracle."""
    if len(set(instance.sizes)) == 1:
        candidates = [equal_sized_grouping(instance), grouped_covering(instance)]
        return min(candidates, key=lambda s: s.num_reducers)
    half = instance.q // 2
    if any(w > half for w in instance.sizes):
        return big_small(instance)
    return ffd_pairing(instance)


def legacy_auto_x2y(instance: X2YInstance):
    """The pre-planner ``solve_x2y(..., "auto")`` body, kept as the oracle."""
    if len(set(instance.x_sizes)) == 1 and len(set(instance.y_sizes)) == 1:
        return equal_sized_grid(instance)
    half = instance.q // 2
    has_big = any(w > half for w in instance.x_sizes) or any(
        w > half for w in instance.y_sizes
    )
    if has_big:
        candidates = [big_small_x2y(instance), best_split_grid(instance)]
        return min(candidates, key=lambda s: s.num_reducers)
    return best_split_grid(instance)


class TestBigSmallCutoff:
    def test_a2a_size_exactly_half_q_stays_on_bin_pairing(self):
        # q = 20 -> half = 10; a size of exactly 10 is NOT big.
        instance = A2AInstance([10, 3, 4, 5], q=20)
        chosen, _, rule = fast_path_a2a(instance)
        assert chosen == "bin_pairing"
        assert "no big inputs" in rule

    def test_a2a_size_half_q_plus_one_routes_to_big_small(self):
        instance = A2AInstance([11, 3, 4, 5], q=20)
        chosen, _, rule = fast_path_a2a(instance)
        assert chosen == "big_small"
        assert "big inputs present" in rule

    def test_x2y_size_exactly_half_q_stays_on_grid(self):
        instance = X2YInstance([7, 2], [3, 4], q=14)
        chosen, _, _ = fast_path_x2y(instance)
        assert chosen == "best_split_grid"

    def test_x2y_size_half_q_plus_one_considers_big_small(self):
        instance = X2YInstance([8, 2], [3, 4], q=14)
        chosen, considered, _ = fast_path_x2y(instance)
        assert set(considered) == {"big_small", "best_split_grid"}
        expected = min(
            considered, key=lambda name: considered[name].num_reducers
        )
        assert chosen == expected

    def test_odd_q_boundary(self):
        # q = 13 -> half = 6: size 6 small, size 7 big.
        assert fast_path_a2a(A2AInstance([6, 3, 4], q=13))[0] == "bin_pairing"
        assert fast_path_a2a(A2AInstance([7, 3, 4], q=13))[0] == "big_small"


class TestDegenerateShapes:
    def test_single_input_a2a(self):
        planned = plan(JobSpec.a2a([5], q=8), ENV)
        schema = planned.schema()
        assert schema.num_reducers == 1
        assert schema.verify().valid
        # Full planning handles it too.
        planned_full = plan(JobSpec.a2a([5], q=8, method=None), ENV)
        assert planned_full.schema().verify().valid

    def test_single_input_per_side_x2y(self):
        planned = plan(JobSpec.x2y([4], [3], q=8), ENV)
        assert planned.schema().verify().valid

    def test_all_equal_sizes_takes_uniform_rule(self):
        chosen, considered, rule = fast_path_a2a(A2AInstance([3] * 9, q=9))
        assert set(considered) == {"equal_grouping", "grouped_covering"}
        assert "uniform" in rule
        best = min(considered.values(), key=lambda s: s.num_reducers)
        assert considered[chosen].num_reducers == best.num_reducers

    def test_all_equal_sizes_x2y(self):
        chosen, _, _ = fast_path_x2y(X2YInstance([2] * 4, [2] * 5, q=8))
        assert chosen == "equal_grid"


class TestFastPathMatchesLegacyAuto:
    A2A_SHAPES = [
        ([3, 5, 2, 7, 4], 12),
        ([4] * 6, 8),
        ([2] * 10, 6),
        ([10, 3, 4, 5], 20),
        ([11, 3, 4, 5], 20),
        ([1, 1, 2, 3, 5, 8], 16),
        ([9], 10),
        ([5, 5, 5, 5], 10),
        ([6, 6, 1, 1, 1], 12),
        ([3, 3, 3], 18),
    ]

    X2Y_SHAPES = [
        ([4, 5], [3, 3], 10),
        ([9, 2, 3], [5, 3], 17),
        ([5, 3], [9, 2, 3], 17),
        ([2] * 4, [2] * 5, 8),
        ([7, 2], [3, 4], 14),
        ([8, 2], [3, 4], 14),
        ([1], [1], 2),
        ([6, 1], [6, 1], 12),
    ]

    @pytest.mark.parametrize("sizes,q", A2A_SHAPES)
    def test_a2a_sweep(self, sizes, q):
        instance = A2AInstance(sizes, q)
        oracle = legacy_auto_a2a(instance)
        chosen, considered, _ = fast_path_a2a(instance)
        assert considered[chosen].reducers == oracle.reducers
        assert considered[chosen].algorithm == oracle.algorithm
        # And the public facade still returns the identical schema.
        assert solve_a2a(instance).reducers == oracle.reducers
        # The app-facing plan pipeline agrees with the facade.
        planned = plan(JobSpec.a2a(sizes, q), ENV)
        assert planned.schema().reducers == oracle.reducers

    @pytest.mark.parametrize("x_sizes,y_sizes,q", X2Y_SHAPES)
    def test_x2y_sweep(self, x_sizes, y_sizes, q):
        instance = X2YInstance(x_sizes, y_sizes, q)
        oracle = legacy_auto_x2y(instance)
        chosen, considered, _ = fast_path_x2y(instance)
        assert considered[chosen].reducers == oracle.reducers
        assert considered[chosen].algorithm == oracle.algorithm
        assert solve_x2y(instance).reducers == oracle.reducers
        planned = plan(JobSpec.x2y(x_sizes, y_sizes, q), ENV)
        assert planned.schema().reducers == oracle.reducers
