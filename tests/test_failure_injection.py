"""Failure-injection tests: verification must catch corrupted schemas.

Every mutation that breaks a mapping-schema invariant — dropping a
reducer, evicting an input from a reducer, shrinking the capacity — must
be caught by ``verify()``.  These tests are the safety net under every
algorithm's ``require_valid()`` call: if verification were too lax, all
the validity assertions elsewhere would be meaningless.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instance import A2AInstance, X2YInstance
from repro.core.schema import A2ASchema, X2YSchema
from repro.core.selector import solve_a2a, solve_x2y


@st.composite
def solved_a2a(draw):
    """A valid (instance, schema) pair with at least 2 reducers."""
    q = draw(st.integers(4, 40))
    m = draw(st.integers(4, 14))
    sizes = draw(st.lists(st.integers(1, q // 2), min_size=m, max_size=m))
    instance = A2AInstance(sizes, q)
    schema = solve_a2a(instance)
    return instance, schema


@settings(deadline=None, max_examples=50)
@given(solved_a2a(), st.randoms(use_true_random=False))
def test_dropping_a_needed_reducer_is_detected(case, rng):
    instance, schema = case
    if schema.num_reducers < 2:
        return
    victim = rng.randrange(schema.num_reducers)
    reduced = A2ASchema.from_lists(
        instance,
        [r for i, r in enumerate(schema.reducers) if i != victim],
        algorithm="mutated",
    )
    # Dropping a reducer can only lose coverage; if the victim carried any
    # pair exclusively the report must flag it.
    report = reduced.verify()
    original_pairs = {
        pair
        for r in schema.reducers
        for pair in _pairs_of(r)
    }
    remaining_pairs = {
        pair
        for r in reduced.reducers
        for pair in _pairs_of(r)
    }
    if original_pairs - remaining_pairs:
        assert not report.valid
    else:
        assert report.valid


def _pairs_of(reducer):
    members = sorted(set(reducer))
    return {
        (a, b)
        for i, a in enumerate(members)
        for b in members[i + 1:]
    }


@settings(deadline=None, max_examples=50)
@given(solved_a2a(), st.randoms(use_true_random=False))
def test_evicting_an_input_is_detected(case, rng):
    instance, schema = case
    if instance.m < 2:
        return
    victim_reducer = rng.randrange(schema.num_reducers)
    members = list(schema.reducers[victim_reducer])
    if len(members) < 2:
        return
    evicted = members[rng.randrange(len(members))]
    mutated_reducers = [
        [i for i in r if not (idx == victim_reducer and i == evicted)]
        for idx, r in enumerate(schema.reducers)
    ]
    mutated = A2ASchema.from_lists(instance, mutated_reducers, algorithm="mutated")
    report = mutated.verify()
    # The evicted input may still meet everyone elsewhere; but if any of
    # its pairs were exclusive to the victim reducer, invalidity must show.
    still_covered = {
        pair for r in mutated.reducers for pair in _pairs_of(r)
    }
    required = set(instance.pairs())
    assert report.valid == (required <= still_covered)


@settings(deadline=None, max_examples=40)
@given(solved_a2a())
def test_capacity_shrink_is_detected(case):
    instance, schema = case
    # Rebuild the same reducers against a tighter instance: any reducer
    # whose load exceeded the new q must be flagged.
    new_q = max(max(instance.sizes), schema.max_load - 1)
    if new_q >= schema.max_load:
        return
    tighter = A2AInstance(instance.sizes, new_q)
    mutated = A2ASchema.from_lists(tighter, schema.reducers, algorithm="mutated")
    report = mutated.verify()
    assert not report.valid
    assert report.capacity_violations


@settings(deadline=None, max_examples=30)
@given(
    st.integers(4, 30).flatmap(
        lambda q: st.tuples(
            st.lists(st.integers(1, q // 2), min_size=2, max_size=8),
            st.lists(st.integers(1, q // 2), min_size=2, max_size=8),
            st.just(q),
        )
    ),
    st.randoms(use_true_random=False),
)
def test_x2y_dropped_reducer_detected(case, rng):
    xs, ys, q = case
    instance = X2YInstance(xs, ys, q)
    schema = solve_x2y(instance)
    if schema.num_reducers < 2:
        return
    victim = rng.randrange(schema.num_reducers)
    reduced = X2YSchema.from_lists(
        instance,
        [r for i, r in enumerate(schema.reducers) if i != victim],
        algorithm="mutated",
    )
    covered = {
        (i, j)
        for x_part, y_part in reduced.reducers
        for i in x_part
        for j in y_part
    }
    required = set(instance.pairs())
    assert reduced.verify().valid == (required <= covered)


class TestEmptyMutations:
    def test_empty_schema_invalid(self):
        instance = A2AInstance([1, 1], 4)
        assert not A2ASchema.from_lists(instance, []).verify().valid

    def test_schema_of_empty_reducers_invalid(self):
        instance = A2AInstance([1, 1], 4)
        schema = A2ASchema.from_lists(instance, [[], []])
        assert not schema.verify().valid

    def test_duplicate_inside_reducer_is_deduped_by_from_lists(self):
        instance = A2AInstance([3, 3], 6)
        schema = A2ASchema.from_lists(instance, [[0, 0, 1]])
        assert schema.verify().valid
        assert schema.loads == (6,)
