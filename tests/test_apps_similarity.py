"""Integration tests: similarity join on the simulator."""

from __future__ import annotations

import pytest

from repro.engine.routing import a2a_memberships, canonical_meeting
from repro.exceptions import InvalidSchemaError
from repro.apps.similarity_join import run_broadcast_baseline, run_similarity_join
from repro.core.instance import A2AInstance
from repro.core.schema import A2ASchema
from repro.core.selector import solve_a2a
from repro.workloads.documents import all_pairs_above, generate_documents


class TestCommonHelpers:
    def test_memberships_roundtrip(self):
        instance = A2AInstance([1, 1, 1], 4)
        schema = A2ASchema.from_lists(instance, [[0, 1], [0, 2], [1, 2]])
        members = a2a_memberships(schema)
        assert members == [[0, 1], [0, 2], [1, 2]]

    def test_canonical_meeting_is_min_common(self):
        assert canonical_meeting([0, 2, 5], [2, 5, 9]) == 2

    def test_canonical_meeting_requires_overlap(self):
        with pytest.raises(InvalidSchemaError):
            canonical_meeting([0], [1])


class TestSimilarityJoin:
    @pytest.mark.parametrize("profile", ["uniform", "zipf", "bimodal"])
    def test_matches_ground_truth(self, profile):
        docs = generate_documents(25, 50, profile=profile, seed=11)
        run = run_similarity_join(docs, q=50, threshold=0.15)
        assert run.pair_set() == all_pairs_above(docs, 0.15)

    def test_exactly_once_despite_replication(self):
        docs = generate_documents(20, 40, seed=12)
        run = run_similarity_join(docs, q=40, threshold=0.0)
        # Threshold 0 emits every pair; each must appear exactly once.
        assert len(run.pairs) == len(run.pair_set()) == 20 * 19 // 2

    def test_capacity_respected(self):
        docs = generate_documents(30, 60, seed=13)
        run = run_similarity_join(docs, q=60, threshold=0.5)
        assert run.metrics.max_reducer_load <= 60
        assert run.metrics.capacity_violations == ()

    def test_schema_is_valid(self):
        docs = generate_documents(15, 40, seed=14)
        run = run_similarity_join(docs, q=40, threshold=0.3)
        assert run.schema.verify().valid

    def test_named_method(self):
        docs = generate_documents(12, 40, seed=15)
        run = run_similarity_join(docs, q=40, threshold=0.1, method="greedy")
        assert run.pair_set() == all_pairs_above(docs, 0.1)

    def test_reducer_count_matches_schema(self):
        docs = generate_documents(18, 50, seed=16)
        run = run_similarity_join(docs, q=50, threshold=0.1)
        # Every schema reducer with >= 2 docs received data; reducers in the
        # job equal reducers that got at least one doc.
        assert run.metrics.num_reducers <= run.schema.num_reducers

    def test_communication_cost_equals_schema_cost(self):
        docs = generate_documents(18, 50, seed=17)
        run = run_similarity_join(docs, q=50, threshold=0.1)
        assert run.metrics.communication_cost == run.schema.communication_cost


class TestBroadcastBaseline:
    def test_same_answers_as_schema_join(self):
        docs = generate_documents(15, 40, seed=18)
        schema_run = run_similarity_join(docs, q=40, threshold=0.2)
        naive_run = run_broadcast_baseline(docs, q=40, threshold=0.2)
        assert naive_run.pair_set() == schema_run.pair_set()

    def test_overflows_capacity_measurably(self):
        docs = generate_documents(30, 40, seed=19)
        naive_run = run_broadcast_baseline(docs, q=40, threshold=0.2)
        total = sum(d.size for d in docs)
        assert naive_run.metrics.max_reducer_load == total
        assert len(naive_run.metrics.capacity_violations) == 1

    def test_ships_each_doc_once(self):
        docs = generate_documents(10, 40, seed=20)
        naive_run = run_broadcast_baseline(docs, q=40, threshold=0.2)
        assert naive_run.metrics.communication_cost == sum(d.size for d in docs)
