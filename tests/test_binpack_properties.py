"""Property-based tests (hypothesis) for the bin-packing substrate."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binpack import (
    HEURISTICS,
    best_lower_bound,
    first_fit_decreasing,
    next_fit,
    pack_exact,
)

sizes_and_capacity = st.integers(1, 30).flatmap(
    lambda cap: st.tuples(
        st.lists(st.integers(1, cap), min_size=1, max_size=40),
        st.just(cap),
    )
)

small_sizes_and_capacity = st.integers(2, 15).flatmap(
    lambda cap: st.tuples(
        st.lists(st.integers(1, cap), min_size=1, max_size=9),
        st.just(cap),
    )
)


@given(sizes_and_capacity)
def test_every_heuristic_produces_valid_partition(case):
    sizes, cap = case
    for packer in HEURISTICS.values():
        packer(sizes, cap).validate()


@given(sizes_and_capacity)
def test_heuristics_respect_lower_bound(case):
    sizes, cap = case
    bound = best_lower_bound(sizes, cap)
    for packer in HEURISTICS.values():
        assert packer(sizes, cap).num_bins >= bound


@given(sizes_and_capacity)
def test_ffd_within_guarantee_of_lower_bound(case):
    """FFD <= (11/9) OPT + 1 <= (11/9) * bound + 1, with OPT >= bound."""
    sizes, cap = case
    bound = best_lower_bound(sizes, cap)
    assert first_fit_decreasing(sizes, cap).num_bins <= (11 / 9) * bound + 1


@given(sizes_and_capacity)
def test_next_fit_within_twice_volume(case):
    """NF's classic guarantee: at most 2 * ceil(volume) bins."""
    sizes, cap = case
    volume_bound = -(-sum(sizes) // cap)
    assert next_fit(sizes, cap).num_bins <= 2 * volume_bound


@settings(deadline=None, max_examples=40)
@given(small_sizes_and_capacity)
def test_exact_is_minimal_among_heuristics(case):
    sizes, cap = case
    exact = pack_exact(sizes, cap)
    exact.validate()
    best_heuristic = min(p(sizes, cap).num_bins for p in HEURISTICS.values())
    assert exact.num_bins <= best_heuristic
    assert exact.num_bins >= best_lower_bound(sizes, cap)


@given(sizes_and_capacity)
def test_bin_loads_sum_to_total(case):
    sizes, cap = case
    result = first_fit_decreasing(sizes, cap)
    assert sum(result.bin_loads()) == sum(sizes)
