"""Property tests: serialization round-trips for arbitrary valid objects."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instance import A2AInstance, X2YInstance
from repro.core.selector import solve_a2a, solve_x2y
from repro.io import dumps, loads


@st.composite
def a2a_instances(draw):
    q = draw(st.integers(2, 100))
    m = draw(st.integers(1, 25))
    sizes = draw(st.lists(st.integers(1, q), min_size=m, max_size=m))
    return A2AInstance(sizes, q)


@st.composite
def x2y_instances(draw):
    q = draw(st.integers(2, 100))
    m = draw(st.integers(1, 12))
    n = draw(st.integers(1, 12))
    xs = draw(st.lists(st.integers(1, q), min_size=m, max_size=m))
    ys = draw(st.lists(st.integers(1, q), min_size=n, max_size=n))
    return X2YInstance(xs, ys, q)


@given(a2a_instances())
def test_a2a_instance_roundtrip(instance):
    assert loads(dumps(instance)) == instance


@given(x2y_instances())
def test_x2y_instance_roundtrip(instance):
    assert loads(dumps(instance)) == instance


@st.composite
def feasible_a2a_instances(draw):
    """Feasible by construction: every size within q // 2."""
    q = draw(st.integers(4, 100))
    m = draw(st.integers(1, 25))
    sizes = draw(st.lists(st.integers(1, q // 2), min_size=m, max_size=m))
    return A2AInstance(sizes, q)


@st.composite
def feasible_x2y_instances(draw):
    """Feasible by construction: every cross pair co-fits."""
    q = draw(st.integers(4, 100))
    m = draw(st.integers(1, 12))
    n = draw(st.integers(1, 12))
    xs = draw(st.lists(st.integers(1, q // 2), min_size=m, max_size=m))
    ys = draw(st.lists(st.integers(1, q // 2), min_size=n, max_size=n))
    return X2YInstance(xs, ys, q)


@settings(deadline=None, max_examples=40)
@given(feasible_a2a_instances())
def test_a2a_schema_roundtrip_preserves_validity(instance):
    schema = solve_a2a(instance)
    restored = loads(dumps(schema))
    assert restored == schema
    assert restored.verify().valid  # type: ignore[union-attr]


@settings(deadline=None, max_examples=40)
@given(feasible_x2y_instances())
def test_x2y_schema_roundtrip_preserves_validity(instance):
    schema = solve_x2y(instance)
    restored = loads(dumps(schema))
    assert restored == schema
    assert restored.verify().valid  # type: ignore[union-attr]
