"""Property-based tests: every algorithm yields valid schemas above bounds.

These are the library's central invariants, straight from the paper's
mapping-schema definition: whatever the instance, a produced schema must
(i) respect the capacity at every reducer and (ii) cover every required
pair, and it can never use fewer reducers than the lower bounds allow.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.a2a import big_small, greedy_cover
from repro.core.bounds import (
    a2a_communication_lower_bound,
    a2a_reducer_lower_bound,
    x2y_reducer_lower_bound,
)
from repro.core.instance import A2AInstance, X2YInstance
from repro.core.selector import solve_a2a, solve_x2y
from repro.core.x2y import best_split_grid, big_small_x2y, greedy_cover_x2y


@st.composite
def feasible_a2a(draw):
    """A feasible A2A instance: all sizes within q and top two co-fit."""
    q = draw(st.integers(4, 60))
    m = draw(st.integers(1, 20))
    sizes = draw(st.lists(st.integers(1, q // 2), min_size=m, max_size=m))
    return A2AInstance(sizes, q)


@st.composite
def feasible_a2a_with_bigs(draw):
    """A feasible A2A instance that may contain big inputs (> q//2)."""
    q = draw(st.integers(6, 60))
    m = draw(st.integers(1, 14))
    # At most one input above q/2 guarantees feasibility with any partner
    # <= q//2 ... actually one big of size <= q - (q//2) partner is safe:
    big = draw(st.integers(q // 2 + 1, q - 1)) if draw(st.booleans()) else None
    smalls = draw(
        st.lists(st.integers(1, min(q // 2, q - big if big else q // 2)),
                 min_size=m, max_size=m)
    )
    sizes = smalls + ([big] if big else [])
    return A2AInstance(sizes, q)


@st.composite
def feasible_x2y(draw):
    """A feasible X2Y instance with sizes up to q//2 on both sides."""
    q = draw(st.integers(4, 60))
    m = draw(st.integers(1, 10))
    n = draw(st.integers(1, 10))
    xs = draw(st.lists(st.integers(1, q // 2), min_size=m, max_size=m))
    ys = draw(st.lists(st.integers(1, q // 2), min_size=n, max_size=n))
    return X2YInstance(xs, ys, q)


@settings(deadline=None, max_examples=60)
@given(feasible_a2a())
def test_auto_a2a_schema_is_valid(instance):
    schema = solve_a2a(instance)
    report = schema.verify()
    assert report.valid, report.summary()


@settings(deadline=None, max_examples=60)
@given(feasible_a2a())
def test_auto_a2a_respects_reducer_lower_bound(instance):
    schema = solve_a2a(instance)
    assert schema.num_reducers >= a2a_reducer_lower_bound(instance)


@settings(deadline=None, max_examples=60)
@given(feasible_a2a())
def test_auto_a2a_communication_at_least_bound(instance):
    schema = solve_a2a(instance)
    assert schema.communication_cost >= a2a_communication_lower_bound(instance)


@settings(deadline=None, max_examples=60)
@given(feasible_a2a_with_bigs())
def test_big_small_valid_with_big_inputs(instance):
    schema = big_small(instance)
    report = schema.verify()
    assert report.valid, report.summary()
    assert schema.max_load <= instance.q


@settings(deadline=None, max_examples=40)
@given(feasible_a2a())
def test_greedy_a2a_valid(instance):
    schema = greedy_cover(instance)
    assert schema.verify().valid


@settings(deadline=None, max_examples=60)
@given(feasible_x2y())
def test_auto_x2y_schema_is_valid(instance):
    schema = solve_x2y(instance)
    report = schema.verify()
    assert report.valid, report.summary()


@settings(deadline=None, max_examples=60)
@given(feasible_x2y())
def test_auto_x2y_respects_reducer_lower_bound(instance):
    schema = solve_x2y(instance)
    assert schema.num_reducers >= x2y_reducer_lower_bound(instance)


@settings(deadline=None, max_examples=40)
@given(feasible_x2y())
def test_grid_and_big_small_x2y_valid(instance):
    assert best_split_grid(instance).verify().valid
    assert big_small_x2y(instance).verify().valid


@settings(deadline=None, max_examples=25)
@given(feasible_x2y())
def test_greedy_x2y_valid(instance):
    schema = greedy_cover_x2y(instance)
    assert schema.verify().valid


@settings(deadline=None, max_examples=60)
@given(feasible_a2a())
def test_replication_counts_consistent_with_communication(instance):
    """comm cost == sum over inputs of size * replication."""
    schema = solve_a2a(instance)
    recomputed = sum(
        w * r for w, r in zip(instance.sizes, schema.replication)
    )
    assert recomputed == schema.communication_cost
