"""Unit tests for repro.utils.validation."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidInstanceError
from repro.utils.validation import check_capacity, check_positive_int, check_sizes


class TestCheckPositiveInt:
    def test_accepts_plain_int(self):
        assert check_positive_int(7, "x") == 7

    def test_accepts_integer_valued_float(self):
        assert check_positive_int(7.0, "x") == 7

    def test_rejects_fractional_float(self):
        with pytest.raises(InvalidInstanceError, match="integral"):
            check_positive_int(7.5, "x")

    def test_rejects_zero(self):
        with pytest.raises(InvalidInstanceError, match="positive"):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(InvalidInstanceError, match="positive"):
            check_positive_int(-3, "x")

    def test_rejects_bool(self):
        with pytest.raises(InvalidInstanceError, match="bool"):
            check_positive_int(True, "x")

    def test_rejects_string(self):
        with pytest.raises(InvalidInstanceError):
            check_positive_int("four", "x")

    def test_rejects_none(self):
        with pytest.raises(InvalidInstanceError):
            check_positive_int(None, "x")

    def test_error_message_names_the_field(self):
        with pytest.raises(InvalidInstanceError, match="capacity"):
            check_positive_int(-1, "capacity")

    def test_accepts_numpy_integer(self):
        import numpy as np

        assert check_positive_int(np.int64(5), "x") == 5


class TestCheckSizes:
    def test_returns_tuple(self):
        assert check_sizes([1, 2, 3]) == (1, 2, 3)

    def test_rejects_empty(self):
        with pytest.raises(InvalidInstanceError, match="at least one"):
            check_sizes([])

    def test_rejects_bad_element_with_index(self):
        with pytest.raises(InvalidInstanceError, match=r"sizes\[1\]"):
            check_sizes([1, 0, 3])

    def test_accepts_generator(self):
        assert check_sizes(iter([2, 4])) == (2, 4)

    def test_custom_name_in_error(self):
        with pytest.raises(InvalidInstanceError, match=r"x_sizes\[0\]"):
            check_sizes([-1], "x_sizes")


class TestCheckCapacity:
    def test_valid_capacity(self):
        assert check_capacity(10, (3, 4)) == 10

    def test_rejects_capacity_below_largest_input(self):
        with pytest.raises(InvalidInstanceError, match="cannot be assigned"):
            check_capacity(5, (3, 6))

    def test_capacity_equal_to_largest_input_is_ok(self):
        assert check_capacity(6, (3, 6)) == 6

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(InvalidInstanceError):
            check_capacity(0, ())

    def test_no_sizes_just_validates_q(self):
        assert check_capacity(1) == 1
