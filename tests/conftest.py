"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.instance import A2AInstance, X2YInstance


@pytest.fixture
def small_a2a() -> A2AInstance:
    """A tiny mixed-size A2A instance every pair of which co-fits."""
    return A2AInstance([3, 5, 2, 7, 4], q=12)


@pytest.fixture
def equal_a2a() -> A2AInstance:
    """An equal-sized A2A instance with k = q // w = 4."""
    return A2AInstance.equal_sized(m=20, w=2, q=8)


@pytest.fixture
def big_a2a() -> A2AInstance:
    """An A2A instance containing inputs above q // 2 (big inputs)."""
    return A2AInstance([10, 9, 2, 3, 4, 5], q=19)


@pytest.fixture
def small_x2y() -> X2YInstance:
    """A tiny mixed-size X2Y instance."""
    return X2YInstance([4, 5, 6], [3, 3, 7], q=14)


@pytest.fixture
def big_x2y() -> X2YInstance:
    """An X2Y instance with big inputs on both sides."""
    return X2YInstance([9, 2, 3], [8, 2, 2], q=17)
