"""Unit and property tests for the online A2A assigner."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.a2a.ffd_pairing import ffd_pairing
from repro.core.a2a.online import OnlineA2AAssigner
from repro.exceptions import InvalidInstanceError


class TestOnlineAssigner:
    def test_empty_state(self):
        assigner = OnlineA2AAssigner(10)
        assert assigner.num_inputs == 0
        assert assigner.num_bins == 0
        assert assigner.num_reducers == 0

    def test_instance_requires_inputs(self):
        with pytest.raises(InvalidInstanceError):
            OnlineA2AAssigner(10).instance()

    def test_single_input_single_reducer(self):
        assigner = OnlineA2AAssigner(10)
        assigner.add_input(4)
        schema = assigner.schema()
        assert schema.num_reducers == 1
        assert schema.verify().valid

    def test_indices_are_sequential(self):
        assigner = OnlineA2AAssigner(10)
        assert [assigner.add_input(2) for _ in range(4)] == [0, 1, 2, 3]

    def test_rejects_big_input(self):
        assigner = OnlineA2AAssigner(10)
        with pytest.raises(InvalidInstanceError, match="q//2"):
            assigner.add_input(6)

    def test_rejects_q_one(self):
        with pytest.raises(InvalidInstanceError):
            OnlineA2AAssigner(1)

    def test_first_fit_packing(self):
        assigner = OnlineA2AAssigner(10)  # bins of capacity 5
        assigner.extend([3, 2, 4, 1])
        # 3+2 fill bin 0; 4+1 fill bin 1.
        assert assigner.num_bins == 2

    def test_valid_after_every_insertion(self):
        assigner = OnlineA2AAssigner(12)
        for size in [3, 4, 2, 5, 1, 6, 2, 3, 4]:
            assigner.add_input(size)
            report = assigner.schema().verify()
            assert report.valid, report.summary()

    def test_reducer_count_formula(self):
        assigner = OnlineA2AAssigner(8)
        assigner.extend([4, 4, 4, 4])  # four bins of capacity 4
        assert assigner.num_bins == 4
        assert assigner.num_reducers == 6
        assert assigner.schema().num_reducers == 6

    def test_replication_of(self):
        assigner = OnlineA2AAssigner(8)
        assigner.extend([4, 4, 4])
        assert assigner.replication_of(0) == 2  # 3 bins -> b-1 reducers

    def test_replication_of_bad_index(self):
        assigner = OnlineA2AAssigner(8)
        assigner.add_input(2)
        with pytest.raises(InvalidInstanceError):
            assigner.replication_of(5)

    def test_online_never_fewer_bins_than_offline(self):
        sizes = [3, 1, 4, 1, 5, 2, 2, 3, 4, 1]
        assigner = OnlineA2AAssigner(10)
        assigner.extend(sizes)
        offline = ffd_pairing(assigner.instance())
        # FFD repacks with hindsight; online first-fit can only be >=.
        offline_bins = max(
            2, int((1 + (1 + 8 * offline.num_reducers) ** 0.5) / 2)
        )  # invert C(b,2) when b >= 2
        assert assigner.num_bins >= offline_bins - 1


@settings(deadline=None, max_examples=50)
@given(
    st.integers(4, 40).flatmap(
        lambda q: st.tuples(
            st.lists(st.integers(1, q // 2), min_size=1, max_size=30), st.just(q)
        )
    )
)
def test_online_schema_always_valid(case):
    sizes, q = case
    assigner = OnlineA2AAssigner(q)
    assigner.extend(sizes)
    report = assigner.schema().verify()
    assert report.valid, report.summary()


@settings(deadline=None, max_examples=50)
@given(
    st.lists(st.integers(1, 5), min_size=1, max_size=25)
)
def test_online_insertion_order_does_not_break_validity(sizes):
    assigner = OnlineA2AAssigner(10)
    for size in sizes:
        assigner.add_input(size)
    schema = assigner.schema()
    assert schema.verify().valid
    assert schema.max_load <= 10
