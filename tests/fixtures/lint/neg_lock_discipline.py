"""Negative fixture: snapshot under the lock, block after releasing it."""

import threading


class GoodService:
    def __init__(self):
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._futures = []
        self._workers = []
        self._results = []

    def drain(self):
        with self._lock:
            pending = list(self._futures)
            self._futures.clear()
        return [fut.result() for fut in pending]

    def shutdown(self):
        with self._lock:
            workers = list(self._workers)
            self._workers.clear()
        for worker in workers:
            worker.join()

    def wait_for_work(self):
        with self._lock:
            # Condition.wait releases the lock while blocking: allowed.
            self._wake.wait(timeout=1.0)
            return list(self._results)
