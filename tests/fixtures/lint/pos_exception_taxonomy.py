"""Positive fixture: builtin raises the taxonomy rule must flag."""


def check_capacity(capacity):
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")


def refuse_closed(closed):
    if closed:
        raise RuntimeError("service is closed")


def lookup(records, job_id):
    if job_id not in records:
        raise KeyError(job_id)
    return records[job_id]
