"""Negative fixture: the allowed idioms the determinism rule must not flag."""

import time

from repro.utils.rng import make_rng


def pick(items, seed):
    rng = make_rng(seed)  # seeded numpy Generator: the sanctioned idiom
    return items[int(rng.integers(len(items)))]


def elapsed(start):
    return time.perf_counter() - start  # monotonic clocks are fine


def merged_keys(xs, ys):
    out = []
    for key in sorted(set(xs) | set(ys)):  # sorted before iterating
        out.append(key)
    return out
