"""Positive fixture: every determinism violation the rule should catch."""

import os
import random
import time
import uuid


def pick(items):
    return items[random.randrange(len(items))]  # unseeded global random


def stamp():
    return time.time()  # wall-clock read


def fresh_id():
    return uuid.uuid4().hex  # nondeterministic id


def configured_workers():
    return os.environ.get("REPRO_WORKERS", "4")  # environment read


def merged_keys(xs, ys):
    out = []
    for key in set(xs) | set(ys):  # set-order iteration
        out.append(key)
    return out
