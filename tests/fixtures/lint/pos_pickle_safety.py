"""Positive fixture: task callables that cannot cross the process boundary."""

import threading


def run_with_lambda(backend, items):
    return backend.run_tasks(lambda x: x * 2, items)


def run_with_nested(backend, items):
    def task(x):
        return x * 2

    return backend.run_tasks(task, items)


def run_with_captured_lock(backend, items):
    lock = threading.Lock()
    results = []

    def task(x):
        with lock:
            results.append(x)
        return x

    return backend.run_tasks_resilient(task, items)
