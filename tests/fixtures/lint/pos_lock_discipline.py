"""Positive fixture: blocking while holding a lock."""

import threading
import time


class BadService:
    def __init__(self):
        self._lock = threading.Lock()
        self._futures = []
        self._workers = []

    def drain(self):
        with self._lock:
            return [fut.result() for fut in self._futures]

    def shutdown(self):
        with self._lock:
            for worker in self._workers:
                worker.join()

    def throttle(self):
        with self._lock:
            time.sleep(0.1)

    def persist(self, path):
        with self._lock:
            with open(path, "w") as handle:
                handle.write("state")
