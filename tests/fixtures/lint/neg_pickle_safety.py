"""Negative fixture: the sanctioned module-level + partial task idiom."""

from functools import partial


def double(x, factor=2):
    return x * factor


def run_module_level(backend, items):
    return backend.run_tasks(double, items)


def run_partial(backend, items, factor):
    return backend.run_tasks_resilient(partial(double, factor=factor), items)
