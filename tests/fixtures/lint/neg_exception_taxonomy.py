"""Negative fixture: typed raises and the allowed builtin contract errors."""

from repro.exceptions import InvalidInstanceError, ServiceClosedError


def check_capacity(capacity):
    if capacity <= 0:
        raise InvalidInstanceError(
            f"capacity must be positive, got {capacity}"
        )


def refuse_closed(closed):
    if closed:
        raise ServiceClosedError("service is closed")


def require_schema(schema):
    if not hasattr(schema, "assignments"):
        raise TypeError("expected an A2ASchema or X2YSchema")


def reraise():
    try:
        check_capacity(0)
    except InvalidInstanceError:
        raise  # bare re-raise is always fine
