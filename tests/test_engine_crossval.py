"""Cross-validation: the engine must agree with the reference simulator.

This is the acceptance gate for the engine subsystem — the serial backend
has to be byte-identical to :class:`repro.mapreduce.job.MapReduceJob` in
outputs *and* metrics before the parallel backends mean anything.
"""

from __future__ import annotations

import pytest

from repro.apps.similarity_join import run_similarity_join
from repro.apps.skew_join import naive_join, schema_skew_join
from repro.core.selector import solve_a2a, solve_x2y
from repro.engine.crossval import (
    CrossValidationReport,
    compare_results,
    validate_against_simulator,
)
from repro.workloads.documents import generate_documents
from repro.workloads.relations import generate_join_workload


def tally_reduce(key, values):
    """Deterministic reducer: reducer id plus the sorted input indices."""
    yield key, tuple(sorted(v[:-1] if len(v) == 3 else (v[0],) for v in values))


class TestSchemaCrossValidation:
    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_a2a_engine_equals_simulator(self, small_a2a, backend):
        schema = solve_a2a(small_a2a).require_valid()
        records = [f"rec{i}" for i in range(schema.instance.m)]
        engine_result, job_result, report = validate_against_simulator(
            schema, records, tally_reduce, backend=backend, num_workers=2
        )
        assert report.ok, report.summary()
        assert engine_result.outputs == job_result.outputs
        assert engine_result.metrics == job_result.metrics

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_x2y_engine_equals_simulator(self, small_x2y, backend):
        schema = solve_x2y(small_x2y).require_valid()
        x_records = [f"x{i}" for i in range(schema.instance.m)]
        y_records = [f"y{j}" for j in range(schema.instance.n)]
        _, _, report = validate_against_simulator(
            schema, (x_records, y_records), tally_reduce, backend=backend
        )
        assert report.ok, report.summary()

    def test_report_flags_mismatches(self, small_a2a):
        schema = solve_a2a(small_a2a).require_valid()
        records = [f"rec{i}" for i in range(schema.instance.m)]
        engine_result, job_result, _ = validate_against_simulator(
            schema, records, tally_reduce
        )
        # Tamper with the engine outputs to prove the diff catches it.
        broken = type(engine_result)(
            outputs=engine_result.outputs[:-1],
            metrics=engine_result.metrics,
            engine=engine_result.engine,
        )
        report = compare_results(broken, job_result)
        assert not report.ok
        assert not report.outputs_match
        assert "outputs differ" in report.summary()

    def test_report_summary_when_ok(self):
        report = CrossValidationReport(outputs_match=True, metrics_match=True)
        assert "identical" in report.summary()


class TestApplicationCrossValidation:
    """Outputs *and* JobMetrics must match the simulator on every backend,
    not just serial — partitioning may batch keys differently, but nothing
    observable may change."""

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_similarity_join_engine_is_byte_identical(self, backend):
        documents = generate_documents(24, 50, seed=11)
        simulator = run_similarity_join(documents, 50, 0.2)
        engine = run_similarity_join(documents, 50, 0.2, backend=backend)
        assert engine.pairs == simulator.pairs
        assert engine.metrics == simulator.metrics
        assert engine.schema.reducers == simulator.schema.reducers
        assert engine.engine is not None and simulator.engine is None
        assert engine.engine.backend == backend

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_skew_join_engine_is_byte_identical(self, backend):
        x, y = generate_join_workload(240, 240, 8, 1.3, seed=5)
        simulator = schema_skew_join(x, y, 70)
        engine = schema_skew_join(x, y, 70, backend=backend)
        assert engine.triples == simulator.triples
        assert engine.metrics == simulator.metrics
        assert engine.heavy_keys == simulator.heavy_keys
        # Both match the centrally-computed ground truth.
        assert engine.triple_set() == naive_join(x, y)
