"""Unit tests for the observability layer: tracing, metrics, observations."""

from __future__ import annotations

import json
import pickle
import threading
import tracemalloc

import pytest

from repro.dataset import Dataset
from repro.engine.engine import ExecutionEngine
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from repro.obs.store import (
    ObservationRecord,
    ObservationStore,
    load_observations,
    summarize_observations,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    as_tracer,
    to_chrome_trace,
    validate_chrome_trace,
    worker_span,
    write_chrome_trace,
)


def fanout_map(record):
    yield record % 4, record


def sum_reduce(key, values):
    yield key, sum(values)


class TestSpans:
    def test_with_block_nesting_sets_parent_ids(self):
        tracer = Tracer("t1")
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        spans = tracer.spans()
        assert [s.name for s in spans] == ["inner", "outer"]
        assert all(s.trace_id == "t1" for s in spans)
        assert all(s.duration is not None and s.duration >= 0 for s in spans)

    def test_begin_finish_double_finish_is_noop(self):
        tracer = Tracer()
        span = tracer.begin("root")
        tracer.finish(span)
        first = span.duration
        tracer.finish(span)
        assert span.duration == first
        assert len(tracer) == 1

    def test_activate_pins_parent_for_block(self):
        tracer = Tracer()
        root = tracer.begin("root")
        with tracer.activate(root):
            with tracer.span("child") as child:
                assert child.parent_id == root.span_id
        with tracer.span("sibling") as sibling:
            assert sibling.parent_id is None
        tracer.finish(root)

    def test_child_tracer_shares_sink_with_own_trace_id(self):
        tracer = Tracer("parent")
        child = tracer.child("job-1")
        with child.span("work"):
            pass
        spans = tracer.spans()
        assert len(spans) == 1 and spans[0].trace_id == "job-1"

    def test_record_and_instant(self):
        tracer = Tracer()
        tracer.record("queue", start=1.0, duration=0.5, wait=True)
        marker = tracer.instant("job:done")
        assert marker.duration == 0.0
        names = [s.name for s in tracer.spans()]
        assert names == ["queue", "job:done"]

    def test_on_finish_callback_streams_and_isolates_errors(self):
        seen: list[str] = []

        def observer(span):
            seen.append(span.name)
            raise RuntimeError("observer bug")

        tracer = Tracer(on_finish=observer)
        with tracer.span("a"):
            pass
        assert seen == ["a"]
        assert len(tracer) == 1

    def test_spans_are_thread_safe(self):
        tracer = Tracer()

        def work():
            for _ in range(50):
                with tracer.span("w"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer) == 200


class TestWorkerPropagation:
    def test_worker_context_pickle_round_trip(self):
        tracer = Tracer("tr")
        with tracer.span("map") as phase:
            ctx = tracer.worker_context()
            ctx = pickle.loads(pickle.dumps(ctx))
            payload = worker_span(ctx, "map_task", 1.0, 0.25, records=3)
        payload = pickle.loads(pickle.dumps(payload))
        assert payload["trace"] == "tr"
        assert payload["parent"] == phase.span_id
        tracer.add_worker_spans([payload])
        merged = {s.name: s for s in tracer.spans()}
        task = merged["map_task"]
        assert task.parent_id == phase.span_id
        assert task.duration == 0.25
        assert task.attrs["records"] == 3

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_engine_task_spans_carry_parent_trace(self, backend):
        tracer = Tracer("engine-trace")
        engine = ExecutionEngine(
            map_fn=fanout_map,
            reduce_fn=sum_reduce,
            backend=backend,
            num_workers=2,
            tracer=tracer,
        )
        result = engine.run(range(40))
        assert result.outputs
        spans = {s.name: s for s in tracer.spans()}
        for phase in ("map", "shuffle", "reduce", "post"):
            assert phase in spans, (backend, sorted(spans))
        tasks = [s for s in tracer.spans() if s.name == "map_task"]
        assert tasks, backend
        for task in tasks:
            assert task.trace_id == "engine-trace"
            assert task.parent_id == spans["map"].span_id
        reduce_tasks = [s for s in tracer.spans() if s.name == "reduce_task"]
        assert reduce_tasks and all(
            t.parent_id == spans["reduce"].span_id for t in reduce_tasks
        )

    def test_retried_tasks_export_unique_spans_under_faults(self, tmp_path):
        # Injected faults retry tasks on the processes backend; every
        # worker span (original and retried attempts) must still carry a
        # unique span id and the export must stay a valid Chrome trace —
        # a duplicated id would make Perfetto merge distinct attempts.
        from repro.faults import RetryPolicy

        tracer = Tracer("faulty")
        engine = ExecutionEngine(
            map_fn=fanout_map,
            reduce_fn=sum_reduce,
            backend="processes",
            num_workers=2,
            map_chunk_size=2,
            num_reduce_tasks=4,
            tracer=tracer,
            retry=RetryPolicy(
                max_attempts=6, backoff_base=0.001, backoff_max=0.01
            ),
            faults="crash=0.2,seed=7",
        )
        result = engine.run(range(40))
        assert result.outputs
        assert result.engine.task_retries >= 1
        spans = tracer.spans()
        ids = [s.span_id for s in spans]
        assert len(ids) == len(set(ids)), "duplicate span ids"
        phase = {s.name: s for s in spans}
        worker_spans = [
            s for s in spans if s.name in ("map_task", "reduce_task")
        ]
        assert worker_spans
        for span in worker_spans:
            parent = "map" if span.name == "map_task" else "reduce"
            assert span.parent_id == phase[parent].span_id
            assert span.trace_id == "faulty"
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), spans)
        events = validate_chrome_trace(json.loads(path.read_text()))
        assert count == len(events) == len(spans)

    def test_disabled_tracer_records_nothing_and_output_matches(self):
        traced = ExecutionEngine(
            map_fn=fanout_map,
            reduce_fn=sum_reduce,
            tracer=NULL_TRACER,
        )
        plain = ExecutionEngine(map_fn=fanout_map, reduce_fn=sum_reduce)
        assert traced.run(range(40)).outputs == plain.run(range(40)).outputs
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.spans() == []

    def test_null_tracer_hot_loop_allocates_nothing_measurable(self):
        tracer = as_tracer(None)
        assert isinstance(tracer, NullTracer)
        assert tracer.worker_context() is None
        assert tracer.span("x") is tracer.span("y")  # shared no-op span

        def hot_loop():
            for _ in range(5000):
                with tracer.span("hot", category="engine"):
                    tracer.record("r", start=0.0, duration=0.0)

        hot_loop()  # warm up bytecode/caches before measuring
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        hot_loop()
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert after - before < 16 * 1024  # no per-iteration allocations


class TestChromeExport:
    def test_export_validates_and_round_trips(self, tmp_path):
        tracer = Tracer()
        with tracer.span("map", category="engine", tasks=2):
            tracer.instant("job:running")
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), tracer.spans())
        assert count == 2
        payload = json.loads(path.read_text())
        events = validate_chrome_trace(payload)
        by_name = {e["name"]: e for e in events}
        assert by_name["map"]["ph"] == "X" and by_name["map"]["dur"] >= 0
        assert by_name["job:running"]["ph"] == "i"
        assert by_name["map"]["args"]["tasks"] == 2

    def test_validate_accepts_bare_array_form(self):
        assert validate_chrome_trace(to_chrome_trace([])["traceEvents"]) == []
        assert validate_chrome_trace(
            [{"name": "x", "ph": "i", "s": "t", "ts": 1, "pid": 1, "tid": 1}]
        )

    def test_validate_rejects_malformed_payloads(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"events": []})
        with pytest.raises(ValueError, match="missing 'ts'"):
            validate_chrome_trace([{"name": "x", "ph": "i", "pid": 1, "tid": 1}])
        with pytest.raises(ValueError, match="missing numeric dur"):
            validate_chrome_trace(
                [{"name": "x", "ph": "X", "ts": 1, "pid": 1, "tid": 1}]
            )


class TestMetricsRegistry:
    def test_counter_gauge_histogram_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("jobs.done").inc()
        registry.counter("jobs.done").inc(2)
        registry.gauge("queue.depth").set(3)
        for value in (0.1, 0.2, 0.3, 0.4, 0.5):
            registry.histogram("latency").observe(value)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["jobs.done"] == 3
        assert snapshot["gauges"]["queue.depth"] == 3
        latency = snapshot["histograms"]["latency"]
        assert latency["count"] == 5
        assert latency["p50"] == pytest.approx(0.3)
        assert latency["max"] == pytest.approx(0.5)

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_add(self):
        gauge = Gauge()
        gauge.set(2)
        gauge.add(3)
        assert gauge.value == 5

    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 0.5) == 3.0
        assert percentile(values, 0.95) == 5.0
        assert percentile([], 0.5) == 0.0

    def test_histogram_reservoir_is_bounded(self):
        histogram = Histogram()
        for value in range(5000):
            histogram.observe(float(value))
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 5000
        assert snapshot["max"] == 4999.0


class TestObservationStore:
    def make_record(self, job_id="j1", **overrides):
        fields = {
            "job_id": job_id,
            "fingerprint": "fp",
            "cache_hit": False,
            "backend": "serial",
            "wall_seconds": 0.5,
            "map_output_pairs": 10,
            "output_records": 4,
        }
        fields.update(overrides)
        return ObservationRecord(**fields)

    def test_append_and_ndjson_round_trip(self, tmp_path):
        path = tmp_path / "obs.ndjson"
        store = ObservationStore(path=str(path))
        store.record(self.make_record("a"))
        store.record(self.make_record("b", cache_hit=True))
        assert len(store) == 2 and store.appended == 2
        loaded = load_observations(str(path))
        assert [r.job_id for r in loaded] == ["a", "b"]
        assert loaded[1].cache_hit is True
        assert loaded[0] == store.snapshot()[0]

    def test_capacity_bounds_memory_not_log(self, tmp_path):
        path = tmp_path / "obs.ndjson"
        store = ObservationStore(path=str(path), capacity=2)
        for index in range(5):
            store.record(self.make_record(f"j{index}"))
        assert [r.job_id for r in store.snapshot()] == ["j3", "j4"]
        assert len(load_observations(str(path))) == 5

    def test_for_fingerprint_filters(self):
        store = ObservationStore()
        store.record(self.make_record("a", fingerprint="x"))
        store.record(self.make_record("b", fingerprint="y"))
        assert [r.job_id for r in store.for_fingerprint("x")] == ["a"]

    def test_malformed_line_raises_with_line_number(self, tmp_path):
        # Corruption anywhere but the final line is real damage, not a
        # crash mid-append — it must still raise with the line number.
        path = tmp_path / "obs.ndjson"
        path.write_text(
            '{"job_id": "a", "fingerprint": "f", "cache_hit": false}\n'
            "not json\n"
            '{"job_id": "b", "fingerprint": "f", "cache_hit": false}\n'
        )
        with pytest.raises(ValueError, match=":2:"):
            load_observations(str(path))

    def test_truncated_final_line_skipped_with_warning(self, tmp_path):
        # A crash mid-append leaves a half-written last line; loading
        # must keep every complete record and warn about the dropped one.
        path = tmp_path / "obs.ndjson"
        path.write_text(
            '{"job_id": "a", "fingerprint": "f", "cache_hit": false}\n'
            '{"job_id": "b", "fingerprint": "f", "cache_hit": true}\n'
            '{"job_id": "c", "fingerprint": "f", "cache_'
        )
        with pytest.warns(RuntimeWarning, match="1 record dropped"):
            loaded = load_observations(str(path))
        assert [r.job_id for r in loaded] == ["a", "b"]

    def test_commit_and_hardware_fields_default_and_round_trip(
        self, tmp_path
    ):
        # Old logs (no commit/hardware_class/peak_rss/cpu fields) must
        # still load; new records carry them through the NDJSON log.
        path = tmp_path / "obs.ndjson"
        path.write_text(
            '{"job_id": "old", "fingerprint": "f", "cache_hit": false}\n'
        )
        store = ObservationStore(path=str(path))
        store.record(
            self.make_record(
                "new",
                commit="abc123def456",
                hardware_class="8w",
                peak_rss_bytes=1 << 20,
                cpu_seconds=0.25,
            )
        )
        old, new = load_observations(str(path))
        assert old.commit == "" and old.hardware_class == ""
        assert old.peak_rss_bytes == 0 and old.cpu_seconds == 0.0
        assert new.commit == "abc123def456"
        assert new.hardware_class == "8w"
        assert new.peak_rss_bytes == 1 << 20
        assert new.cpu_seconds == 0.25

    def test_summarize_groups_by_backend(self):
        records = [
            self.make_record("a", wall_seconds=0.2),
            self.make_record("b", wall_seconds=0.4, cache_hit=True),
            self.make_record("c", backend="", wall_seconds=0.0),
        ]
        rows = summarize_observations(records)
        assert [row["backend"] for row in rows] == ["plan-only", "serial"]
        serial = rows[1]
        assert serial["jobs"] == 2
        assert serial["cache_hit_rate"] == 0.5
        assert serial["wall_p50_s"] == pytest.approx(0.2)
        assert serial["shuffle_pairs"] == 20
